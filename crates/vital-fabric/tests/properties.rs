//! Property-based tests of the resource algebra and floorplan invariants.

use proptest::prelude::*;
use vital_fabric::{DeviceModel, Floorplan, Resources};

fn arb_resources() -> impl Strategy<Value = Resources> {
    (
        0u64..1_000_000,
        0u64..2_000_000,
        0u64..10_000,
        0u64..400_000,
    )
        .prop_map(|(lut, ff, dsp, bram_kb)| Resources::new(lut, ff, dsp, bram_kb))
}

proptest! {
    /// Addition and subtraction are inverses whenever subtraction is legal.
    #[test]
    fn add_sub_roundtrip(a in arb_resources(), b in arb_resources()) {
        let sum = a + b;
        prop_assert_eq!(sum.checked_sub(&b), Some(a));
        prop_assert_eq!(sum.saturating_sub(&a), b);
    }

    /// `fits_within` is reflexive and monotone under addition.
    #[test]
    fn fits_within_monotone(a in arb_resources(), b in arb_resources()) {
        prop_assert!(a.fits_within(&a));
        prop_assert!(a.fits_within(&(a + b)));
        if !b.is_zero() {
            prop_assert!(!(a + b).fits_within(&a) || b.is_zero());
        }
    }

    /// Scaling by 1.0 is the identity; by 0.0 yields zero.
    #[test]
    fn scale_identity_and_annihilation(a in arb_resources()) {
        prop_assert_eq!(a.scale(1.0), a);
        prop_assert_eq!(a.scale(0.0), Resources::ZERO);
    }

    /// The block count is monotone in the application's demand and inversely
    /// monotone in the fill margin.
    #[test]
    fn blocks_needed_monotone(
        a in arb_resources(),
        extra in arb_resources(),
        margin in 0.1f64..1.0,
    ) {
        let block = Resources::new(79_200, 158_400, 580, 4_320);
        let n1 = a.blocks_needed(&block, margin);
        let n2 = (a + extra).blocks_needed(&block, margin);
        prop_assert!(n2 >= n1);
        let tighter = a.blocks_needed(&block, margin / 2.0);
        prop_assert!(tighter >= n1);
    }

    /// A `blocks_needed`-sized allocation really holds the application: the
    /// demand fits within `n` effective blocks.
    #[test]
    fn blocks_needed_is_sufficient(a in arb_resources(), margin in 0.1f64..1.0) {
        let block = Resources::new(79_200, 158_400, 580, 4_320);
        let n = a.blocks_needed(&block, margin);
        let capacity = block.block_fill(margin) * n;
        prop_assert!(a.fits_within(&capacity));
    }

    /// Utilization bottleneck is consistent with `fits_within`.
    #[test]
    fn utilization_matches_fits(a in arb_resources(), cap in arb_resources()) {
        let u = a.utilization_of(&cap);
        if a.fits_within(&cap) {
            prop_assert!(u.is_feasible());
        } else {
            prop_assert!(!u.is_feasible());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every feasible floorplan keeps the identity invariant and covers the
    /// whole user area with blocks.
    #[test]
    fn feasible_floorplans_have_identical_blocks(rows in prop::sample::select(vec![60u64, 300])) {
        let device = DeviceModel::xcvu37p();
        let plan = Floorplan::builder(&device).block_rows(rows).build().unwrap();
        prop_assert!(plan.blocks_identical());
        let covered: u64 = plan.user_blocks().iter().map(|b| b.rows()).sum();
        prop_assert_eq!(covered, device.total_rows());
        prop_assert_eq!(
            plan.user_resources(),
            device.user_area_resources()
        );
    }
}
