//! Heterogeneous FPGA resource accounting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// One of the four resource classes tracked by the ViTAL abstraction.
///
/// The paper's homogeneous abstraction standardizes exactly these resource
/// types for every virtual block (Table 4): look-up tables, D flip-flops,
/// DSP slices and block RAM capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// 6-input look-up tables (logic).
    Lut,
    /// D flip-flops (registers).
    Ff,
    /// DSP48-style hard multiply-accumulate slices.
    Dsp,
    /// Block RAM capacity in kilobits.
    BramKb,
}

impl ResourceKind {
    /// All resource kinds, in display order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Lut,
        ResourceKind::Ff,
        ResourceKind::Dsp,
        ResourceKind::BramKb,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Lut => "LUT",
            ResourceKind::Ff => "FF",
            ResourceKind::Dsp => "DSP",
            ResourceKind::BramKb => "BRAM(kb)",
        };
        f.write_str(s)
    }
}

/// A vector of heterogeneous FPGA resources.
///
/// `Resources` is used both for *capacities* (what a device, region or
/// physical block provides) and for *usage* (what a netlist or virtual block
/// consumes). It supports element-wise arithmetic and containment queries.
///
/// # Example
///
/// ```
/// use vital_fabric::Resources;
///
/// let block = Resources::new(79_200, 158_400, 580, 4_320);
/// let app = Resources::new(23_500, 23_300, 42, 2_600);
/// assert!(app.fits_within(&block));
/// assert_eq!((app + app).lut, 47_000);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Resources {
    /// Number of look-up tables.
    pub lut: u64,
    /// Number of flip-flops.
    pub ff: u64,
    /// Number of DSP slices.
    pub dsp: u64,
    /// Block RAM capacity in kilobits.
    pub bram_kb: u64,
}

impl Resources {
    /// The zero resource vector.
    pub const ZERO: Resources = Resources {
        lut: 0,
        ff: 0,
        dsp: 0,
        bram_kb: 0,
    };

    /// Creates a resource vector from explicit counts.
    pub const fn new(lut: u64, ff: u64, dsp: u64, bram_kb: u64) -> Self {
        Resources {
            lut,
            ff,
            dsp,
            bram_kb,
        }
    }

    /// Returns the count for one resource kind.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::Lut => self.lut,
            ResourceKind::Ff => self.ff,
            ResourceKind::Dsp => self.dsp,
            ResourceKind::BramKb => self.bram_kb,
        }
    }

    /// Sets the count for one resource kind.
    pub fn set(&mut self, kind: ResourceKind, value: u64) {
        match kind {
            ResourceKind::Lut => self.lut = value,
            ResourceKind::Ff => self.ff = value,
            ResourceKind::Dsp => self.dsp = value,
            ResourceKind::BramKb => self.bram_kb = value,
        }
    }

    /// Returns `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == Resources::ZERO
    }

    /// Returns `true` if every component of `self` is at most the
    /// corresponding component of `capacity`.
    pub fn fits_within(&self, capacity: &Resources) -> bool {
        self.lut <= capacity.lut
            && self.ff <= capacity.ff
            && self.dsp <= capacity.dsp
            && self.bram_kb <= capacity.bram_kb
    }

    /// Element-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            lut: self.lut.saturating_sub(other.lut),
            ff: self.ff.saturating_sub(other.ff),
            dsp: self.dsp.saturating_sub(other.dsp),
            bram_kb: self.bram_kb.saturating_sub(other.bram_kb),
        }
    }

    /// Element-wise checked subtraction; `None` if any component underflows.
    pub fn checked_sub(&self, other: &Resources) -> Option<Resources> {
        Some(Resources {
            lut: self.lut.checked_sub(other.lut)?,
            ff: self.ff.checked_sub(other.ff)?,
            dsp: self.dsp.checked_sub(other.dsp)?,
            bram_kb: self.bram_kb.checked_sub(other.bram_kb)?,
        })
    }

    /// Scales every component by `factor`, rounding to nearest.
    pub fn scale(&self, factor: f64) -> Resources {
        debug_assert!(factor >= 0.0, "resource scale factor must be non-negative");
        let s = |v: u64| ((v as f64) * factor).round().max(0.0) as u64;
        Resources {
            lut: s(self.lut),
            ff: s(self.ff),
            dsp: s(self.dsp),
            bram_kb: s(self.bram_kb),
        }
    }

    /// The utilization of `self` against `capacity`, per resource kind and
    /// as the bottleneck maximum.
    ///
    /// Components with zero capacity and zero usage report utilization 0;
    /// zero capacity with non-zero usage reports infinity.
    pub fn utilization_of(&self, capacity: &Resources) -> Utilization {
        let ratio = |used: u64, cap: u64| -> f64 {
            if used == 0 {
                0.0
            } else if cap == 0 {
                f64::INFINITY
            } else {
                used as f64 / cap as f64
            }
        };
        Utilization {
            lut: ratio(self.lut, capacity.lut),
            ff: ratio(self.ff, capacity.ff),
            dsp: ratio(self.dsp, capacity.dsp),
            bram_kb: ratio(self.bram_kb, capacity.bram_kb),
        }
    }

    /// Fill factor applied to DSP columns when sizing block allocations;
    /// hard blocks route point-to-point and tolerate high fill.
    pub const DSP_FILL: f64 = 0.90;
    /// Fill factor applied to BRAM capacity when sizing block allocations
    /// (the paper's Table 2 designs reach ~72 % BRAM fill per block).
    pub const BRAM_FILL: f64 = 0.75;

    /// The usable fraction of a block of this capacity under a LUT/FF fill
    /// `margin`: general fabric (LUTs, FFs) is limited by routability to
    /// `margin`, while hard DSP/BRAM columns fill to [`Resources::DSP_FILL`]
    /// / [`Resources::BRAM_FILL`].
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not in `(0, 1]`.
    pub fn block_fill(&self, margin: f64) -> Resources {
        assert!(
            margin > 0.0 && margin <= 1.0,
            "margin must be in (0, 1], got {margin}"
        );
        Resources {
            lut: ((self.lut as f64) * margin).round() as u64,
            ff: ((self.ff as f64) * margin).round() as u64,
            dsp: ((self.dsp as f64) * Self::DSP_FILL).round() as u64,
            bram_kb: ((self.bram_kb as f64) * Self::BRAM_FILL).round() as u64,
        }
    }

    /// Minimum number of blocks of capacity `block` needed to hold `self`,
    /// with general fabric filled to at most `margin` (see
    /// [`Resources::block_fill`]).
    ///
    /// This is the sizing rule ViTAL's compilation flow uses to decide how
    /// many virtual blocks to allocate for an application (§3.3, task 1).
    /// `margin` accounts for packing/routability headroom; the paper's
    /// Table 2 block counts imply an effective LUT fill of roughly 30 %.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not in `(0, 1]` or the effective block capacity
    /// is zero in a resource the application needs.
    pub fn blocks_needed(&self, block: &Resources, margin: f64) -> u64 {
        let effective = block.block_fill(margin);
        let mut needed = 0u64;
        for kind in ResourceKind::ALL {
            let used = self.get(kind);
            if used == 0 {
                continue;
            }
            let cap = effective.get(kind);
            assert!(
                cap > 0,
                "block provides no {kind} capacity but application needs {used}"
            );
            needed = needed.max(used.div_ceil(cap));
        }
        needed.max(1)
    }
}

impl Add for Resources {
    type Output = Resources;

    fn add(self, rhs: Resources) -> Resources {
        Resources {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            dsp: self.dsp + rhs.dsp,
            bram_kb: self.bram_kb + rhs.bram_kb,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any component underflows; use
    /// [`Resources::checked_sub`] or [`Resources::saturating_sub`] when the
    /// result may be negative.
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            lut: self.lut - rhs.lut,
            ff: self.ff - rhs.ff,
            dsp: self.dsp - rhs.dsp,
            bram_kb: self.bram_kb - rhs.bram_kb,
        }
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;

    fn mul(self, rhs: u64) -> Resources {
        Resources {
            lut: self.lut * rhs,
            ff: self.ff * rhs,
            dsp: self.dsp * rhs,
            bram_kb: self.bram_kb * rhs,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |acc, r| acc + r)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT / {} FF / {} DSP / {} kb BRAM",
            self.lut, self.ff, self.dsp, self.bram_kb
        )
    }
}

/// Per-kind utilization ratios produced by [`Resources::utilization_of`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// LUT utilization ratio.
    pub lut: f64,
    /// Flip-flop utilization ratio.
    pub ff: f64,
    /// DSP utilization ratio.
    pub dsp: f64,
    /// BRAM utilization ratio.
    pub bram_kb: f64,
}

impl Utilization {
    /// The bottleneck (maximum) utilization across all resource kinds.
    pub fn bottleneck(&self) -> f64 {
        self.lut.max(self.ff).max(self.dsp).max(self.bram_kb)
    }

    /// `true` if no resource kind exceeds 100 % utilization.
    pub fn is_feasible(&self) -> bool {
        self.bottleneck() <= 1.0
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:.1}% / FF {:.1}% / DSP {:.1}% / BRAM {:.1}%",
            self.lut * 100.0,
            self.ff * 100.0,
            self.dsp * 100.0,
            self.bram_kb * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Resources::new(10, 20, 3, 40);
        let b = Resources::new(1, 2, 3, 4);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2, a + a);
        let sum: Resources = [a, b, b].into_iter().sum();
        assert_eq!(sum, a + b + b);
    }

    #[test]
    fn fits_within_is_component_wise() {
        let cap = Resources::new(100, 100, 10, 100);
        assert!(Resources::new(100, 100, 10, 100).fits_within(&cap));
        assert!(!Resources::new(101, 0, 0, 0).fits_within(&cap));
        assert!(!Resources::new(0, 0, 11, 0).fits_within(&cap));
        assert!(Resources::ZERO.fits_within(&cap));
    }

    #[test]
    fn checked_sub_underflow() {
        let a = Resources::new(5, 5, 5, 5);
        let b = Resources::new(6, 0, 0, 0);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(a.saturating_sub(&b), Resources::new(0, 5, 5, 5));
    }

    #[test]
    fn utilization_bottleneck() {
        let cap = Resources::new(100, 200, 10, 1000);
        let used = Resources::new(50, 50, 9, 100);
        let u = used.utilization_of(&cap);
        assert!((u.bottleneck() - 0.9).abs() < 1e-9);
        assert!(u.is_feasible());
    }

    #[test]
    fn utilization_zero_capacity() {
        let u = Resources::new(1, 0, 0, 0).utilization_of(&Resources::ZERO);
        assert!(u.lut.is_infinite());
        assert!(!u.is_feasible());
        let z = Resources::ZERO.utilization_of(&Resources::ZERO);
        assert_eq!(z.bottleneck(), 0.0);
    }

    #[test]
    fn blocks_needed_respects_margin() {
        let block = Resources::new(100, 100, 10, 100);
        let app = Resources::new(90, 0, 0, 0);
        assert_eq!(app.blocks_needed(&block, 1.0), 1);
        assert_eq!(app.blocks_needed(&block, 0.3), 3);
        // Bottleneck resource drives the count.
        let dsp_heavy = Resources::new(10, 0, 25, 0);
        assert_eq!(dsp_heavy.blocks_needed(&block, 1.0), 3);
    }

    #[test]
    fn blocks_needed_minimum_one() {
        let block = Resources::new(100, 100, 10, 100);
        assert_eq!(Resources::ZERO.blocks_needed(&block, 0.5), 1);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn blocks_needed_rejects_bad_margin() {
        let block = Resources::new(100, 100, 10, 100);
        let _ = Resources::new(1, 1, 1, 1).blocks_needed(&block, 0.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut r = Resources::ZERO;
        for (i, kind) in ResourceKind::ALL.into_iter().enumerate() {
            r.set(kind, i as u64 + 1);
        }
        assert_eq!(r, Resources::new(1, 2, 3, 4));
        assert_eq!(r.get(ResourceKind::Dsp), 3);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Resources::ZERO).is_empty());
        assert!(!format!("{}", ResourceKind::Lut).is_empty());
    }
}
