//! Commercial FPGA device models.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tile::{ColumnSpec, TileKind};
use crate::{FabricError, Resources};

/// Bandwidth and latency parameters of the interconnect technologies that
/// cross physical-block boundaries.
///
/// The paper's latency-insensitive interface must hide exactly these
/// differences (§3.2): on-chip routing is fast and deterministic, inter-die
/// (SLR) crossings are slower, and inter-FPGA links (QSFP optics over the
/// cluster ring) are slower still. Table 4 reports the measured maxima.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkTechnology {
    /// Aggregate inter-FPGA bandwidth in Gb/s (the 100 Gb/s bidirectional
    /// ring of the paper's custom cluster, §5.2).
    pub inter_fpga_gbps: f64,
    /// Inter-die (SLR crossing) bandwidth in Gb/s (Table 4: 312.5 Gb/s).
    pub inter_die_gbps: f64,
    /// One-way inter-FPGA link latency in nanoseconds (serdes + optics).
    pub inter_fpga_latency_ns: f64,
    /// One-way inter-die crossing latency in nanoseconds.
    pub inter_die_latency_ns: f64,
    /// On-chip (intra-die) block-to-block routing latency in nanoseconds;
    /// deterministic, which is what allows ViTAL to elide buffers for
    /// intra-FPGA channels (§3.5.2).
    pub intra_die_latency_ns: f64,
}

impl LinkTechnology {
    /// Link parameters of the paper's custom-built cluster (§5.2, Table 4).
    pub const fn paper_cluster() -> Self {
        LinkTechnology {
            inter_fpga_gbps: 100.0,
            inter_die_gbps: 312.5,
            inter_fpga_latency_ns: 520.0,
            inter_die_latency_ns: 12.0,
            intra_die_latency_ns: 4.0,
        }
    }
}

impl Default for LinkTechnology {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

/// A model of one commercial FPGA device.
///
/// The model captures exactly the architectural features ViTAL's architecture
/// layer must reason about: the column-based resource layout, the clock-region
/// grid, and the multi-die (SLR) package (§3.2 "key learning").
///
/// # Example
///
/// ```
/// use vital_fabric::DeviceModel;
///
/// let d = DeviceModel::xcvu37p();
/// assert_eq!(d.dies(), 3);
/// assert!(d.total_resources().lut > 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    name: String,
    dies: u32,
    rows_per_die: u64,
    clock_region_rows: u64,
    user_columns: Vec<ColumnSpec>,
    edge_columns: Vec<ColumnSpec>,
    links: LinkTechnology,
}

impl DeviceModel {
    /// Builds a device model from raw geometry.
    ///
    /// `user_columns` are the columns available for partitioning into
    /// physical blocks; `edge_columns` (transceivers, I/O, configuration)
    /// are permanently owned by the communication/service regions.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidGeometry`] if any dimension is zero, if
    /// the die height is not a whole number of clock regions, or if the user
    /// area has no user-consumable resources.
    pub fn from_geometry(
        name: impl Into<String>,
        dies: u32,
        rows_per_die: u64,
        clock_region_rows: u64,
        user_columns: Vec<ColumnSpec>,
        edge_columns: Vec<ColumnSpec>,
        links: LinkTechnology,
    ) -> Result<Self, FabricError> {
        let name = name.into();
        if dies == 0 || rows_per_die == 0 || clock_region_rows == 0 {
            return Err(FabricError::InvalidGeometry(format!(
                "device {name}: dies, rows and clock-region height must be non-zero"
            )));
        }
        if !rows_per_die.is_multiple_of(clock_region_rows) {
            return Err(FabricError::InvalidGeometry(format!(
                "device {name}: die height {rows_per_die} is not a multiple of \
                 the clock-region height {clock_region_rows}"
            )));
        }
        let user: Resources = user_columns.iter().map(|c| c.resources(rows_per_die)).sum();
        if user.is_zero() {
            return Err(FabricError::InvalidGeometry(format!(
                "device {name}: user columns provide no resources"
            )));
        }
        Ok(DeviceModel {
            name,
            dies,
            rows_per_die,
            clock_region_rows,
            user_columns,
            edge_columns,
            links,
        })
    }

    /// The Xilinx UltraScale+ XCVU37P model used throughout the paper's
    /// evaluation (§5.2): three SLR dies, HBM-class capacity, clock regions
    /// of 60 rows.
    ///
    /// The column mix is chosen so that one 60-row band of the user area
    /// provides exactly the physical-block resources the paper reports in
    /// Table 4: 79.2k LUTs, 158.4k DFFs, 580 DSPs, ~4.22 Mb BRAM.
    pub fn xcvu37p() -> Self {
        // 9 x [9 CLB, 2 DSP, 9 CLB, 1 BRAM]  = 162 CLB + 18 DSP + 9 BRAM
        // + [3 CLB, 11 DSP, 1 BRAM]          =   3 CLB + 11 DSP + 1 BRAM
        // total                              = 165 CLB + 29 DSP + 10 BRAM
        let mut user = Vec::new();
        for _ in 0..9 {
            user.push(ColumnSpec::new(TileKind::Clb, 9));
            user.push(ColumnSpec::new(TileKind::Dsp, 2));
            user.push(ColumnSpec::new(TileKind::Clb, 9));
            user.push(ColumnSpec::new(TileKind::Bram, 1));
        }
        user.push(ColumnSpec::new(TileKind::Clb, 3));
        user.push(ColumnSpec::new(TileKind::Dsp, 11));
        user.push(ColumnSpec::new(TileKind::Bram, 1));

        // Edge strip hosting the communication/service regions: I/O and
        // transceiver columns plus the fabric (CLB/BRAM) the system circuits
        // are built from. ~7.8 % of device LUTs, matching the paper's "<10 %
        // reserved" result (§5.3).
        let edge = vec![
            ColumnSpec::new(TileKind::Io, 4),
            ColumnSpec::new(TileKind::Clb, 14),
            ColumnSpec::new(TileKind::Bram, 2),
            ColumnSpec::new(TileKind::Transceiver, 4),
        ];
        DeviceModel::from_geometry(
            "XCVU37P",
            3,
            300,
            60,
            user,
            edge,
            LinkTechnology::paper_cluster(),
        )
        .expect("XCVU37P geometry is statically valid")
    }

    /// A *periodic* XCVU37P variant whose user-column layout consists of
    /// two identical segments, so each row band can also be split into two
    /// side-by-side physical blocks — the paper's Fig. 7 notes each
    /// physical block contains two sub-blocks (regions 1a/1b). The real
    /// part's layout is not this regular (which is why [`DeviceModel::xcvu37p`]
    /// only partitions in the row direction); this variant exists to study
    /// the finer-granularity design point.
    pub fn xcvu37p_periodic() -> Self {
        let segment = [
            ColumnSpec::new(TileKind::Clb, 41),
            ColumnSpec::new(TileKind::Dsp, 7),
            ColumnSpec::new(TileKind::Clb, 41),
            ColumnSpec::new(TileKind::Bram, 5),
            ColumnSpec::new(TileKind::Dsp, 7),
        ];
        let mut user = Vec::with_capacity(2 * segment.len());
        user.extend_from_slice(&segment);
        user.extend_from_slice(&segment);
        let edge = vec![
            ColumnSpec::new(TileKind::Io, 4),
            ColumnSpec::new(TileKind::Clb, 14),
            ColumnSpec::new(TileKind::Bram, 2),
            ColumnSpec::new(TileKind::Transceiver, 4),
        ];
        DeviceModel::from_geometry(
            "XCVU37P-periodic",
            3,
            300,
            60,
            user,
            edge,
            LinkTechnology::paper_cluster(),
        )
        .expect("periodic geometry is statically valid")
    }

    /// The migration-target sibling of [`DeviceModel::xcvu37p`]: the same
    /// per-band resource capacity delivered through a **different column
    /// layout** (coarse CLB slabs with BRAM pulled ahead of the DSP strips,
    /// instead of the VU37P's fine CLB/DSP interleave).
    ///
    /// Identical 60-row-band totals mean a bitstream compiled for the
    /// default geometry's block size *fits* here, but the per-block site
    /// grid differs — so the relocatable images themselves do **not**
    /// transfer, which is exactly the situation portable checkpoints exist
    /// for: capture logical state through the scan interface on one
    /// geometry, recompile (or hit the build farm's cache) for the other,
    /// and restore.
    pub fn xcvu37p_alt() -> Self {
        // 5 x [33 CLB, 2 BRAM, 5 DSP] = 165 CLB + 10 BRAM + 25 DSP
        // + [4 DSP]                   =                      4 DSP
        // totals match xcvu37p: 165 CLB + 29 DSP + 10 BRAM columns.
        let mut user = Vec::new();
        for _ in 0..5 {
            user.push(ColumnSpec::new(TileKind::Clb, 33));
            user.push(ColumnSpec::new(TileKind::Bram, 2));
            user.push(ColumnSpec::new(TileKind::Dsp, 5));
        }
        user.push(ColumnSpec::new(TileKind::Dsp, 4));
        let edge = vec![
            ColumnSpec::new(TileKind::Transceiver, 4),
            ColumnSpec::new(TileKind::Bram, 2),
            ColumnSpec::new(TileKind::Clb, 14),
            ColumnSpec::new(TileKind::Io, 4),
        ];
        DeviceModel::from_geometry(
            "XCVU37P-ALT",
            3,
            300,
            60,
            user,
            edge,
            LinkTechnology::paper_cluster(),
        )
        .expect("XCVU37P-ALT geometry is statically valid")
    }

    /// Looks a built-in device model up by its name (case-insensitive):
    /// `"XCVU37P"`, `"XCVU37P-ALT"`, `"XCVU37P-periodic"` or `"XCVU13P"`.
    /// This is what `vitald --geometry <name>` resolves through.
    pub fn by_name(name: &str) -> Option<DeviceModel> {
        let models = [
            DeviceModel::xcvu37p(),
            DeviceModel::xcvu37p_alt(),
            DeviceModel::xcvu37p_periodic(),
            DeviceModel::vu13p(),
        ];
        models
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// The Xilinx UltraScale+ XCVU13P model, used as the normalization
    /// reference of the paper's Fig. 1a.
    pub fn vu13p() -> Self {
        let mut user = Vec::new();
        for _ in 0..15 {
            user.push(ColumnSpec::new(TileKind::Clb, 12));
            user.push(ColumnSpec::new(TileKind::Dsp, 2));
            user.push(ColumnSpec::new(TileKind::Bram, 1));
        }
        user.push(ColumnSpec::new(TileKind::Dsp, 1));
        let edge = vec![
            ColumnSpec::new(TileKind::Io, 4),
            ColumnSpec::new(TileKind::Clb, 16),
            ColumnSpec::new(TileKind::Bram, 2),
            ColumnSpec::new(TileKind::Transceiver, 4),
        ];
        DeviceModel::from_geometry(
            "XCVU13P",
            4,
            300,
            60,
            user,
            edge,
            LinkTechnology::paper_cluster(),
        )
        .expect("XCVU13P geometry is statically valid")
    }

    /// Device name (e.g. `"XCVU37P"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of SLR dies in the package.
    pub fn dies(&self) -> u32 {
        self.dies
    }

    /// Fabric rows per die.
    pub fn rows_per_die(&self) -> u64 {
        self.rows_per_die
    }

    /// Total fabric rows across all dies.
    pub fn total_rows(&self) -> u64 {
        self.rows_per_die * u64::from(self.dies)
    }

    /// Height of one clock region in rows.
    pub fn clock_region_rows(&self) -> u64 {
        self.clock_region_rows
    }

    /// Clock regions stacked per die.
    pub fn clock_regions_per_die(&self) -> u64 {
        self.rows_per_die / self.clock_region_rows
    }

    /// The partitionable (user-area) column layout.
    pub fn user_columns(&self) -> &[ColumnSpec] {
        &self.user_columns
    }

    /// The permanently reserved edge columns (I/O, transceivers).
    pub fn edge_columns(&self) -> &[ColumnSpec] {
        &self.edge_columns
    }

    /// Interconnect technology parameters.
    pub fn links(&self) -> &LinkTechnology {
        &self.links
    }

    /// Resources of a horizontal band of the user area spanning `rows` rows.
    pub fn band_resources(&self, rows: u64) -> Resources {
        self.user_columns.iter().map(|c| c.resources(rows)).sum()
    }

    /// Total user-area resources of the whole device.
    pub fn user_area_resources(&self) -> Resources {
        self.band_resources(self.total_rows())
    }

    /// Total device resources (user area plus edge columns).
    pub fn total_resources(&self) -> Resources {
        self.user_area_resources()
            + self
                .edge_columns
                .iter()
                .map(|c| c.resources(self.total_rows()))
                .sum()
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} dies x {} rows, {})",
            self.name,
            self.dies,
            self.rows_per_die,
            self.total_resources()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcvu37p_band_matches_paper_table4() {
        let d = DeviceModel::xcvu37p();
        let band = d.band_resources(60);
        assert_eq!(band.lut, 79_200);
        assert_eq!(band.ff, 158_400);
        assert_eq!(band.dsp, 580);
        assert_eq!(band.bram_kb, 4_320); // paper reports 4.22 Mb
    }

    #[test]
    fn xcvu37p_totals_are_vu37p_scale() {
        let d = DeviceModel::xcvu37p();
        let total = d.total_resources();
        // User area 1,188,000 LUTs + 100,800 in the reserved edge strip:
        // within 2% of the real XCVU37P's 1,304k LUTs.
        assert_eq!(total.lut, 1_288_800);
        assert_eq!(d.user_area_resources().lut, 1_188_000);
        assert_eq!(d.user_area_resources().dsp, 8_700);
        assert_eq!(d.clock_regions_per_die(), 5);
    }

    #[test]
    fn periodic_variant_splits_into_identical_segments() {
        let d = DeviceModel::xcvu37p_periodic();
        let cols = d.user_columns();
        let half = cols.len() / 2;
        assert_eq!(&cols[..half], &cols[half..]);
        // Capacity stays VU37P-scale.
        let band = d.band_resources(60);
        assert!(band.lut > 70_000 && band.lut < 90_000);
        assert!(band.dsp >= 500);
    }

    #[test]
    fn alt_geometry_matches_band_capacity_with_different_layout() {
        let a = DeviceModel::xcvu37p();
        let b = DeviceModel::xcvu37p_alt();
        // Same per-band capacity: apps sized for the default block fit.
        assert_eq!(a.band_resources(60), b.band_resources(60));
        assert_eq!(a.clock_region_rows(), b.clock_region_rows());
        // ...but genuinely different column layouts (not a reordering of
        // the same Vec — a different interleave entirely).
        assert_ne!(a.user_columns(), b.user_columns());
        assert_ne!(a.user_columns().len(), b.user_columns().len());
    }

    #[test]
    fn by_name_resolves_builtin_models() {
        assert_eq!(
            DeviceModel::by_name("XCVU37P").unwrap(),
            DeviceModel::xcvu37p()
        );
        assert_eq!(
            DeviceModel::by_name("xcvu37p-alt").unwrap(),
            DeviceModel::xcvu37p_alt()
        );
        assert_eq!(
            DeviceModel::by_name("XCVU37P-PERIODIC").unwrap(),
            DeviceModel::xcvu37p_periodic()
        );
        assert_eq!(
            DeviceModel::by_name("XCVU13P").unwrap(),
            DeviceModel::vu13p()
        );
        assert!(DeviceModel::by_name("XCVU99P").is_none());
    }

    #[test]
    fn vu13p_is_larger_than_vu37p() {
        let big = DeviceModel::vu13p().total_resources();
        let small = DeviceModel::xcvu37p().total_resources();
        assert!(big.lut > small.lut);
    }

    #[test]
    fn geometry_validation_rejects_misaligned_clock_regions() {
        let err = DeviceModel::from_geometry(
            "bad",
            1,
            100,
            60,
            vec![ColumnSpec::new(TileKind::Clb, 1)],
            vec![],
            LinkTechnology::paper_cluster(),
        )
        .unwrap_err();
        assert!(matches!(err, FabricError::InvalidGeometry(_)));
    }

    #[test]
    fn geometry_validation_rejects_empty_user_area() {
        let err = DeviceModel::from_geometry(
            "bad",
            1,
            60,
            60,
            vec![ColumnSpec::new(TileKind::Io, 3)],
            vec![],
            LinkTechnology::paper_cluster(),
        )
        .unwrap_err();
        assert!(matches!(err, FabricError::InvalidGeometry(_)));
    }

    #[test]
    fn serde_roundtrip() {
        let d = DeviceModel::xcvu37p();
        let json = serde_json::to_string(&d).unwrap();
        let back: DeviceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
