//! Partitioning a physical FPGA into user / communication / service regions.
//!
//! ViTAL divides each FPGA into three regions (paper Fig. 4b):
//!
//! * the **user region**, an array of *identical* physical blocks, each of
//!   which can host any compiled virtual block;
//! * the **communication region**, buffers and control logic implementing the
//!   latency-insensitive interface (plus transceiver columns);
//! * the **service region**, the circuits virtualizing peripherals (DRAM,
//!   Ethernet).
//!
//! The partition honours the two commercial-silicon constraints of §3.2:
//! physical blocks never cross a die (SLR) boundary, and every block sits at
//! the same offset relative to the clock-region grid so clock skew inside a
//! block is the same for all blocks.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DeviceModel, FabricError, PhysicalBlockId, Resources};

/// The role of a reserved region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// User region: the array of identical physical blocks.
    User,
    /// Communication region: latency-insensitive interface buffers, control
    /// logic, transceivers and the pipeline registers feeding them
    /// (paper Fig. 7 regions 2, 3, 5, 6).
    Communication,
    /// Service region: peripheral-virtualization circuits such as the shared
    /// DRAM interface (paper Fig. 7 region 4).
    Service,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionKind::User => "user",
            RegionKind::Communication => "communication",
            RegionKind::Service => "service",
        };
        f.write_str(s)
    }
}

/// A reserved (non-user) region of the floorplan and the fabric resources it
/// owns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// What the region is reserved for.
    pub kind: RegionKind,
    /// Resources owned by the region.
    pub resources: Resources,
    /// Human-readable placement note (e.g. `"edge strip, die 0"`).
    pub note: String,
}

/// One physical block of the user region.
///
/// All blocks of a valid floorplan are identical in resources, column layout
/// and clock-region offset, which is what makes runtime relocation without
/// recompilation possible (paper Fig. 4c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalBlock {
    id: PhysicalBlockId,
    die: u32,
    band_index: u64,
    row_start: u64,
    rows: u64,
    clock_region_offset: u64,
    resources: Resources,
}

impl PhysicalBlock {
    /// Device-local identifier of this block.
    pub fn id(&self) -> PhysicalBlockId {
        self.id
    }

    /// The SLR die that contains the block (blocks never cross dies).
    pub fn die(&self) -> u32 {
        self.die
    }

    /// Index of the block's row band within its die.
    pub fn band_index(&self) -> u64 {
        self.band_index
    }

    /// Absolute first fabric row of the block.
    pub fn row_start(&self) -> u64 {
        self.row_start
    }

    /// Height of the block in rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Offset of the block's first row within its clock region; identical
    /// across all blocks of a valid floorplan (clock-skew constraint, §3.2).
    pub fn clock_region_offset(&self) -> u64 {
        self.clock_region_offset
    }

    /// Programmable resources provided by the block.
    pub fn resources(&self) -> Resources {
        self.resources
    }
}

/// Builder for [`Floorplan`] (see [`Floorplan::builder`]).
///
/// # Example
///
/// ```
/// use vital_fabric::{DeviceModel, Floorplan};
///
/// let device = DeviceModel::xcvu37p();
/// let plan = Floorplan::builder(&device).block_rows(60).build()?;
/// assert_eq!(plan.user_blocks().len(), 15);
/// # Ok::<(), vital_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FloorplanBuilder<'d> {
    device: &'d DeviceModel,
    block_rows: u64,
    column_splits: u32,
}

impl<'d> FloorplanBuilder<'d> {
    fn new(device: &'d DeviceModel) -> Self {
        FloorplanBuilder {
            device,
            block_rows: device.clock_region_rows(),
            column_splits: 1,
        }
    }

    /// Sets the height of each physical block in fabric rows.
    ///
    /// Must be a multiple of the clock-region height (so every block has the
    /// same clock-skew profile) and divide the die height (so no block
    /// crosses a die boundary).
    pub fn block_rows(&mut self, rows: u64) -> &mut Self {
        self.block_rows = rows;
        self
    }

    /// Splits each row band into `splits` side-by-side blocks in the column
    /// direction. Only valid when the user-column layout divides into
    /// `splits` identical segments; commercial layouts rarely do, which is
    /// why the paper partitions in the row direction (§3.2).
    pub fn column_splits(&mut self, splits: u32) -> &mut Self {
        self.column_splits = splits;
        self
    }

    /// Validates the constraints and constructs the floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidFloorplan`] if
    /// * the block height is zero, does not divide the die height, or is not
    ///   a multiple of the clock-region height (clock-skew constraint), or
    /// * a column split does not divide the layout into identical segments.
    pub fn build(&self) -> Result<Floorplan, FabricError> {
        let d = self.device;
        if self.block_rows == 0 {
            return Err(FabricError::InvalidFloorplan(
                "block height must be non-zero".into(),
            ));
        }
        if !d.rows_per_die().is_multiple_of(self.block_rows) {
            return Err(FabricError::InvalidFloorplan(format!(
                "block height {} does not divide the die height {} — a block \
                 would cross a die boundary",
                self.block_rows,
                d.rows_per_die()
            )));
        }
        // Clock-skew constraint: every block must occupy the same position
        // relative to the clock-region grid. That holds exactly when the
        // block height is a whole number of clock regions.
        if !self.block_rows.is_multiple_of(d.clock_region_rows()) {
            return Err(FabricError::InvalidFloorplan(format!(
                "block height {} is not a multiple of the clock-region height \
                 {} — blocks would differ in clock skew",
                self.block_rows,
                d.clock_region_rows()
            )));
        }
        if self.column_splits == 0 {
            return Err(FabricError::InvalidFloorplan(
                "column splits must be at least 1".into(),
            ));
        }
        if self.column_splits > 1 {
            // A column split is only legal if the user-column layout is a
            // concatenation of `splits` identical segments; otherwise the
            // resulting blocks would not be identical.
            let cols = d.user_columns();
            if !cols.len().is_multiple_of(self.column_splits as usize) {
                return Err(FabricError::InvalidFloorplan(format!(
                    "user column layout ({} groups) does not divide into {} \
                     identical segments",
                    cols.len(),
                    self.column_splits
                )));
            }
            let seg = cols.len() / self.column_splits as usize;
            let first = &cols[..seg];
            for k in 1..self.column_splits as usize {
                if &cols[k * seg..(k + 1) * seg] != first {
                    return Err(FabricError::InvalidFloorplan(format!(
                        "user column layout segments are not identical; \
                         cannot split each band into {} blocks",
                        self.column_splits
                    )));
                }
            }
        }

        let bands_per_die = d.rows_per_die() / self.block_rows;
        let band = d.band_resources(self.block_rows);
        let block_res = if self.column_splits > 1 {
            band.scale(1.0 / f64::from(self.column_splits))
        } else {
            band
        };

        let mut blocks = Vec::new();
        let mut next = 0u32;
        for die in 0..d.dies() {
            for band_index in 0..bands_per_die {
                for _split in 0..self.column_splits {
                    let row_start =
                        u64::from(die) * d.rows_per_die() + band_index * self.block_rows;
                    blocks.push(PhysicalBlock {
                        id: PhysicalBlockId::new(next),
                        die,
                        band_index,
                        row_start,
                        rows: self.block_rows,
                        clock_region_offset: row_start % d.clock_region_rows(),
                        resources: block_res,
                    });
                    next += 1;
                }
            }
        }

        // Reserved edge strip: the bottom clock-region band of the edge
        // columns hosts the service region (shared DRAM interface, Fig. 7
        // region 4); the remainder is communication region (interface
        // buffers, transceivers, pipeline registers — regions 2/3/5/6).
        let edge_total: Resources = d
            .edge_columns()
            .iter()
            .map(|c| c.resources(d.total_rows()))
            .sum();
        let edge_service: Resources = d
            .edge_columns()
            .iter()
            .map(|c| c.resources(d.clock_region_rows()))
            .sum();
        let edge_comm = edge_total.saturating_sub(&edge_service);
        let regions = vec![
            Region {
                kind: RegionKind::Communication,
                resources: edge_comm,
                note: "edge strip: interface buffers, transceivers, pipeline registers".into(),
            },
            Region {
                kind: RegionKind::Service,
                resources: edge_service,
                note: "edge strip, bottom clock region of die 0: shared DRAM interface".into(),
            },
        ];

        Ok(Floorplan {
            device_name: d.name().to_string(),
            block_rows: self.block_rows,
            column_splits: self.column_splits,
            blocks,
            regions,
            device_total: d.total_resources(),
        })
    }
}

/// A validated partition of one FPGA into user blocks and reserved regions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    device_name: String,
    block_rows: u64,
    column_splits: u32,
    blocks: Vec<PhysicalBlock>,
    regions: Vec<Region>,
    device_total: Resources,
}

impl Floorplan {
    /// Starts building a floorplan for `device`.
    pub fn builder(device: &DeviceModel) -> FloorplanBuilder<'_> {
        FloorplanBuilder::new(device)
    }

    /// The optimal floorplan found by the design-space exploration of §5.3
    /// (see [`crate::explore_partitions`]).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NoFeasiblePartition`] if no candidate satisfies
    /// the constraints (cannot happen for the built-in device models).
    pub fn optimal_for(device: &DeviceModel) -> Result<Floorplan, FabricError> {
        crate::explore_partitions(device, &crate::PartitionObjective::default())?
            .into_iter()
            .find(|c| c.feasible)
            .map(|c| c.floorplan.expect("feasible candidate carries a floorplan"))
            .ok_or(FabricError::NoFeasiblePartition)
    }

    /// Name of the device this floorplan partitions.
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// Height of each physical block in rows.
    pub fn block_rows(&self) -> u64 {
        self.block_rows
    }

    /// Column splits per row band (1 = full-width blocks).
    pub fn column_splits(&self) -> u32 {
        self.column_splits
    }

    /// The identical physical blocks of the user region.
    pub fn user_blocks(&self) -> &[PhysicalBlock] {
        &self.blocks
    }

    /// The reserved communication/service regions.
    pub fn reserved_regions(&self) -> &[Region] {
        &self.regions
    }

    /// Resources of one physical block.
    ///
    /// # Panics
    ///
    /// Panics if the floorplan has no blocks, which `build` never produces.
    pub fn block_resources(&self) -> Resources {
        self.blocks
            .first()
            .expect("a valid floorplan has at least one block")
            .resources()
    }

    /// Total user-region resources.
    pub fn user_resources(&self) -> Resources {
        self.blocks.iter().map(|b| b.resources()).sum()
    }

    /// Total resources reserved by the system (communication + service).
    pub fn reserved_resources(&self) -> Resources {
        self.regions.iter().map(|r| r.resources).sum()
    }

    /// Fraction of the device's LUTs reserved by the system. The paper keeps
    /// this below 10 % after the buffer-elimination optimization (§5.3).
    pub fn reserved_fraction(&self) -> f64 {
        let total = self.device_total.lut;
        if total == 0 {
            return 0.0;
        }
        self.reserved_resources().lut as f64 / total as f64
    }

    /// Verifies the identity invariant: every block has the same resources,
    /// height and clock-region offset, so any virtual block can be relocated
    /// to any physical block without recompilation.
    pub fn blocks_identical(&self) -> bool {
        let Some(first) = self.blocks.first() else {
            return true;
        };
        self.blocks.iter().all(|b| {
            b.resources == first.resources
                && b.rows == first.rows
                && b.clock_region_offset == first.clock_region_offset
        })
    }

    /// `true` if this floorplan's blocks can host virtual blocks compiled
    /// for `other`'s blocks: same resources, height and clock-region offset.
    /// This is the admission check for heterogeneous clusters (paper §7):
    /// devices may differ, their *blocks* must not.
    pub fn blocks_compatible(&self, other: &Floorplan) -> bool {
        match (self.blocks.first(), other.blocks.first()) {
            (Some(a), Some(b)) => {
                a.resources == b.resources
                    && a.rows == b.rows
                    && a.clock_region_offset == b.clock_region_offset
            }
            _ => false,
        }
    }

    /// Looks up a block by id.
    pub fn block(&self, id: PhysicalBlockId) -> Option<&PhysicalBlock> {
        self.blocks.get(id.index() as usize)
    }

    /// `true` if two blocks sit on different dies (their communication must
    /// cross an SLR boundary).
    ///
    /// Returns `None` if either id is out of range.
    pub fn crosses_die(&self, a: PhysicalBlockId, b: PhysicalBlockId) -> Option<bool> {
        Some(self.block(a)?.die() != self.block(b)?.die())
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} blocks of {} rows ({} per band), reserved {:.1}%",
            self.device_name,
            self.blocks.len(),
            self.block_rows,
            self.column_splits,
            self.reserved_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceModel {
        DeviceModel::xcvu37p()
    }

    #[test]
    fn default_floorplan_has_identical_blocks() {
        let plan = Floorplan::builder(&device()).build().unwrap();
        assert_eq!(plan.user_blocks().len(), 15); // 5 bands x 3 dies
        assert!(plan.blocks_identical());
        assert_eq!(
            plan.block_resources(),
            Resources::new(79_200, 158_400, 580, 4_320)
        );
    }

    #[test]
    fn blocks_never_cross_die_boundaries() {
        let plan = Floorplan::builder(&device()).build().unwrap();
        for b in plan.user_blocks() {
            let die_start = u64::from(b.die()) * 300;
            assert!(b.row_start() >= die_start);
            assert!(b.row_start() + b.rows() <= die_start + 300);
        }
    }

    #[test]
    fn clock_skew_constraint_rejects_sub_region_blocks() {
        let err = Floorplan::builder(&device())
            .block_rows(30)
            .build()
            .unwrap_err();
        assert!(matches!(err, FabricError::InvalidFloorplan(_)));
    }

    #[test]
    fn die_boundary_constraint_rejects_non_dividing_heights() {
        // 120 is a multiple of the 60-row clock region but does not divide
        // the 300-row die.
        let err = Floorplan::builder(&device())
            .block_rows(120)
            .build()
            .unwrap_err();
        assert!(matches!(err, FabricError::InvalidFloorplan(_)));
    }

    #[test]
    fn full_die_blocks_are_allowed() {
        let plan = Floorplan::builder(&device())
            .block_rows(300)
            .build()
            .unwrap();
        assert_eq!(plan.user_blocks().len(), 3);
        assert!(plan.blocks_identical());
    }

    #[test]
    fn column_split_rejected_for_non_periodic_layout() {
        // The XCVU37P layout's tail group breaks the periodicity, exactly the
        // commercial-silicon heterogeneity the paper calls out.
        let err = Floorplan::builder(&device())
            .column_splits(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, FabricError::InvalidFloorplan(_)));
    }

    #[test]
    fn reserved_fraction_is_below_ten_percent() {
        let plan = Floorplan::builder(&device()).build().unwrap();
        assert!(
            plan.reserved_fraction() < 0.10,
            "reserved fraction {} should be < 10% (paper §5.3)",
            plan.reserved_fraction()
        );
    }

    #[test]
    fn crosses_die_detection() {
        let plan = Floorplan::builder(&device()).build().unwrap();
        let a = PhysicalBlockId::new(0); // die 0
        let b = PhysicalBlockId::new(5); // die 1 (5 bands per die)
        let c = PhysicalBlockId::new(1); // die 0
        assert_eq!(plan.crosses_die(a, b), Some(true));
        assert_eq!(plan.crosses_die(a, c), Some(false));
        assert_eq!(plan.crosses_die(a, PhysicalBlockId::new(99)), None);
    }

    #[test]
    fn compatibility_across_devices() {
        let a = Floorplan::builder(&device()).build().unwrap();
        let b = Floorplan::builder(&device()).build().unwrap();
        assert!(a.blocks_compatible(&b));
        // A full-die partition of the same device is NOT compatible.
        let coarse = Floorplan::builder(&device())
            .block_rows(300)
            .build()
            .unwrap();
        assert!(!a.blocks_compatible(&coarse));
        // A different device with a different column mix is not compatible.
        let other = Floorplan::builder(&DeviceModel::vu13p()).build().unwrap();
        assert!(!a.blocks_compatible(&other));
    }

    #[test]
    fn regions_cover_comm_and_service() {
        let plan = Floorplan::builder(&device()).build().unwrap();
        let kinds: Vec<_> = plan.reserved_regions().iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RegionKind::Communication));
        assert!(kinds.contains(&RegionKind::Service));
    }
}
