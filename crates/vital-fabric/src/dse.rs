//! Design-space exploration over candidate FPGA partitions (paper §5.3).
//!
//! The paper explores the (small, <10 candidates) space of ways to partition
//! the XCVU37P into regions, constrained by clock regions and die boundaries,
//! and picks the partition that maximizes user-exposed resources while
//! keeping the management granularity fine. This module reproduces that
//! search and is driven by the `fig7_partition_dse` report binary.

use serde::{Deserialize, Serialize};

use crate::{DeviceModel, FabricError, Floorplan};

/// Scoring weights for partition candidates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionObjective {
    /// Weight on the fraction of device resources exposed to users.
    pub user_fraction_weight: f64,
    /// Weight on management granularity (more, smaller blocks score higher).
    pub granularity_weight: f64,
    /// Blocks-per-device count at which the granularity term saturates.
    pub granularity_saturation: u32,
}

impl Default for PartitionObjective {
    fn default() -> Self {
        PartitionObjective {
            user_fraction_weight: 1.0,
            granularity_weight: 1.0,
            granularity_saturation: 16,
        }
    }
}

impl PartitionObjective {
    /// Scores a feasible floorplan; higher is better.
    pub fn score(&self, plan: &Floorplan) -> f64 {
        let user_fraction = 1.0 - plan.reserved_fraction();
        let blocks = plan.user_blocks().len() as f64;
        let granularity = (blocks / f64::from(self.granularity_saturation)).min(1.0);
        self.user_fraction_weight * user_fraction + self.granularity_weight * granularity
    }
}

/// One explored partition candidate.
#[derive(Debug, Clone)]
pub struct PartitionCandidate {
    /// Block height in rows that was attempted.
    pub block_rows: u64,
    /// Column splits per band that were attempted.
    pub column_splits: u32,
    /// Whether the candidate satisfied all constraints.
    pub feasible: bool,
    /// Why the candidate was rejected (when infeasible).
    pub rejection: Option<String>,
    /// The floorplan (when feasible).
    pub floorplan: Option<Floorplan>,
    /// Objective score (when feasible).
    pub score: Option<f64>,
}

/// The search configuration: which block heights and column splits to try.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSearch {
    /// Candidate block heights in rows.
    pub block_row_candidates: Vec<u64>,
    /// Candidate column splits per band.
    pub column_split_candidates: Vec<u32>,
}

impl Default for PartitionSearch {
    fn default() -> Self {
        PartitionSearch {
            block_row_candidates: vec![15, 20, 30, 60, 100, 150, 300],
            column_split_candidates: vec![1, 2],
        }
    }
}

impl PartitionSearch {
    /// Number of candidates the search will evaluate.
    pub fn candidate_count(&self) -> usize {
        self.block_row_candidates.len() * self.column_split_candidates.len()
    }
}

/// Exhaustively evaluates the partition candidates for `device`, returning
/// them sorted best-first (feasible candidates by descending score, then the
/// infeasible ones).
///
/// # Errors
///
/// Returns [`FabricError::NoFeasiblePartition`] if no candidate satisfies
/// the constraints.
///
/// # Example
///
/// ```
/// use vital_fabric::{explore_partitions, DeviceModel, PartitionObjective};
///
/// let device = DeviceModel::xcvu37p();
/// let ranked = explore_partitions(&device, &PartitionObjective::default())?;
/// let best = ranked.iter().find(|c| c.feasible).unwrap();
/// assert_eq!(best.block_rows, 60); // one clock region per block
/// # Ok::<(), vital_fabric::FabricError>(())
/// ```
pub fn explore_partitions(
    device: &DeviceModel,
    objective: &PartitionObjective,
) -> Result<Vec<PartitionCandidate>, FabricError> {
    explore_partitions_with(device, objective, &PartitionSearch::default())
}

/// Like [`explore_partitions`] but with an explicit candidate set.
///
/// # Errors
///
/// Returns [`FabricError::NoFeasiblePartition`] if no candidate satisfies
/// the constraints.
pub fn explore_partitions_with(
    device: &DeviceModel,
    objective: &PartitionObjective,
    search: &PartitionSearch,
) -> Result<Vec<PartitionCandidate>, FabricError> {
    let mut out = Vec::with_capacity(search.candidate_count());
    for &rows in &search.block_row_candidates {
        for &splits in &search.column_split_candidates {
            let attempt = Floorplan::builder(device)
                .block_rows(rows)
                .column_splits(splits)
                .build();
            let candidate = match attempt {
                Ok(plan) => {
                    let score = objective.score(&plan);
                    PartitionCandidate {
                        block_rows: rows,
                        column_splits: splits,
                        feasible: true,
                        rejection: None,
                        floorplan: Some(plan),
                        score: Some(score),
                    }
                }
                Err(e) => PartitionCandidate {
                    block_rows: rows,
                    column_splits: splits,
                    feasible: false,
                    rejection: Some(e.to_string()),
                    floorplan: None,
                    score: None,
                },
            };
            out.push(candidate);
        }
    }
    if !out.iter().any(|c| c.feasible) {
        return Err(FabricError::NoFeasiblePartition);
    }
    out.sort_by(|a, b| {
        b.feasible
            .cmp(&a.feasible)
            .then_with(|| match (b.score, a.score) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                _ => std::cmp::Ordering::Equal,
            })
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_space_is_small_like_the_paper() {
        // Paper: "our search space is relatively small (<10 possible
        // partitions)" after applying the commercial-silicon constraints.
        let device = DeviceModel::xcvu37p();
        let ranked = explore_partitions(&device, &PartitionObjective::default()).unwrap();
        let feasible = ranked.iter().filter(|c| c.feasible).count();
        assert!(feasible < 10, "feasible candidates: {feasible}");
        assert!(feasible >= 2);
    }

    #[test]
    fn optimal_is_one_clock_region_per_block() {
        let device = DeviceModel::xcvu37p();
        let ranked = explore_partitions(&device, &PartitionObjective::default()).unwrap();
        let best = ranked.iter().find(|c| c.feasible).unwrap();
        assert_eq!(best.block_rows, 60);
        assert_eq!(best.column_splits, 1);
    }

    #[test]
    fn periodic_device_admits_column_splits_and_dse_prefers_them() {
        // On the periodic variant the 60-row band divides into two
        // identical sub-blocks (the paper's regions 1a/1b), and the finer
        // granularity wins the objective.
        let device = DeviceModel::xcvu37p_periodic();
        let ranked = explore_partitions(&device, &PartitionObjective::default()).unwrap();
        let best = ranked.iter().find(|c| c.feasible).unwrap();
        assert_eq!(best.block_rows, 60);
        assert_eq!(best.column_splits, 2);
        let plan = best.floorplan.as_ref().unwrap();
        assert_eq!(plan.user_blocks().len(), 30);
        assert!(plan.blocks_identical());
    }

    #[test]
    fn infeasible_candidates_explain_themselves() {
        let device = DeviceModel::xcvu37p();
        let ranked = explore_partitions(&device, &PartitionObjective::default()).unwrap();
        for c in ranked.iter().filter(|c| !c.feasible) {
            assert!(c.rejection.as_deref().is_some_and(|r| !r.is_empty()));
        }
    }

    #[test]
    fn empty_search_errors() {
        let device = DeviceModel::xcvu37p();
        let search = PartitionSearch {
            block_row_candidates: vec![7], // divides nothing
            column_split_candidates: vec![1],
        };
        let err =
            explore_partitions_with(&device, &PartitionObjective::default(), &search).unwrap_err();
        assert_eq!(err, FabricError::NoFeasiblePartition);
    }

    #[test]
    fn objective_prefers_finer_granularity_at_equal_user_fraction() {
        let device = DeviceModel::xcvu37p();
        let coarse = Floorplan::builder(&device).block_rows(300).build().unwrap();
        let fine = Floorplan::builder(&device).block_rows(60).build().unwrap();
        let obj = PartitionObjective::default();
        assert!(obj.score(&fine) > obj.score(&coarse));
    }
}
