//! Historic device-capacity catalog backing the paper's Fig. 1b.
//!
//! Fig. 1b motivates ViTAL's fine-grained sharing by showing that FPGA
//! capacity keeps growing with technology generations, which makes the
//! per-device allocation of existing clouds waste ever more resources.

use serde::{Deserialize, Serialize};

/// One FPGA generation data point (largest widely-deployed part of its
/// family, by system logic cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceGeneration {
    /// Family / flagship part name.
    pub name: String,
    /// Year of introduction.
    pub year: u32,
    /// Capacity in system logic cells (thousands).
    pub logic_cells_k: u64,
}

/// The generation series plotted in Fig. 1b (public vendor data).
pub fn device_generations() -> Vec<DeviceGeneration> {
    vec![
        DeviceGeneration {
            name: "Virtex-II Pro".to_string(),
            year: 2002,
            logic_cells_k: 99,
        },
        DeviceGeneration {
            name: "Virtex-4 LX200".to_string(),
            year: 2004,
            logic_cells_k: 200,
        },
        DeviceGeneration {
            name: "Virtex-5 LX330".to_string(),
            year: 2006,
            logic_cells_k: 331,
        },
        DeviceGeneration {
            name: "Virtex-6 LX760".to_string(),
            year: 2009,
            logic_cells_k: 758,
        },
        DeviceGeneration {
            name: "Virtex-7 2000T".to_string(),
            year: 2011,
            logic_cells_k: 1_954,
        },
        DeviceGeneration {
            name: "UltraScale VU440".to_string(),
            year: 2014,
            logic_cells_k: 4_432,
        },
        DeviceGeneration {
            name: "UltraScale+ VU13P".to_string(),
            year: 2016,
            logic_cells_k: 3_780,
        },
        DeviceGeneration {
            name: "UltraScale+ VU37P (HBM)".to_string(),
            year: 2018,
            logic_cells_k: 2_852,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_are_chronological() {
        let gens = device_generations();
        assert!(gens.windows(2).all(|w| w[0].year < w[1].year));
    }

    #[test]
    fn capacity_grows_by_an_order_of_magnitude() {
        let gens = device_generations();
        let first = gens.first().unwrap().logic_cells_k;
        let max = gens.iter().map(|g| g.logic_cells_k).max().unwrap();
        assert!(max >= first * 20, "Fig. 1b: capacity keeps growing");
    }
}
