//! Identifier newtypes for FPGAs and physical blocks.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one physical FPGA device in a cluster.
///
/// # Example
///
/// ```
/// use vital_fabric::FpgaId;
///
/// let id = FpgaId::new(2);
/// assert_eq!(id.index(), 2);
/// assert_eq!(id.to_string(), "fpga2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FpgaId(u32);

impl FpgaId {
    /// Creates an FPGA identifier from a cluster-wide index.
    pub const fn new(index: u32) -> Self {
        FpgaId(index)
    }

    /// The cluster-wide index of this FPGA.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FpgaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fpga{}", self.0)
    }
}

impl From<u32> for FpgaId {
    fn from(index: u32) -> Self {
        FpgaId(index)
    }
}

/// Identifier of a physical block *within one FPGA* (index into the user
/// region's array of identical blocks).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PhysicalBlockId(u32);

impl PhysicalBlockId {
    /// Creates a block identifier from a device-local index.
    pub const fn new(index: u32) -> Self {
        PhysicalBlockId(index)
    }

    /// The device-local index of this block.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PhysicalBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pb{}", self.0)
    }
}

impl From<u32> for PhysicalBlockId {
    fn from(index: u32) -> Self {
        PhysicalBlockId(index)
    }
}

/// Cluster-wide address of a physical block: `(FPGA, block)`.
///
/// This is the unit of runtime allocation in ViTAL's system layer: the
/// resource database tracks the status of every `BlockAddr`, and the
/// relocation step can retarget a compiled virtual block to any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockAddr {
    /// The FPGA holding the block.
    pub fpga: FpgaId,
    /// The block within that FPGA's user region.
    pub block: PhysicalBlockId,
}

impl BlockAddr {
    /// Creates a cluster-wide block address.
    pub const fn new(fpga: FpgaId, block: PhysicalBlockId) -> Self {
        BlockAddr { fpga, block }
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.fpga, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let addr = BlockAddr::new(FpgaId::new(1), PhysicalBlockId::new(7));
        assert_eq!(addr.to_string(), "fpga1:pb7");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = BlockAddr::new(FpgaId::new(0), PhysicalBlockId::new(9));
        let b = BlockAddr::new(FpgaId::new(1), PhysicalBlockId::new(0));
        assert!(a < b);
    }

    #[test]
    fn from_u32() {
        assert_eq!(FpgaId::from(3).index(), 3);
        assert_eq!(PhysicalBlockId::from(4).index(), 4);
    }
}
