//! Error type of the fabric crate.

use std::error::Error;
use std::fmt;

/// Errors produced while modelling devices or partitioning them into regions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// A device geometry parameter was inconsistent.
    InvalidGeometry(String),
    /// A floorplan request violated one of the partitioning constraints
    /// (clock-region alignment, die-boundary crossing, reserved-region size).
    InvalidFloorplan(String),
    /// The design-space exploration found no feasible partition.
    NoFeasiblePartition,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::InvalidGeometry(msg) => write!(f, "invalid device geometry: {msg}"),
            FabricError::InvalidFloorplan(msg) => write!(f, "invalid floorplan: {msg}"),
            FabricError::NoFeasiblePartition => {
                write!(f, "no feasible partition satisfies the constraints")
            }
        }
    }
}

impl Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = FabricError::NoFeasiblePartition;
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<FabricError>();
    }
}
