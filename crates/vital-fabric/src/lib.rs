//! Island-style FPGA device model for the ViTAL stack.
//!
//! This crate is the *architecture substrate* of the ViTAL reproduction
//! (ASPLOS 2020, "Virtualizing FPGAs in the Cloud"). It models what the paper
//! takes from real silicon:
//!
//! * the **column-based heterogeneous fabric** of a commercial FPGA
//!   (CLB / BRAM / DSP / transceiver columns — paper §2.1, Fig. 3a),
//! * the **practical heterogeneities** of commercial parts that the paper calls
//!   out in §3.2: clock regions and multi-die (SLR) packages,
//! * the **region partitioning** that supports the homogeneous abstraction:
//!   user region split into identical physical blocks, plus communication and
//!   service regions reserved by the system (Fig. 4b, Fig. 7),
//! * the **design-space exploration** over candidate partitions used in §5.3.
//!
//! # Example
//!
//! ```
//! use vital_fabric::{DeviceModel, Floorplan};
//!
//! let device = DeviceModel::xcvu37p();
//! let plan = Floorplan::optimal_for(&device)?;
//! assert!(plan.user_blocks().len() >= 8);
//! // All physical blocks are identical, so any virtual block can be
//! // relocated into any physical block without recompilation.
//! assert!(plan.blocks_identical());
//! # Ok::<(), vital_fabric::FabricError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod device;
mod dse;
mod error;
mod floorplan;
mod ids;
mod resources;
mod tile;

pub use catalog::{device_generations, DeviceGeneration};
pub use device::{DeviceModel, LinkTechnology};
pub use dse::{
    explore_partitions, explore_partitions_with, PartitionCandidate, PartitionObjective,
    PartitionSearch,
};
pub use error::FabricError;
pub use floorplan::{Floorplan, FloorplanBuilder, PhysicalBlock, Region, RegionKind};
pub use ids::{BlockAddr, FpgaId, PhysicalBlockId};
pub use resources::{ResourceKind, Resources, Utilization};
pub use tile::{repeat_pattern, ColumnSpec, TileKind};
