//! Tiles and resource columns of the island-style fabric.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Resources;

/// The kind of tile occupying one (column, row) site of the fabric grid.
///
/// Commercial FPGAs are column-based: every column contains a single kind of
/// tile, repeated down the full height of the die (paper §2.1 / §3.2). ViTAL
/// exploits this by partitioning the device in the *row* direction, which
/// preserves the column periodicity and keeps physical blocks identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// Configurable logic block: LUTs plus flip-flops.
    Clb,
    /// Block RAM tile (one RAMB36 every `BRAM_ROW_PERIOD` rows).
    Bram,
    /// DSP slice tile (one DSP48 every `DSP_ROW_PERIOD` rows).
    Dsp,
    /// High-speed serial transceiver (GT) tile.
    Transceiver,
    /// I/O or configuration tile (no user resources).
    Io,
}

impl TileKind {
    /// LUTs per CLB tile row.
    pub const CLB_LUTS: u64 = 8;
    /// Flip-flops per CLB tile row.
    pub const CLB_FFS: u64 = 16;
    /// A BRAM column carries one 36 kb RAMB36 every this many rows.
    pub const BRAM_ROW_PERIOD: u64 = 5;
    /// Kilobits per RAMB36.
    pub const BRAM_KB: u64 = 36;
    /// A DSP column carries one DSP48 every this many rows.
    pub const DSP_ROW_PERIOD: u64 = 3;

    /// User-visible resources contributed by a column of this tile kind over
    /// `rows` consecutive rows.
    ///
    /// Row counts that are not multiples of the BRAM/DSP periods floor the
    /// hard-block count, mirroring how a partial column slice on real silicon
    /// cannot split a hard block.
    pub fn column_resources(self, rows: u64) -> Resources {
        match self {
            TileKind::Clb => Resources::new(rows * Self::CLB_LUTS, rows * Self::CLB_FFS, 0, 0),
            TileKind::Bram => {
                Resources::new(0, 0, 0, (rows / Self::BRAM_ROW_PERIOD) * Self::BRAM_KB)
            }
            TileKind::Dsp => Resources::new(0, 0, rows / Self::DSP_ROW_PERIOD, 0),
            TileKind::Transceiver | TileKind::Io => Resources::ZERO,
        }
    }

    /// `true` if the tile provides resources a user design can consume.
    pub fn is_user_resource(self) -> bool {
        matches!(self, TileKind::Clb | TileKind::Bram | TileKind::Dsp)
    }
}

impl fmt::Display for TileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TileKind::Clb => "CLB",
            TileKind::Bram => "BRAM",
            TileKind::Dsp => "DSP",
            TileKind::Transceiver => "GT",
            TileKind::Io => "IO",
        };
        f.write_str(s)
    }
}

/// A run-length-encoded group of adjacent identical columns.
///
/// Device column layouts repeat small patterns many times
/// (`CLB CLB … BRAM CLB … DSP`), so layouts are described as a sequence of
/// `ColumnSpec`s rather than one entry per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// Tile kind for every column in the group.
    pub kind: TileKind,
    /// Number of adjacent columns of this kind.
    pub count: u32,
}

impl ColumnSpec {
    /// Creates a column group.
    pub const fn new(kind: TileKind, count: u32) -> Self {
        ColumnSpec { kind, count }
    }

    /// Resources contributed by the whole group over `rows` rows.
    pub fn resources(&self, rows: u64) -> Resources {
        self.kind.column_resources(rows) * u64::from(self.count)
    }
}

impl fmt::Display for ColumnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.count, self.kind)
    }
}

/// Expands a repeating pattern into a flat column-spec list.
///
/// # Example
///
/// ```
/// use vital_fabric::{ColumnSpec, TileKind};
/// use vital_fabric::repeat_pattern;
///
/// // 2 repetitions of [4 CLB, 1 BRAM] -> 10 columns total.
/// let cols = repeat_pattern(
///     &[ColumnSpec::new(TileKind::Clb, 4), ColumnSpec::new(TileKind::Bram, 1)],
///     2,
/// );
/// let total: u32 = cols.iter().map(|c| c.count).sum();
/// assert_eq!(total, 10);
/// ```
pub fn repeat_pattern(pattern: &[ColumnSpec], times: u32) -> Vec<ColumnSpec> {
    let mut out = Vec::with_capacity(pattern.len() * times as usize);
    for _ in 0..times {
        out.extend_from_slice(pattern);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clb_column_resources() {
        let r = TileKind::Clb.column_resources(60);
        assert_eq!(r, Resources::new(480, 960, 0, 0));
    }

    #[test]
    fn bram_column_floors_partial_blocks() {
        // 60 rows -> 12 RAMB36 -> 432 kb; 59 rows -> 11 RAMB36.
        assert_eq!(TileKind::Bram.column_resources(60).bram_kb, 432);
        assert_eq!(TileKind::Bram.column_resources(59).bram_kb, 11 * 36);
    }

    #[test]
    fn dsp_column_period() {
        assert_eq!(TileKind::Dsp.column_resources(60).dsp, 20);
        assert_eq!(TileKind::Dsp.column_resources(2).dsp, 0);
    }

    #[test]
    fn non_user_tiles_have_no_resources() {
        assert!(TileKind::Transceiver.column_resources(100).is_zero());
        assert!(TileKind::Io.column_resources(100).is_zero());
        assert!(!TileKind::Io.is_user_resource());
        assert!(TileKind::Clb.is_user_resource());
    }

    #[test]
    fn column_spec_multiplies() {
        let spec = ColumnSpec::new(TileKind::Clb, 165);
        let r = spec.resources(60);
        assert_eq!(r.lut, 165 * 60 * 8);
        assert_eq!(r.ff, 165 * 60 * 16);
    }
}
