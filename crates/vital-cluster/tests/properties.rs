//! Property-based tests of the discrete-event simulator: for any workload
//! and any of several well-formed policies, the simulation must complete
//! every request with physically sensible timings and bounded metrics.

use proptest::prelude::*;
use vital_cluster::{
    AppRequest, ClusterConfig, ClusterSim, ClusterView, Deployment, PendingRequest, ReconfigKind,
    Scheduler,
};
use vital_fabric::BlockAddr;

/// A simple well-formed policy used as the test vehicle: first-fit on a
/// single FPGA, whole-cluster-wide spanning as a fallback.
struct SpanningFirstFit;

impl Scheduler for SpanningFirstFit {
    fn name(&self) -> &str {
        "prop-first-fit"
    }

    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
        let mut free: Vec<Vec<BlockAddr>> = (0..view.fpga_count())
            .map(|f| view.free_blocks_of(f))
            .collect();
        let mut out = Vec::new();
        for p in pending {
            let need = p.request.blocks_needed as usize;
            // Single FPGA if possible...
            if let Some(f) = (0..free.len()).find(|&f| free[f].len() >= need) {
                let blocks: Vec<BlockAddr> = free[f].drain(..need).collect();
                out.push(Deployment {
                    request: p.request.id,
                    blocks,
                    reconfig: ReconfigKind::PartialPerBlock,
                });
                continue;
            }
            // ...else span greedily.
            let total: usize = free.iter().map(Vec::len).sum();
            if total >= need {
                let mut blocks = Vec::with_capacity(need);
                for f in free.iter_mut() {
                    let take = f.len().min(need - blocks.len());
                    blocks.extend(f.drain(..take));
                    if blocks.len() == need {
                        break;
                    }
                }
                out.push(Deployment {
                    request: p.request.id,
                    blocks,
                    reconfig: ReconfigKind::PartialPerBlock,
                });
            }
        }
        out
    }
}

fn arb_requests() -> impl Strategy<Value = Vec<AppRequest>> {
    prop::collection::vec((1u32..=15, 0.1f64..5.0, 0.0f64..10.0, 0.0f64..1.0), 1..25).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (blocks, service, arrival, comm))| {
                    AppRequest::new(i as u64, format!("r{i}"), blocks, service * 1.0e9)
                        .with_throughput(1.0e9)
                        .with_comm_intensity(comm)
                        .arriving_at(arrival)
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request completes, with causally ordered timestamps and a
    /// service time at least the standalone execution time.
    #[test]
    fn all_requests_complete_with_sane_timings(reqs in arb_requests()) {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let n = reqs.len();
        let expectations: Vec<(u64, f64)> = reqs
            .iter()
            .map(|r| (r.id.0, r.standalone_service_s()))
            .collect();
        let report = sim.run(&mut SpanningFirstFit, reqs);
        prop_assert_eq!(report.completed(), n);
        for o in &report.outcomes {
            prop_assert!(o.scheduled_s >= o.arrival_s - 1e-9);
            prop_assert!(o.exec_start_s >= o.scheduled_s - 1e-9);
            prop_assert!(o.completion_s >= o.exec_start_s);
            let standalone = expectations
                .iter()
                .find(|(id, _)| *id == o.id.0)
                .map(|&(_, s)| s)
                .unwrap();
            prop_assert!(
                o.service_s >= standalone - 1e-9,
                "service {} below standalone {}",
                o.service_s,
                standalone
            );
            prop_assert!(o.blocks_allocated >= o.blocks_needed);
            prop_assert!(o.fpgas_used >= 1);
        }
        // Metric bounds.
        prop_assert!(report.block_utilization >= 0.0 && report.block_utilization <= 1.0 + 1e-9);
        prop_assert!(report.effective_utilization <= report.block_utilization + 1e-9);
        prop_assert!(report.pressured_utilization >= 0.0
            && report.pressured_utilization <= 1.0 + 1e-9);
        prop_assert!(report.spanning_fraction() >= 0.0 && report.spanning_fraction() <= 1.0);
        prop_assert!(report.avg_concurrency <= report.peak_concurrency as f64 + 1e-9);
        // Makespan is after the last arrival.
        prop_assert!(report.makespan_s >= report.outcomes.iter()
            .map(|o| o.arrival_s).fold(0.0, f64::max));
    }

    /// Single-FPGA deployments never pay the spanning penalty: service time
    /// equals the standalone time plus nothing (partial reconfig excluded).
    #[test]
    fn no_penalty_without_spanning(
        blocks in 1u32..=15,
        service in 0.1f64..5.0,
    ) {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let reqs = vec![AppRequest::new(0, "solo", blocks, service * 1.0e9)
            .with_throughput(1.0e9)
            .with_comm_intensity(1.0)];
        let report = sim.run(&mut SpanningFirstFit, reqs);
        let o = &report.outcomes[0];
        prop_assert_eq!(o.fpgas_used, 1);
        prop_assert!((o.service_s - service).abs() < 1e-6);
        prop_assert_eq!(o.interface_overhead_fraction, 0.0);
    }
}
