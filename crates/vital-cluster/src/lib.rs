//! Discrete-event simulator of an FPGA cluster (the paper's evaluation
//! platform, §5.2): four XCVU37P boards on a 100 Gb/s bidirectional ring.
//!
//! The paper evaluates ViTAL's system layer on real hardware; this crate is
//! the reproduction's stand-in. It simulates, at the event level, exactly
//! the quantities the paper's §5.5 metrics depend on:
//!
//! * arrival, queueing and deployment of application requests,
//! * per-block partial reconfiguration vs. full-device reconfiguration
//!   (including the disturbance full reconfiguration causes co-runners),
//! * the throughput penalty of spanning an application across FPGAs
//!   (bounded by the ring bandwidth) and the latency overhead of the
//!   latency-insensitive interface,
//! * response time (wait + service), block utilization, concurrency and
//!   multi-FPGA spanning rate.
//!
//! Scheduling policy is pluggable via the [`Scheduler`] trait: ViTAL's
//! communication-aware controller lives in `vital-runtime`, the per-device
//! cloud baseline and AmorphOS modes in `vital-baselines`.
//!
//! # Example
//!
//! ```
//! use vital_cluster::{AppRequest, ClusterConfig, ClusterSim, Scheduler,
//!                     ClusterView, Deployment, PendingRequest, ReconfigKind};
//!
//! /// A trivial policy: first-fit blocks on a single FPGA.
//! struct FirstFit;
//! impl Scheduler for FirstFit {
//!     fn name(&self) -> &str { "first-fit" }
//!     fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
//!         let mut out = Vec::new();
//!         for p in pending {
//!             for fpga in 0..view.fpga_count() {
//!                 let free = view.free_blocks_of(fpga);
//!                 if free.len() >= p.request.blocks_needed as usize {
//!                     out.push(Deployment {
//!                         request: p.request.id,
//!                         blocks: free[..p.request.blocks_needed as usize].to_vec(),
//!                         reconfig: ReconfigKind::PartialPerBlock,
//!                     });
//!                     break;
//!                 }
//!             }
//!         }
//!         out
//!     }
//! }
//!
//! let requests = vec![AppRequest::new(0, "app", 3, 1.0e9).arriving_at(0.0)];
//! let report = ClusterSim::new(ClusterConfig::paper_cluster())
//!     .run(&mut FirstFit, requests);
//! assert_eq!(report.completed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod metrics;
mod request;
mod ring;
mod sim;
mod state;
mod topology;

pub use error::ClusterError;
pub use metrics::{CompileMetrics, FailedOutcome, RequestOutcome, SimReport};
pub use request::{AppRequest, RequestId};
pub use ring::RingNetwork;
pub use sim::ClusterSim;
pub use state::{
    ClusterConfig, ClusterView, Deployment, FaultEvent, FaultPlan, FaultSpec, InstanceId,
    PendingRequest, ReconfigKind, RetryPolicy, Scheduler,
};
pub use topology::{LinkSpec, Topology};
