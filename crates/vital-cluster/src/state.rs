//! Cluster configuration, observable state, and the scheduling interface.

use std::fmt;

use serde::{Deserialize, Serialize};
use vital_fabric::{BlockAddr, FpgaId, PhysicalBlockId};

use crate::{AppRequest, RequestId};

/// Static parameters of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of FPGAs on the ring.
    pub fpgas: usize,
    /// Physical blocks per FPGA user region.
    pub blocks_per_fpga: usize,
    /// Ring bandwidth in Gb/s (each direction).
    pub ring_gbps: f64,
    /// Partial reconfiguration time for one block, in seconds (ICAP-limited).
    pub per_block_reconfig_s: f64,
    /// Full-device reconfiguration time in seconds.
    pub full_reconfig_s: f64,
    /// One-way inter-FPGA latency in seconds (interface latency overhead).
    pub inter_fpga_latency_s: f64,
}

impl ClusterConfig {
    /// The paper's platform: 4 FPGAs, 15 blocks each, 100 Gb/s ring.
    /// Reconfiguration times follow from the ~79 Mb per-block partial
    /// bitstream and the ~1.3 Gb full bitstream over a ~6.4 Gb/s ICAP.
    pub fn paper_cluster() -> Self {
        ClusterConfig {
            fpgas: 4,
            blocks_per_fpga: 15,
            ring_gbps: 100.0,
            per_block_reconfig_s: 0.0123,
            full_reconfig_s: 0.203,
            inter_fpga_latency_s: 520.0e-9,
        }
    }

    /// Total physical blocks in the cluster.
    pub fn total_blocks(&self) -> usize {
        self.fpgas * self.blocks_per_fpga
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

/// How a deployment programs the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReconfigKind {
    /// ViTAL-style: each allocated block is programmed individually with
    /// partial reconfiguration; co-running applications are unaffected.
    PartialPerBlock,
    /// Whole-device programming (the existing-cloud baseline, and AmorphOS
    /// high-throughput images): co-running applications on the device are
    /// paused for the duration.
    FullDevice,
    /// ISA-level virtualization (the `vital-isa` backend): the fabric holds
    /// a static accelerator template, so "programming" a block means
    /// pointing its compute tile at the tenant's instruction stream —
    /// micro-seconds per tile, no reconfiguration, no co-runner impact.
    Instruction,
}

/// A running application instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

/// A scheduling decision: deploy `request` onto `blocks`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    /// The pending request being served.
    pub request: RequestId,
    /// The physical blocks allocated (must be free; may exceed the
    /// request's need, e.g. the baseline allocates a whole FPGA).
    pub blocks: Vec<BlockAddr>,
    /// How the fabric is programmed.
    pub reconfig: ReconfigKind,
}

/// A request waiting in the scheduler's queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingRequest {
    /// The request.
    pub request: AppRequest,
    /// When it arrived (seconds).
    pub arrived_s: f64,
}

/// An injected FPGA failure: the device goes offline at `fail_at_s`
/// (killing and re-queueing everything running on it) and, optionally,
/// comes back at `repair_at_s`.
///
/// Failure injection exercises the elasticity the paper attributes to
/// decoupled allocation: because bitstreams are relocatable, a policy can
/// redeploy the victims onto the surviving FPGAs without recompilation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The failing FPGA.
    pub fpga: u32,
    /// When it fails (seconds).
    pub fail_at_s: f64,
    /// When it returns, if ever.
    pub repair_at_s: Option<f64>,
}

/// One scripted fault-injection event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// An FPGA crashes: it goes offline, everything touching it is evicted.
    FpgaCrash {
        /// The crashing FPGA.
        fpga: u32,
        /// When it crashes (seconds).
        at_s: f64,
    },
    /// A crashed FPGA returns to the pool.
    FpgaRecover {
        /// The recovering FPGA.
        fpga: u32,
        /// When it returns (seconds).
        at_s: f64,
    },
    /// Ring link `link` (joining FPGA `link` and `link + 1 mod n`) goes
    /// down: spanning instances whose traffic crossed it are evicted, and
    /// later deployments pay the rerouted (long-way-around) hop penalty.
    RingLinkDown {
        /// The failing link.
        link: u32,
        /// When it fails (seconds).
        at_s: f64,
    },
    /// A downed ring link comes back.
    RingLinkUp {
        /// The recovering link.
        link: u32,
        /// When it returns (seconds).
        at_s: f64,
    },
}

impl FaultEvent {
    /// When the event fires.
    pub fn at_s(&self) -> f64 {
        match *self {
            FaultEvent::FpgaCrash { at_s, .. }
            | FaultEvent::FpgaRecover { at_s, .. }
            | FaultEvent::RingLinkDown { at_s, .. }
            | FaultEvent::RingLinkUp { at_s, .. } => at_s,
        }
    }
}

/// What happens to a request after a fault evicts it: how often it is
/// retried, how long each retry waits, and when the simulator gives up and
/// records the request as [`Failed`](crate::FailedOutcome).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum deployment attempts per request (`0` = unbounded). A
    /// request evicted on its `max_attempts`-th attempt is not re-queued.
    pub max_attempts: u32,
    /// Backoff before the first retry, in seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff of each further retry.
    pub backoff_multiplier: f64,
}

impl RetryPolicy {
    /// Unbounded immediate retries — the behaviour of the plain
    /// [`FaultSpec`] API.
    pub fn unbounded() -> Self {
        RetryPolicy {
            max_attempts: 0,
            base_backoff_s: 0.0,
            backoff_multiplier: 1.0,
        }
    }

    /// At most `max_attempts` attempts with exponential backoff: 0.5 s
    /// before the first retry, doubling each time.
    pub fn bounded(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff_s: 0.5,
            backoff_multiplier: 2.0,
        }
    }

    /// Sets the base backoff.
    #[must_use]
    pub fn with_backoff(mut self, base_s: f64, multiplier: f64) -> Self {
        self.base_backoff_s = base_s.max(0.0);
        self.backoff_multiplier = multiplier.max(1.0);
        self
    }

    /// `true` if a request evicted on its `attempts`-th deployment attempt
    /// is out of retries.
    pub fn gives_up_after(&self, attempts: u32) -> bool {
        self.max_attempts != 0 && attempts >= self.max_attempts
    }

    /// Backoff before re-queueing a request evicted on its `attempts`-th
    /// attempt.
    pub fn backoff_s(&self, attempts: u32) -> f64 {
        self.base_backoff_s
            * self
                .backoff_multiplier
                .powi(attempts.saturating_sub(1) as i32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// A scripted fault-injection scenario: a set of [`FaultEvent`]s plus the
/// [`RetryPolicy`] governing evicted requests.
///
/// ```
/// use vital_cluster::{FaultPlan, RetryPolicy};
/// let plan = FaultPlan::new()
///     .fpga_crash(1, 4.0)
///     .fpga_recover(1, 12.0)
///     .ring_link_down(0, 2.0)
///     .ring_link_up(0, 6.0)
///     .with_retry(RetryPolicy::bounded(3));
/// assert_eq!(plan.events.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// The scripted events.
    pub events: Vec<FaultEvent>,
    /// Retry behaviour for evicted requests.
    pub retry: RetryPolicy,
    /// When `true`, the runtime suspends each eviction victim through the
    /// portable-checkpoint path before its blocks free: the re-queued
    /// request carries only its remaining work and resumes wherever the
    /// scheduler next places it — including a different pod. When `false`
    /// (the default, matching the pre-checkpoint fault model) an evicted
    /// request restarts from scratch and its partial progress counts as
    /// wasted block-seconds.
    pub portable_checkpoints: bool,
}

impl FaultPlan {
    /// An empty plan (no faults, unbounded retry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an FPGA crash at `at_s`.
    #[must_use]
    pub fn fpga_crash(mut self, fpga: u32, at_s: f64) -> Self {
        self.events.push(FaultEvent::FpgaCrash { fpga, at_s });
        self
    }

    /// Adds an FPGA recovery at `at_s`.
    #[must_use]
    pub fn fpga_recover(mut self, fpga: u32, at_s: f64) -> Self {
        self.events.push(FaultEvent::FpgaRecover { fpga, at_s });
        self
    }

    /// Takes ring link `link` down at `at_s`.
    #[must_use]
    pub fn ring_link_down(mut self, link: u32, at_s: f64) -> Self {
        self.events.push(FaultEvent::RingLinkDown { link, at_s });
        self
    }

    /// Brings ring link `link` back at `at_s`.
    #[must_use]
    pub fn ring_link_up(mut self, link: u32, at_s: f64) -> Self {
        self.events.push(FaultEvent::RingLinkUp { link, at_s });
        self
    }

    /// Sets the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Suspends eviction victims through the runtime's portable-checkpoint
    /// path, so re-queued requests resume with their progress intact
    /// instead of restarting from scratch.
    #[must_use]
    pub fn with_portable_checkpoints(mut self) -> Self {
        self.portable_checkpoints = true;
        self
    }
}

impl From<&[FaultSpec]> for FaultPlan {
    /// The legacy crash/repair schedule as a plan with unbounded retry.
    fn from(faults: &[FaultSpec]) -> Self {
        let mut plan = FaultPlan::new();
        for f in faults {
            plan = plan.fpga_crash(f.fpga, f.fail_at_s);
            if let Some(repair) = f.repair_at_s {
                plan = plan.fpga_recover(f.fpga, repair);
            }
        }
        plan
    }
}

/// The scheduler-visible state of the cluster.
#[derive(Debug, Clone)]
pub struct ClusterView {
    config: ClusterConfig,
    /// `busy[f][b]` = the instance occupying block `b` of FPGA `f`.
    busy: Vec<Vec<Option<InstanceId>>>,
    /// Vacant-slot count per FPGA (maintained incrementally so per-pod
    /// summaries stay O(FPGAs), not O(blocks)). Counts vacancy regardless
    /// of health; [`ClusterView::free_count_of`] masks offline devices.
    free_counts: Vec<usize>,
    offline: Vec<bool>,
    link_down: Vec<bool>,
    topology: std::sync::Arc<crate::Topology>,
    now_s: f64,
}

impl ClusterView {
    #[cfg(test)]
    pub(crate) fn new(config: ClusterConfig) -> Self {
        Self::with_layout(config, &vec![config.blocks_per_fpga; config.fpgas])
    }

    #[cfg(test)]
    pub(crate) fn with_layout(config: ClusterConfig, blocks_per_fpga: &[usize]) -> Self {
        let topology = std::sync::Arc::new(crate::Topology::ring(blocks_per_fpga.len().max(1)));
        Self::with_topology(config, blocks_per_fpga, topology)
    }

    pub(crate) fn with_topology(
        config: ClusterConfig,
        blocks_per_fpga: &[usize],
        topology: std::sync::Arc<crate::Topology>,
    ) -> Self {
        ClusterView {
            busy: blocks_per_fpga.iter().map(|&n| vec![None; n]).collect(),
            free_counts: blocks_per_fpga.to_vec(),
            offline: vec![false; blocks_per_fpga.len()],
            link_down: vec![false; topology.link_count()],
            topology,
            config,
            now_s: 0.0,
        }
    }

    /// The cluster interconnect. Communication-aware policies query hop
    /// distances (and the pod layer) through this instead of assuming a
    /// single ring.
    pub fn topology(&self) -> &crate::Topology {
        &self.topology
    }

    /// Number of interconnect pods (1 for the paper's single ring).
    pub fn pod_count(&self) -> usize {
        self.topology.pod_count()
    }

    /// FPGA members of one pod, in index order.
    pub fn pod_members(&self, pod: usize) -> Vec<usize> {
        self.topology.pod_members(pod)
    }

    /// Free blocks per pod, in one O(FPGAs) pass — the thin global layer
    /// a sharded scheduler consults before materializing any per-FPGA
    /// free list.
    pub fn pod_free_counts(&self) -> Vec<usize> {
        let mut free = vec![0; self.pod_count()];
        for f in 0..self.fpga_count() {
            free[self.topology.pod_of(f)] += self.free_count_of(f);
        }
        free
    }

    /// Physical blocks of one FPGA (heterogeneous clusters may differ per
    /// device — the paper's §7 extension).
    pub fn blocks_per_fpga_of(&self, fpga: usize) -> usize {
        self.busy.get(fpga).map(Vec::len).unwrap_or(0)
    }

    /// Total physical blocks across the (possibly heterogeneous) cluster.
    pub fn total_blocks(&self) -> usize {
        self.busy.iter().map(Vec::len).sum()
    }

    pub(crate) fn set_offline(&mut self, fpga: usize, offline: bool) {
        if let Some(slot) = self.offline.get_mut(fpga) {
            *slot = offline;
        }
    }

    /// `true` if the FPGA is currently online (failed devices expose no
    /// free blocks and accept no deployments).
    pub fn fpga_online(&self, fpga: usize) -> bool {
        self.offline.get(fpga).is_some_and(|o| !o)
    }

    pub(crate) fn set_link(&mut self, link: usize, down: bool) {
        if let Some(slot) = self.link_down.get_mut(link) {
            *slot = down;
        }
    }

    /// `true` if ring link `link` (joining FPGA `link` and its clockwise
    /// neighbour) is currently up. Out-of-range links read as up.
    pub fn link_up(&self, link: usize) -> bool {
        self.link_down.get(link).is_none_or(|d| !d)
    }

    /// Indices of the ring links currently down. Communication-aware
    /// policies can avoid spanning across them: traffic reroutes the long
    /// way around, inflating the hop penalty.
    pub fn down_links(&self) -> Vec<usize> {
        self.link_down
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i)
            .collect()
    }

    pub(crate) fn set_now(&mut self, now_s: f64) {
        self.now_s = now_s;
    }

    pub(crate) fn occupy(&mut self, addr: BlockAddr, inst: InstanceId) {
        let fpga = addr.fpga.index() as usize;
        let slot = &mut self.busy[fpga][addr.block.index() as usize];
        if slot.is_none() {
            self.free_counts[fpga] -= 1;
        }
        *slot = Some(inst);
    }

    pub(crate) fn vacate(&mut self, addr: BlockAddr) {
        let fpga = addr.fpga.index() as usize;
        let slot = &mut self.busy[fpga][addr.block.index() as usize];
        if slot.is_some() {
            self.free_counts[fpga] += 1;
        }
        *slot = None;
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current simulation time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Number of FPGAs.
    pub fn fpga_count(&self) -> usize {
        self.busy.len()
    }

    /// Is a specific block free (its FPGA online and the block vacant)?
    pub fn is_free(&self, addr: BlockAddr) -> bool {
        self.fpga_online(addr.fpga.index() as usize)
            && self
                .busy
                .get(addr.fpga.index() as usize)
                .and_then(|f| f.get(addr.block.index() as usize))
                .is_some_and(|b| b.is_none())
    }

    /// The occupant of a block, if any.
    pub fn occupant(&self, addr: BlockAddr) -> Option<InstanceId> {
        self.busy
            .get(addr.fpga.index() as usize)
            .and_then(|f| f.get(addr.block.index() as usize))
            .copied()
            .flatten()
    }

    /// Free block addresses of one FPGA, in index order (empty while the
    /// FPGA is offline).
    pub fn free_blocks_of(&self, fpga: usize) -> Vec<BlockAddr> {
        if !self.fpga_online(fpga) {
            return Vec::new();
        }
        let Some(blocks) = self.busy.get(fpga) else {
            return Vec::new();
        };
        blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_none())
            .map(|(i, _)| BlockAddr::new(FpgaId::new(fpga as u32), PhysicalBlockId::new(i as u32)))
            .collect()
    }

    /// Number of free blocks on one FPGA (zero while offline).
    pub fn free_count_of(&self, fpga: usize) -> usize {
        if !self.fpga_online(fpga) {
            return 0;
        }
        self.free_counts.get(fpga).copied().unwrap_or(0)
    }

    /// Total free blocks across the cluster.
    pub fn total_free(&self) -> usize {
        (0..self.fpga_count()).map(|f| self.free_count_of(f)).sum()
    }

    /// `true` if the FPGA hosts no instance at all (an offline FPGA is
    /// never idle-available).
    pub fn fpga_idle(&self, fpga: usize) -> bool {
        self.blocks_per_fpga_of(fpga) > 0
            && self.free_count_of(fpga) == self.blocks_per_fpga_of(fpga)
    }

    /// Distinct instances currently running on one FPGA.
    pub fn instances_on(&self, fpga: usize) -> Vec<InstanceId> {
        let mut v: Vec<InstanceId> = self
            .busy
            .get(fpga)
            .map(|f| f.iter().flatten().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A runtime resource-management policy (paper §3.4).
///
/// The simulator calls [`Scheduler::schedule`] whenever the pending queue or
/// the free-block set changes; the policy returns zero or more deployments,
/// which the simulator validates and applies.
pub trait Scheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &str;

    /// Decide which pending requests to deploy, given the current state.
    /// Requests are provided in arrival order.
    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment>;

    /// Time-slice quantum in seconds, if the policy runs the cluster in
    /// preemptive time-sliced mode (`None` — the default — disables
    /// preemption).
    ///
    /// When a policy declares a quantum, the simulator arms a quantum
    /// timer for every instance the moment it starts executing. At each
    /// expiry, *if* demand is queued, the instance is swapped out: its
    /// blocks free, its progress is preserved (the runtime suspends
    /// tenants through the checkpoint path, so nothing is lost), and the
    /// request re-queues with only its remaining work. Swapping back in
    /// pays the deployment's reconfiguration cost again — the price of
    /// time-multiplexing the fabric. This is what lets the cluster admit
    /// more tenants than physically fit.
    ///
    /// Quantum timers ride the same generation protocol as completions, so
    /// a full-device reconfiguration that pauses co-runners also cancels
    /// their pending expiries; time-slicing is intended for
    /// [`ReconfigKind::PartialPerBlock`] policies.
    fn quantum_s(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_occupy_vacate_roundtrip() {
        let mut v = ClusterView::new(ClusterConfig::paper_cluster());
        let addr = BlockAddr::new(FpgaId::new(1), PhysicalBlockId::new(3));
        assert!(v.is_free(addr));
        v.occupy(addr, InstanceId(7));
        assert!(!v.is_free(addr));
        assert_eq!(v.occupant(addr), Some(InstanceId(7)));
        assert_eq!(v.free_count_of(1), 14);
        assert_eq!(v.instances_on(1), vec![InstanceId(7)]);
        assert!(!v.fpga_idle(1));
        v.vacate(addr);
        assert!(v.fpga_idle(1));
        assert_eq!(v.total_free(), 60);
    }

    #[test]
    fn out_of_range_queries_are_safe() {
        let v = ClusterView::new(ClusterConfig::paper_cluster());
        let bad = BlockAddr::new(FpgaId::new(99), PhysicalBlockId::new(0));
        assert!(!v.is_free(bad));
        assert!(v.free_blocks_of(99).is_empty());
        assert_eq!(v.free_count_of(99), 0);
    }

    #[test]
    fn paper_cluster_dimensions() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.total_blocks(), 60);
        assert!(c.full_reconfig_s > c.per_block_reconfig_s);
    }
}
