//! Cluster interconnect topologies beyond the single ring (paper §7).
//!
//! The paper evaluates a four-FPGA bidirectional ring, and until this
//! module everything downstream of [`RingNetwork`] silently assumed that
//! shape. [`Topology`] generalizes the interconnect to a graph: multiple
//! ring *pods* joined by switch nodes, with heterogeneous per-link
//! bandwidths. It exposes the exact query surface communication-aware
//! policies already use (`hops`, `hops_avoiding`, `max_hops_from*`,
//! `link_count`, `diameter`), so existing schedulers keep working
//! unmodified.
//!
//! **Bit-identity contract:** [`Topology::ring`] stores a real
//! [`RingNetwork`] and delegates every query to it verbatim, so a
//! single-ring cluster behaves bit-identically to the pre-topology
//! simulator. The graph engine (BFS over explicit links) is only engaged
//! for [`Topology::pods`] / [`Topology::from_links`] clusters, and a
//! single ring expressed as an explicit link graph agrees with
//! [`RingNetwork`] on every query (property-tested in
//! `tests/topology_scale.rs`).

use std::collections::VecDeque;

use vital_fabric::FpgaId;

use crate::RingNetwork;

/// One physical point-to-point cable in a [`Topology`] graph.
///
/// Endpoints are *node* indices: FPGAs occupy `0..fpgas`, switch nodes
/// follow at `fpgas..fpgas + switches`. Links are bidirectional and may
/// have heterogeneous bandwidths (e.g. 100 Gb/s intra-pod ring cables vs
/// slower pod uplinks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// First endpoint (node index).
    pub a: usize,
    /// Second endpoint (node index).
    pub b: usize,
    /// Link bandwidth in Gb/s.
    pub gbps: f64,
}

impl LinkSpec {
    /// A link between nodes `a` and `b` at `gbps`.
    pub fn new(a: usize, b: usize, gbps: f64) -> Self {
        LinkSpec { a, b, gbps }
    }
}

/// Hop sentinel for "unreachable" inside the dense distance matrix.
const UNREACHABLE: u16 = u16::MAX;

/// The general graph interconnect: FPGA nodes plus switch nodes joined by
/// explicit links, with a precomputed FPGA-to-FPGA hop matrix.
#[derive(Debug, Clone, PartialEq)]
struct Graph {
    fpgas: usize,
    nodes: usize,
    links: Vec<LinkSpec>,
    /// `adj[node]` = `(peer node, link index)` in link-insertion order.
    adj: Vec<Vec<(usize, usize)>>,
    /// Row-major `fpgas x fpgas` all-pairs shortest hop counts.
    dist: Vec<u16>,
    /// Bottleneck bandwidth (Gb/s) along the BFS shortest path used for
    /// `dist`; same shape as `dist`, `f64::INFINITY` on the diagonal.
    path_gbps: Vec<f64>,
    /// Pod index of each FPGA.
    pod_of: Vec<usize>,
    /// FPGA members of each pod (contiguous for [`Topology::pods`]).
    pods: Vec<Vec<usize>>,
    diameter: usize,
}

impl Graph {
    /// BFS hop distances from `src` over all nodes, treating the link
    /// indices in `down` as out of service. `UNREACHABLE` marks
    /// disconnected nodes. Neighbours are visited in link-insertion
    /// order, so results are deterministic.
    fn bfs(&self, src: usize, down: &[usize]) -> Vec<u16> {
        let mut dist = vec![UNREACHABLE; self.nodes];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let d = dist[u];
            for &(v, link) in &self.adj[u] {
                if dist[v] == UNREACHABLE && !down.contains(&link) {
                    dist[v] = d + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// BFS from `src` that also tracks the bottleneck bandwidth of the
    /// (first-discovered) shortest path to each node.
    fn bfs_with_bandwidth(&self, src: usize) -> (Vec<u16>, Vec<f64>) {
        let mut dist = vec![UNREACHABLE; self.nodes];
        let mut gbps = vec![0.0_f64; self.nodes];
        let mut q = VecDeque::new();
        dist[src] = 0;
        gbps[src] = f64::INFINITY;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let d = dist[u];
            for &(v, link) in &self.adj[u] {
                if dist[v] == UNREACHABLE {
                    dist[v] = d + 1;
                    gbps[v] = gbps[u].min(self.links[link].gbps);
                    q.push_back(v);
                }
            }
        }
        (dist, gbps)
    }

    fn fpga(&self, id: FpgaId) -> usize {
        id.index() as usize % self.fpgas
    }

    fn hops(&self, a: FpgaId, b: FpgaId) -> usize {
        usize::from(self.dist[self.fpga(a) * self.fpgas + self.fpga(b)])
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    /// The paper's single bidirectional ring; every query delegates to
    /// [`RingNetwork`] so behaviour is bit-identical to the pre-graph
    /// simulator.
    Ring(RingNetwork),
    Graph(Box<Graph>),
}

/// The cluster interconnect: either the paper's single bidirectional ring
/// or a general pod graph (rings of FPGAs joined by switches).
///
/// FPGAs are nodes `0..len()`; a graph topology may add switch nodes
/// after them, but every public query speaks FPGA indices only. The query
/// surface mirrors [`RingNetwork`], plus a *pod* layer
/// ([`Topology::pod_count`] / [`Topology::pod_of`] /
/// [`Topology::pod_members`]) that sharded schedulers use to batch
/// allocation rounds per pod.
///
/// ```
/// use vital_cluster::Topology;
/// use vital_fabric::FpgaId;
///
/// let ring = Topology::ring(4);
/// assert_eq!(ring.hops(FpgaId::new(0), FpgaId::new(3)), 1);
/// assert_eq!(ring.pod_count(), 1);
///
/// // 4 pods x 16 FPGAs: ring cables at 100 Gb/s, pod uplinks at 40 Gb/s.
/// let pods = Topology::pods(4, 16, 100.0, 40.0);
/// assert_eq!(pods.len(), 64);
/// assert_eq!(pods.pod_of(17), 1);
/// // Cross-pod traffic goes FPGA -> pod switch -> pod switch -> FPGA.
/// assert_eq!(pods.hops(FpgaId::new(0), FpgaId::new(63)), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    kind: Kind,
}

impl Topology {
    /// The paper's single bidirectional ring of `fpgas` nodes.
    /// Bit-identical to [`RingNetwork`] on every query.
    ///
    /// # Panics
    ///
    /// Panics if `fpgas` is zero.
    pub fn ring(fpgas: usize) -> Self {
        Topology {
            kind: Kind::Ring(RingNetwork::new(fpgas)),
        }
    }

    /// A pod-of-rings datacenter topology: `pods` pods of `pod_size`
    /// FPGAs each. Within a pod the FPGAs form a ring of `ring_gbps`
    /// cables; each pod adds one switch node uplinked to every member at
    /// `uplink_gbps`, and the pod switches are fully meshed at
    /// `uplink_gbps`. Cross-pod traffic therefore costs 3 hops (FPGA →
    /// switch → switch → FPGA) and is bottlenecked by the uplink
    /// bandwidth; intra-pod traffic takes the ring (or the 2-hop switch
    /// shortcut on large pods).
    ///
    /// FPGA numbering is contiguous per pod: pod `p` owns FPGAs
    /// `p * pod_size .. (p + 1) * pod_size`.
    ///
    /// # Panics
    ///
    /// Panics if `pods` or `pod_size` is zero, or a bandwidth is not
    /// finite and positive.
    pub fn pods(pods: usize, pod_size: usize, ring_gbps: f64, uplink_gbps: f64) -> Self {
        assert!(pods > 0, "a cluster needs at least one pod");
        assert!(pod_size > 0, "a pod needs at least one FPGA");
        let fpgas = pods * pod_size;
        let mut links = Vec::new();
        for p in 0..pods {
            let base = p * pod_size;
            // Intra-pod ring cables (a 2-FPGA pod keeps one cable, a
            // single-FPGA pod none).
            if pod_size >= 3 {
                for i in 0..pod_size {
                    links.push(LinkSpec::new(
                        base + i,
                        base + (i + 1) % pod_size,
                        ring_gbps,
                    ));
                }
            } else if pod_size == 2 {
                links.push(LinkSpec::new(base, base + 1, ring_gbps));
            }
            // Uplinks from every member to the pod switch.
            let switch = fpgas + p;
            for i in 0..pod_size {
                links.push(LinkSpec::new(base + i, switch, uplink_gbps));
            }
        }
        // Full mesh between pod switches.
        for p in 0..pods {
            for q in (p + 1)..pods {
                links.push(LinkSpec::new(fpgas + p, fpgas + q, uplink_gbps));
            }
        }
        let members = (0..pods)
            .map(|p| (p * pod_size..(p + 1) * pod_size).collect())
            .collect();
        Topology::graph(fpgas, pods, links, members)
    }

    /// A general topology from an explicit link list: `fpgas` FPGA nodes
    /// (indices `0..fpgas`), `switches` switch nodes (indices
    /// `fpgas..fpgas + switches`), joined by `links`. Link indices follow
    /// list order, so a ring expressed as `link i = (i, (i + 1) % n)`
    /// keeps [`RingNetwork`]'s link numbering. All FPGAs land in one pod.
    ///
    /// # Panics
    ///
    /// Panics if `fpgas` is zero, an endpoint is out of range, a
    /// bandwidth is not finite and positive, or some FPGA pair is
    /// disconnected.
    pub fn from_links(fpgas: usize, switches: usize, links: Vec<LinkSpec>) -> Self {
        Topology::graph(fpgas, switches, links, vec![(0..fpgas).collect()])
    }

    fn graph(fpgas: usize, switches: usize, links: Vec<LinkSpec>, pods: Vec<Vec<usize>>) -> Self {
        assert!(fpgas > 0, "a topology needs at least one FPGA");
        let nodes = fpgas + switches;
        let mut adj = vec![Vec::new(); nodes];
        for (i, l) in links.iter().enumerate() {
            assert!(
                l.a < nodes && l.b < nodes,
                "link {i} endpoint out of range ({} nodes)",
                nodes
            );
            assert!(
                l.gbps.is_finite() && l.gbps > 0.0,
                "link {i} bandwidth must be finite and positive"
            );
            adj[l.a].push((l.b, i));
            adj[l.b].push((l.a, i));
        }
        let mut pod_of = vec![0; fpgas];
        for (p, members) in pods.iter().enumerate() {
            for &f in members {
                pod_of[f] = p;
            }
        }
        let mut g = Graph {
            fpgas,
            nodes,
            links,
            adj,
            dist: Vec::new(),
            path_gbps: Vec::new(),
            pod_of,
            pods,
            diameter: 0,
        };
        let mut dist = Vec::with_capacity(fpgas * fpgas);
        let mut path_gbps = Vec::with_capacity(fpgas * fpgas);
        let mut diameter = 0;
        for src in 0..fpgas {
            let (d, bw) = g.bfs_with_bandwidth(src);
            for dst in 0..fpgas {
                assert!(
                    d[dst] != UNREACHABLE,
                    "topology is disconnected: no path from FPGA {src} to FPGA {dst}"
                );
                diameter = diameter.max(usize::from(d[dst]));
                dist.push(d[dst]);
                path_gbps.push(bw[dst]);
            }
        }
        g.dist = dist;
        g.path_gbps = path_gbps;
        g.diameter = diameter;
        Topology {
            kind: Kind::Graph(Box::new(g)),
        }
    }

    /// Number of FPGAs (switch nodes are not counted).
    pub fn len(&self) -> usize {
        match &self.kind {
            Kind::Ring(r) => r.len(),
            Kind::Graph(g) => g.fpgas,
        }
    }

    /// `false`: a constructed topology always has at least one FPGA.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of point-to-point links. For a ring this matches
    /// [`RingNetwork::link_count`] (link `i` joins FPGA `i` and its
    /// clockwise neighbour); for a graph it is the explicit link-list
    /// length, uplinks and switch mesh included.
    pub fn link_count(&self) -> usize {
        match &self.kind {
            Kind::Ring(r) => r.link_count(),
            Kind::Graph(g) => g.links.len(),
        }
    }

    /// The network diameter over FPGA pairs (worst shortest-path
    /// distance).
    pub fn diameter(&self) -> usize {
        match &self.kind {
            Kind::Ring(r) => r.diameter(),
            Kind::Graph(g) => g.diameter,
        }
    }

    /// Shortest hop count between two FPGAs (0 for the same device).
    pub fn hops(&self, a: FpgaId, b: FpgaId) -> usize {
        match &self.kind {
            Kind::Ring(r) => r.hops(a, b),
            Kind::Graph(g) => g.hops(a, b),
        }
    }

    /// Shortest hop count between two FPGAs when the links in `down` are
    /// out of service, or `None` if every path crosses a down link.
    pub fn hops_avoiding(&self, a: FpgaId, b: FpgaId, down: &[usize]) -> Option<usize> {
        match &self.kind {
            Kind::Ring(r) => r.hops_avoiding(a, b, down),
            Kind::Graph(g) => {
                let (a, b) = (g.fpga(a), g.fpga(b));
                if a == b {
                    return Some(0);
                }
                if down.is_empty() {
                    return Some(usize::from(g.dist[a * g.fpgas + b]));
                }
                let d = g.bfs(a, down)[b];
                (d != UNREACHABLE).then_some(usize::from(d))
            }
        }
    }

    /// The worst hop distance from `primary` to any FPGA in `used`.
    pub fn max_hops_from(&self, primary: FpgaId, used: impl IntoIterator<Item = FpgaId>) -> usize {
        match &self.kind {
            Kind::Ring(r) => r.max_hops_from(primary, used),
            Kind::Graph(g) => {
                let p = g.fpga(primary);
                used.into_iter()
                    .map(|f| usize::from(g.dist[p * g.fpgas + g.fpga(f)]))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// The worst rerouted hop distance from `primary` to any FPGA in
    /// `used`; `None` as soon as one of them is unreachable.
    pub fn max_hops_from_avoiding(
        &self,
        primary: FpgaId,
        used: impl IntoIterator<Item = FpgaId>,
        down: &[usize],
    ) -> Option<usize> {
        match &self.kind {
            Kind::Ring(r) => r.max_hops_from_avoiding(primary, used, down),
            Kind::Graph(g) => {
                let p = g.fpga(primary);
                let dist = if down.is_empty() {
                    None // use the precomputed matrix
                } else {
                    Some(g.bfs(p, down))
                };
                let mut worst = 0;
                for f in used {
                    let d = match &dist {
                        Some(live) => live[g.fpga(f)],
                        None => g.dist[p * g.fpgas + g.fpga(f)],
                    };
                    if d == UNREACHABLE {
                        return None;
                    }
                    worst = worst.max(usize::from(d));
                }
                Some(worst)
            }
        }
    }

    /// The bandwidth slowdown factor communication from `primary` to the
    /// FPGAs in `used` pays relative to a `reference_gbps` ring cable:
    /// the worst `reference_gbps / bottleneck` over the spanned pairs,
    /// floored at 1.0. A single ring always reports 1.0 (every cable *is*
    /// the reference), so the pre-topology service model is unchanged;
    /// pod graphs report > 1.0 when a span crosses slower uplinks.
    pub fn bandwidth_slowdown(
        &self,
        primary: FpgaId,
        used: impl IntoIterator<Item = FpgaId>,
        reference_gbps: f64,
    ) -> f64 {
        match &self.kind {
            Kind::Ring(_) => 1.0,
            Kind::Graph(g) => {
                if !(reference_gbps.is_finite() && reference_gbps > 0.0) {
                    return 1.0;
                }
                let p = g.fpga(primary);
                let mut worst: f64 = 1.0;
                for f in used {
                    let bw = g.path_gbps[p * g.fpgas + g.fpga(f)];
                    if bw > 0.0 && bw.is_finite() {
                        worst = worst.max(reference_gbps / bw);
                    }
                }
                worst
            }
        }
    }

    /// Number of pods. A plain ring (and any [`Topology::from_links`]
    /// graph) is one pod.
    pub fn pod_count(&self) -> usize {
        match &self.kind {
            Kind::Ring(_) => 1,
            Kind::Graph(g) => g.pods.len().max(1),
        }
    }

    /// Pod index of an FPGA.
    pub fn pod_of(&self, fpga: usize) -> usize {
        match &self.kind {
            Kind::Ring(_) => 0,
            Kind::Graph(g) => g.pod_of.get(fpga).copied().unwrap_or(0),
        }
    }

    /// FPGA members of one pod, in index order (empty for an out-of-range
    /// pod).
    pub fn pod_members(&self, pod: usize) -> Vec<usize> {
        match &self.kind {
            Kind::Ring(r) => {
                if pod == 0 {
                    (0..r.len()).collect()
                } else {
                    Vec::new()
                }
            }
            Kind::Graph(g) => g.pods.get(pod).cloned().unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FpgaId {
        FpgaId::new(i)
    }

    /// A ring expressed as an explicit link graph, keeping RingNetwork's
    /// link numbering (link i joins FPGA i and (i + 1) % n).
    fn graph_ring(n: usize) -> Topology {
        let links = if n >= 2 {
            (0..n)
                .map(|i| LinkSpec::new(i, (i + 1) % n, 100.0))
                .collect()
        } else {
            Vec::new()
        };
        Topology::from_links(n, 0, links)
    }

    #[test]
    fn ring_kind_delegates_to_ring_network() {
        let t = Topology::ring(4);
        let r = RingNetwork::new(4);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.hops(f(a), f(b)), r.hops(f(a), f(b)));
                for link in 0..4 {
                    assert_eq!(
                        t.hops_avoiding(f(a), f(b), &[link]),
                        r.hops_avoiding(f(a), f(b), &[link])
                    );
                }
            }
        }
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.pod_count(), 1);
        assert_eq!(t.pod_members(0), vec![0, 1, 2, 3]);
        assert_eq!(t.bandwidth_slowdown(f(0), [f(2)], 100.0), 1.0);
    }

    #[test]
    fn graph_ring_matches_ring_network_queries() {
        for n in 1..=8 {
            let t = graph_ring(n);
            let r = RingNetwork::new(n);
            assert_eq!(t.diameter(), r.diameter(), "diameter at n={n}");
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    assert_eq!(t.hops(f(a), f(b)), r.hops(f(a), f(b)), "hops at n={n}");
                    for link in 0..r.link_count() {
                        assert_eq!(
                            t.hops_avoiding(f(a), f(b), &[link]),
                            r.hops_avoiding(f(a), f(b), &[link]),
                            "hops_avoiding n={n} a={a} b={b} link={link}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_node_graph_ring_keeps_both_cables() {
        // RingNetwork models a 2-node ring with two parallel cables; the
        // graph form must too, so losing one cable reroutes over the
        // other.
        let t = Topology::from_links(
            2,
            0,
            vec![LinkSpec::new(0, 1, 100.0), LinkSpec::new(1, 0, 100.0)],
        );
        assert_eq!(t.hops_avoiding(f(0), f(1), &[0]), Some(1));
        assert_eq!(t.hops_avoiding(f(0), f(1), &[0, 1]), None);
    }

    #[test]
    fn pod_topology_shape() {
        let t = Topology::pods(4, 16, 100.0, 40.0);
        assert_eq!(t.len(), 64);
        assert_eq!(t.pod_count(), 4);
        assert_eq!(t.pod_of(0), 0);
        assert_eq!(t.pod_of(63), 3);
        assert_eq!(t.pod_members(1), (16..32).collect::<Vec<_>>());
        // Intra-pod: ring distance, or the 2-hop switch shortcut.
        assert_eq!(t.hops(f(0), f(1)), 1);
        assert_eq!(t.hops(f(0), f(8)), 2); // via the pod switch
                                           // Cross-pod: FPGA -> switch -> switch -> FPGA.
        assert_eq!(t.hops(f(0), f(16)), 3);
        assert_eq!(t.diameter(), 3);
        // Cross-pod spans are bottlenecked by the 40 Gb/s uplinks.
        assert!((t.bandwidth_slowdown(f(0), [f(1)], 100.0) - 1.0).abs() < 1e-12);
        assert!((t.bandwidth_slowdown(f(0), [f(16)], 100.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pod_link_faults_reroute_or_partition() {
        // 2 pods x 2 FPGAs. Links (insertion order): pod0 cable (0),
        // pod0 uplinks (1, 2), pod1 cable (3), pod1 uplinks (4, 5),
        // switch mesh (6).
        let t = Topology::pods(2, 2, 100.0, 40.0);
        assert_eq!(t.link_count(), 7);
        assert_eq!(t.hops(f(0), f(1)), 1);
        // With the pod-0 cable down, traffic reroutes over the switch.
        assert_eq!(t.hops_avoiding(f(0), f(1), &[0]), Some(2));
        // Cutting the switch mesh partitions the pods.
        assert_eq!(t.hops_avoiding(f(0), f(2), &[6]), None);
        assert_eq!(t.max_hops_from_avoiding(f(0), [f(1), f(2)], &[6]), None);
        assert_eq!(t.max_hops_from_avoiding(f(0), [f(1)], &[0]), Some(2));
    }

    #[test]
    fn single_fpga_topologies() {
        let t = Topology::ring(1);
        assert_eq!(t.hops(f(0), f(0)), 0);
        assert_eq!(t.link_count(), 0);
        let g = graph_ring(1);
        assert_eq!(g.hops(f(0), f(0)), 0);
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.pod_count(), 1);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_is_rejected() {
        let _ = Topology::from_links(2, 0, Vec::new());
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn out_of_range_link_is_rejected() {
        let _ = Topology::from_links(2, 0, vec![LinkSpec::new(0, 5, 100.0)]);
    }
}
