//! Application requests arriving at the cluster.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one request in a workload set.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// One request to deploy and run an accelerator on the cluster.
///
/// The fields mirror what the runtime can know from the bitstream database
/// plus the user's job description: how many virtual blocks the compiled
/// application needs, how much work one run performs, and how
/// communication-bound the design is when split across FPGAs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequest {
    /// Unique id within the workload.
    pub id: RequestId,
    /// Application name (bitstream-database key).
    pub name: String,
    /// Virtual blocks the compiled bitstream needs.
    pub blocks_needed: u32,
    /// Total work of the job in abstract operations.
    pub work_ops: f64,
    /// Throughput in ops/second when all blocks share one FPGA.
    pub standalone_ops_per_sec: f64,
    /// How strongly performance degrades when spanning FPGAs: 0 = pure
    /// compute (insensitive), 1 = fully bound by inter-block traffic.
    pub comm_intensity: f64,
    /// Arrival time in seconds since the start of the workload.
    pub arrival_s: f64,
}

impl AppRequest {
    /// Creates a request with sensible defaults: 1 Gops/s standalone
    /// throughput and moderate (0.3) communication intensity.
    pub fn new(id: u64, name: impl Into<String>, blocks_needed: u32, work_ops: f64) -> Self {
        AppRequest {
            id: RequestId(id),
            name: name.into(),
            blocks_needed: blocks_needed.max(1),
            work_ops,
            standalone_ops_per_sec: 1.0e9,
            comm_intensity: 0.3,
            arrival_s: 0.0,
        }
    }

    /// Sets the arrival time.
    #[must_use]
    pub fn arriving_at(mut self, arrival_s: f64) -> Self {
        self.arrival_s = arrival_s;
        self
    }

    /// Sets the standalone throughput.
    #[must_use]
    pub fn with_throughput(mut self, ops_per_sec: f64) -> Self {
        self.standalone_ops_per_sec = ops_per_sec;
        self
    }

    /// Sets the communication intensity (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_comm_intensity(mut self, intensity: f64) -> Self {
        self.comm_intensity = intensity.clamp(0.0, 1.0);
        self
    }

    /// The job's service time in seconds when not spanning FPGAs.
    pub fn standalone_service_s(&self) -> f64 {
        self.work_ops / self.standalone_ops_per_sec.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let r = AppRequest::new(1, "a", 0, 2.0e9)
            .arriving_at(3.5)
            .with_throughput(2.0e9)
            .with_comm_intensity(7.0);
        assert_eq!(r.blocks_needed, 1, "clamped to at least one block");
        assert_eq!(r.arrival_s, 3.5);
        assert_eq!(r.comm_intensity, 1.0, "clamped to [0,1]");
        assert!((r.standalone_service_s() - 1.0).abs() < 1e-12);
    }
}
