//! Error type of the cluster simulator.

use std::error::Error;
use std::fmt;

use vital_fabric::BlockAddr;

use crate::RequestId;

/// Errors raised when a scheduling policy returns an invalid deployment.
/// These indicate a policy bug, so the simulator surfaces them instead of
/// silently repairing the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The deployment referenced a request that is not pending.
    NotPending(RequestId),
    /// A deployment used a block that is busy or out of range.
    BlockUnavailable {
        /// The offending request.
        request: RequestId,
        /// The offending block.
        block: BlockAddr,
    },
    /// A deployment repeated the same block.
    DuplicateBlock {
        /// The offending request.
        request: RequestId,
        /// The repeated block.
        block: BlockAddr,
    },
    /// A deployment allocated fewer blocks than the request needs.
    InsufficientBlocks {
        /// The offending request.
        request: RequestId,
        /// Blocks allocated.
        allocated: usize,
        /// Blocks needed.
        needed: usize,
    },
    /// The requested cluster shape is unusable (for example an empty
    /// layout). Raised by [`ClusterSim::try_heterogeneous`] before any
    /// simulation runs.
    ///
    /// [`ClusterSim::try_heterogeneous`]: crate::ClusterSim::try_heterogeneous
    InvalidLayout(String),
    /// A `FaultPlan` event does not fit the simulated cluster: an FPGA or
    /// link index out of range, or a non-finite/negative timestamp. The
    /// simulator validates the whole plan before the first event fires, so
    /// a misconfigured fault scenario fails loudly instead of silently
    /// testing nothing.
    InvalidFault(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NotPending(r) => write!(f, "request {r} is not pending"),
            ClusterError::BlockUnavailable { request, block } => {
                write!(f, "deployment of {request} uses unavailable block {block}")
            }
            ClusterError::DuplicateBlock { request, block } => {
                write!(f, "deployment of {request} repeats block {block}")
            }
            ClusterError::InsufficientBlocks {
                request,
                allocated,
                needed,
            } => write!(
                f,
                "deployment of {request} allocates {allocated} blocks but {needed} are needed"
            ),
            ClusterError::InvalidLayout(reason) => {
                write!(f, "invalid cluster layout: {reason}")
            }
            ClusterError::InvalidFault(reason) => {
                write!(f, "invalid fault plan: {reason}")
            }
        }
    }
}

impl Error for ClusterError {}

impl ClusterError {
    /// The stable control-plane code of this error (shared taxonomy, see
    /// [`vital_interface::ErrorCode`]). Every simulator error indicates a
    /// policy handing back an invalid deployment — [`ErrorCode::PolicyBug`]
    /// — except [`ClusterError::InvalidLayout`] and
    /// [`ClusterError::InvalidFault`], which are configuration problems.
    ///
    /// [`ErrorCode::PolicyBug`]: vital_interface::ErrorCode::PolicyBug
    pub fn code(&self) -> vital_interface::ErrorCode {
        match self {
            ClusterError::InvalidLayout(_) | ClusterError::InvalidFault(_) => {
                vital_interface::ErrorCode::InvalidConfig
            }
            _ => vital_interface::ErrorCode::PolicyBug,
        }
    }
}

impl From<&ClusterError> for vital_interface::ApiError {
    fn from(e: &ClusterError) -> Self {
        vital_interface::ApiError::new(e.code(), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ClusterError>();
        assert!(!ClusterError::NotPending(RequestId(1))
            .to_string()
            .is_empty());
    }

    #[test]
    fn errors_map_to_shared_taxonomy() {
        use vital_interface::ErrorCode;
        assert_eq!(
            ClusterError::NotPending(RequestId(1)).code(),
            ErrorCode::PolicyBug
        );
        assert_eq!(
            ClusterError::InvalidLayout("empty".into()).code(),
            ErrorCode::InvalidConfig
        );
        assert_eq!(
            ClusterError::InvalidFault("fpga 9 out of range".into()).code(),
            ErrorCode::InvalidConfig
        );
        let api = vital_interface::ApiError::from(&ClusterError::InsufficientBlocks {
            request: RequestId(3),
            allocated: 1,
            needed: 2,
        });
        assert_eq!(api.code, ErrorCode::PolicyBug);
        assert!(api.message.contains("request3") || api.message.contains('3'));
    }
}
