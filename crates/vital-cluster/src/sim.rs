//! The discrete-event engine.

use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use vital_fabric::BlockAddr;
use vital_telemetry::Telemetry;

use crate::{
    AppRequest, ClusterConfig, ClusterError, ClusterView, Deployment, FailedOutcome, FaultEvent,
    FaultPlan, FaultSpec, InstanceId, PendingRequest, ReconfigKind, RequestOutcome, Scheduler,
    SimReport,
};

/// Converts sim seconds to the microsecond timeline the telemetry
/// timeline uses. Sim time is non-negative and finite — debug builds
/// enforce the contract instead of silently saturating the cast.
fn sim_us(t: f64) -> u64 {
    debug_assert!(
        t.is_finite() && t >= 0.0,
        "sim time must be non-negative and finite, got {t}"
    );
    (t * 1e6).round() as u64
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival(usize),
    DeployDone(InstanceId),
    Complete(InstanceId, u32),
    FpgaFail(usize),
    FpgaRepair(usize),
    LinkDown(usize),
    LinkUp(usize),
    /// A backoff expired: re-queue the request at this index.
    Requeue(usize),
    /// A time-slice quantum expired for an instance (generation-stamped,
    /// like [`EventKind::Complete`], so evictions and pauses cancel it).
    Quantum(InstanceId, u32),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    t: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we need earliest-first.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct Instance {
    request_idx: usize,
    blocks: Vec<BlockAddr>,
    scheduled_s: f64,
    exec_start_s: f64,
    completion_s: f64,
    service_s: f64,
    /// What a full run of the request would take under this placement —
    /// the denominator for progress accounting when a time-slice quantum
    /// swaps the instance out mid-run (`service_s` holds only the
    /// *remaining* portion assigned to this stint).
    full_service_s: f64,
    interface_overhead_fraction: f64,
    /// Primary FPGA and worst ring distance at schedule time — used to
    /// decide whether a later link failure cuts this instance's traffic.
    primary_fpga: u32,
    ring_hops: usize,
    generation: u32,
    running: bool,
}

/// Execution-time model output for one deployment.
struct ServiceModel {
    service_s: f64,
    overhead_fraction: f64,
    primary_fpga: u32,
    max_hops: usize,
}

/// Kills `victims`, frees their blocks, and decides each victim's fate
/// under `retry`: terminal failure, immediate re-queue, or a deferred
/// re-queue returned as `(fire_at_s, request_idx)` pairs for the caller to
/// schedule (the event queue cannot be borrowed here).
///
/// With `checkpoint` set ([`crate::FaultPlan::with_portable_checkpoints`])
/// each running victim is suspended through the runtime's
/// portable-checkpoint path first: its progress moves into
/// `remaining`/`executed`, the re-queued request carries only the
/// remainder, and nothing counts as wasted.
#[allow(clippy::too_many_arguments)]
fn evict_victims(
    victims: Vec<InstanceId>,
    now: f64,
    requests: &[AppRequest],
    retry: &crate::RetryPolicy,
    checkpoint: bool,
    instances: &mut HashMap<InstanceId, Instance>,
    view: &mut ClusterView,
    pending: &mut Vec<PendingRequest>,
    restarts: &mut HashMap<crate::RequestId, u32>,
    remaining: &mut HashMap<crate::RequestId, f64>,
    executed: &mut HashMap<crate::RequestId, f64>,
    failed: &mut Vec<FailedOutcome>,
    running_apps: &mut usize,
    busy_blocks: &mut usize,
    needed_blocks: &mut usize,
    interrupted_jobs: &mut u64,
    wasted_block_s: &mut f64,
    telemetry: &Telemetry,
) -> Vec<(f64, usize)> {
    let mut requeues = Vec::new();
    for id in victims {
        // Invariant: `victims` was collected from `instances` under the same
        // borrow and contains each id at most once, so removal succeeds.
        let Some(inst) = instances.remove(&id) else {
            debug_assert!(
                false,
                "eviction victim {id:?} missing from the instance table"
            );
            continue;
        };
        if inst.running {
            *running_apps -= 1;
        }
        for &b in &inst.blocks {
            view.vacate(b);
        }
        *busy_blocks -= inst.blocks.len();
        let req = &requests[inst.request_idx];
        *needed_blocks -= req.blocks_needed as usize;
        *interrupted_jobs += 1;
        if checkpoint && inst.running {
            // Portable checkpoint at the eviction boundary: the stint's
            // progress survives, so the time spent is banked rather than
            // wasted and the request re-queues with only the remainder.
            let ran = now - inst.exec_start_s;
            let done = (ran / inst.full_service_s.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
            let rem = remaining.entry(req.id).or_insert(1.0);
            *rem = (*rem - done).max(0.0);
            *executed.entry(req.id).or_insert(0.0) += ran;
            telemetry.event_at(
                sim_us(now),
                "sim.checkpoint",
                &[
                    ("request", req.id.0.into()),
                    ("remaining_fraction", (*rem).into()),
                ],
            );
            telemetry.inc_counter("sim.checkpoints", 1);
        } else {
            // No checkpoint (or the victim never started executing): the
            // partial run is lost.
            *wasted_block_s += inst.blocks.len() as f64 * (now - inst.scheduled_s);
        }
        let evictions = restarts.entry(req.id).or_insert(0);
        *evictions += 1;
        // The attempt just interrupted is eviction number `evictions`.
        let attempts = *evictions;
        telemetry.event_at(
            sim_us(now),
            "sim.eviction",
            &[
                ("request", req.id.0.into()),
                ("attempts", attempts.into()),
                ("blocks_freed", inst.blocks.len().into()),
            ],
        );
        telemetry.inc_counter("sim.evictions", 1);
        if retry.gives_up_after(attempts) {
            telemetry.event_at(
                sim_us(now),
                "sim.request_failed",
                &[("request", req.id.0.into()), ("attempts", attempts.into())],
            );
            telemetry.inc_counter("sim.request_failures", 1);
            failed.push(FailedOutcome {
                id: req.id,
                name: req.name.clone(),
                arrival_s: req.arrival_s,
                failed_s: now,
                attempts,
                blocks_needed: req.blocks_needed,
            });
        } else {
            let backoff = retry.backoff_s(attempts);
            if backoff > 0.0 {
                requeues.push((now + backoff, inst.request_idx));
            } else {
                pending.push(PendingRequest {
                    request: req.clone(),
                    arrived_s: now,
                });
            }
        }
    }
    requeues
}

/// The discrete-event cluster simulator.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    config: ClusterConfig,
    layout: Vec<usize>,
    topology: std::sync::Arc<crate::Topology>,
    telemetry: Telemetry,
}

impl ClusterSim {
    /// Creates a simulator over a homogeneous cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let layout = vec![config.blocks_per_fpga; config.fpgas];
        let topology = std::sync::Arc::new(crate::Topology::ring(layout.len().max(1)));
        ClusterSim {
            config,
            layout,
            topology,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Creates a simulator over a *heterogeneous* cluster: one entry per
    /// FPGA giving its block count (the paper's §7 extension — ViTAL's
    /// abstraction only requires the blocks themselves to be identical, not
    /// the devices). Link and reconfiguration parameters come from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_fpga` is empty. Use
    /// [`ClusterSim::try_heterogeneous`] to handle that as an error.
    pub fn heterogeneous(config: ClusterConfig, blocks_per_fpga: Vec<usize>) -> Self {
        Self::try_heterogeneous(config, blocks_per_fpga)
            .unwrap_or_else(|e| panic!("cannot build cluster: {e}"))
    }

    /// Fallible variant of [`ClusterSim::heterogeneous`].
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidLayout`] if `blocks_per_fpga` is
    /// empty.
    pub fn try_heterogeneous(
        config: ClusterConfig,
        blocks_per_fpga: Vec<usize>,
    ) -> Result<Self, ClusterError> {
        if blocks_per_fpga.is_empty() {
            return Err(ClusterError::InvalidLayout(
                "cluster needs at least one FPGA".to_string(),
            ));
        }
        let topology = std::sync::Arc::new(crate::Topology::ring(blocks_per_fpga.len()));
        Ok(ClusterSim {
            config,
            layout: blocks_per_fpga,
            topology,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Replaces the interconnect with an explicit [`Topology`] (pod
    /// graphs, switch fabrics, heterogeneous links). The default is the
    /// paper's single bidirectional ring over the whole layout, which is
    /// bit-identical to the pre-topology simulator.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidLayout`] if the topology's FPGA
    /// count differs from the cluster layout.
    ///
    /// [`Topology`]: crate::Topology
    pub fn with_topology(mut self, topology: crate::Topology) -> Result<Self, ClusterError> {
        if topology.len() != self.layout.len() {
            return Err(ClusterError::InvalidLayout(format!(
                "topology has {} FPGAs but the cluster layout has {}",
                topology.len(),
                self.layout.len()
            )));
        }
        self.topology = std::sync::Arc::new(topology);
        Ok(self)
    }

    /// The interconnect topology simulated runs use.
    pub fn topology(&self) -> &crate::Topology {
        &self.topology
    }

    /// Attaches a telemetry handle. Runs then emit a sim-time event
    /// timeline (arrivals, placements, preemptions, swap-ins, evictions,
    /// requeues, completions, faults) stamped with [`Telemetry::event_at`] — the simulator never
    /// reads a wall clock, so traces from [`Telemetry::sim`] handles are
    /// byte-deterministic for a given request set, fault plan, and policy.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`ClusterSim::with_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Per-FPGA block counts.
    pub fn layout(&self) -> &[usize] {
        &self.layout
    }

    /// Runs `requests` under `policy` until every request completes.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns an invalid deployment (see
    /// [`ClusterError`]) — that is a bug in the policy, not a runtime
    /// condition. Use [`ClusterSim::try_run`] to handle it as an error.
    pub fn run(&self, policy: &mut dyn Scheduler, requests: Vec<AppRequest>) -> SimReport {
        self.try_run(policy, requests)
            .unwrap_or_else(|e| panic!("scheduling policy returned an invalid deployment: {e}"))
    }

    /// Like [`ClusterSim::run`] with injected FPGA failures: at each fault's
    /// `fail_at_s` the device goes offline, every instance touching it is
    /// killed and its request re-queued (the relocatable bitstream redeploys
    /// on surviving FPGAs without recompilation); at `repair_at_s` the
    /// device returns to the pool.
    ///
    /// # Panics
    ///
    /// Panics on invalid policy deployments, like [`ClusterSim::run`].
    pub fn run_with_faults(
        &self,
        policy: &mut dyn Scheduler,
        requests: Vec<AppRequest>,
        faults: &[FaultSpec],
    ) -> SimReport {
        self.try_run_with_faults(policy, requests, faults)
            .unwrap_or_else(|e| panic!("scheduling policy returned an invalid deployment: {e}"))
    }

    /// Like [`ClusterSim::run`] under a scripted [`FaultPlan`]: FPGA
    /// crashes and ring-link cuts evict the instances they touch, evicted
    /// requests retry with the plan's backoff until its retry budget runs
    /// out (then they land in [`SimReport::failed`]), and the report
    /// carries failure-aware metrics (interrupted jobs, wasted
    /// block-seconds, goodput vs. throughput).
    ///
    /// # Panics
    ///
    /// Panics on invalid policy deployments, like [`ClusterSim::run`].
    pub fn run_with_plan(
        &self,
        policy: &mut dyn Scheduler,
        requests: Vec<AppRequest>,
        plan: &FaultPlan,
    ) -> SimReport {
        self.try_run_with_plan(policy, requests, plan)
            .unwrap_or_else(|e| panic!("scheduling policy returned an invalid deployment: {e}"))
    }

    /// Like [`ClusterSim::run`], surfacing policy bugs as errors.
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] describing the first invalid deployment.
    pub fn try_run(
        &self,
        policy: &mut dyn Scheduler,
        requests: Vec<AppRequest>,
    ) -> Result<SimReport, ClusterError> {
        self.try_run_with_plan(policy, requests, &FaultPlan::new())
    }

    /// Fallible variant of [`ClusterSim::run_with_faults`].
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] describing the first invalid deployment.
    pub fn try_run_with_faults(
        &self,
        policy: &mut dyn Scheduler,
        requests: Vec<AppRequest>,
        faults: &[FaultSpec],
    ) -> Result<SimReport, ClusterError> {
        self.try_run_with_plan(policy, requests, &FaultPlan::from(faults))
    }

    /// Fallible variant of [`ClusterSim::run_with_plan`].
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] describing the first invalid deployment.
    pub fn try_run_with_plan(
        &self,
        policy: &mut dyn Scheduler,
        mut requests: Vec<AppRequest>,
        plan: &FaultPlan,
    ) -> Result<SimReport, ClusterError> {
        requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        let mut events = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |events: &mut BinaryHeap<Event>, t: f64, kind: EventKind| {
            events.push(Event { t, seq, kind });
            seq += 1;
        };
        for (i, r) in requests.iter().enumerate() {
            push(&mut events, r.arrival_s, EventKind::Arrival(i));
        }
        // Validate the whole plan up front: out-of-range indices used to be
        // silently swallowed downstream, so a misconfigured fault scenario
        // tested nothing.
        self.validate_plan(plan)?;
        for ev in &plan.events {
            let kind = match *ev {
                FaultEvent::FpgaCrash { fpga, .. } => EventKind::FpgaFail(fpga as usize),
                FaultEvent::FpgaRecover { fpga, .. } => EventKind::FpgaRepair(fpga as usize),
                FaultEvent::RingLinkDown { link, .. } => EventKind::LinkDown(link as usize),
                FaultEvent::RingLinkUp { link, .. } => EventKind::LinkUp(link as usize),
            };
            push(&mut events, ev.at_s(), kind);
        }
        let retry = plan.retry;
        let checkpoint_evictions = plan.portable_checkpoints;
        let mut restarts: HashMap<crate::RequestId, u32> = HashMap::new();
        let mut failed: Vec<FailedOutcome> = Vec::new();
        let mut interrupted_jobs = 0u64;
        let mut wasted_block_s = 0.0f64;

        // Time-slice mode (declared by the policy): fraction of each
        // request's work still outstanding, execution time already banked
        // across earlier stints, and the swap accounting.
        let quantum = policy.quantum_s().filter(|q| q.is_finite() && *q > 0.0);
        let mut remaining: HashMap<crate::RequestId, f64> = HashMap::new();
        let mut executed: HashMap<crate::RequestId, f64> = HashMap::new();
        let mut preemptions = 0u64;
        let mut swap_reconfig_s = 0.0f64;
        // First time each request was granted resources (time-sliced runs
        // only): a preempted tenant's later stints are swaps, not waits, so
        // its outcome reports the original admission.
        let mut admitted_s: HashMap<crate::RequestId, f64> = HashMap::new();

        let mut view = ClusterView::with_topology(self.config, &self.layout, self.topology.clone());
        let mut pending: Vec<PendingRequest> = Vec::new();
        let mut instances: HashMap<InstanceId, Instance> = HashMap::new();
        let mut next_instance = 0u64;
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        // Request id -> input index, so applying a deployment is O(1)
        // instead of an O(requests) scan (first occurrence wins, matching
        // the linear scan this replaces).
        let mut req_index: HashMap<crate::RequestId, usize> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            req_index.entry(r.id).or_insert(i);
        }

        // Utilization / concurrency integrals.
        let mut last_t = 0.0f64;
        let mut busy_blocks = 0usize;
        let mut needed_blocks = 0usize;
        let mut running_apps = 0usize;
        let mut busy_integral = 0.0f64;
        let mut needed_integral = 0.0f64;
        let mut conc_integral = 0.0f64;
        let mut peak_concurrency = 0usize;
        let mut active_time = 0.0f64;
        let mut pressured_time = 0.0f64;
        let mut pressured_busy_integral = 0.0f64;
        let mut was_pending = false;

        while let Some(ev) = events.pop() {
            let now = ev.t;
            // Advance the integrals.
            let dt = now - last_t;
            if dt > 0.0 {
                busy_integral += dt * busy_blocks as f64;
                needed_integral += dt * needed_blocks as f64;
                conc_integral += dt * running_apps as f64;
                if busy_blocks > 0 {
                    active_time += dt;
                }
                if was_pending {
                    pressured_time += dt;
                    pressured_busy_integral += dt * busy_blocks as f64;
                }
                last_t = now;
            }
            view.set_now(now);

            match ev.kind {
                EventKind::Arrival(idx) => {
                    self.telemetry.event_at(
                        sim_us(now),
                        "sim.arrival",
                        &[
                            ("request", requests[idx].id.0.into()),
                            ("blocks_needed", requests[idx].blocks_needed.into()),
                        ],
                    );
                    self.telemetry.inc_counter("sim.arrivals", 1);
                    pending.push(PendingRequest {
                        request: requests[idx].clone(),
                        arrived_s: now,
                    });
                }
                EventKind::DeployDone(id) => {
                    // The instance may have been killed by a fault while its
                    // reconfiguration was in flight.
                    let Some(inst) = instances.get_mut(&id) else {
                        continue;
                    };
                    self.telemetry.event_at(
                        sim_us(now),
                        "sim.exec_start",
                        &[("request", requests[inst.request_idx].id.0.into())],
                    );
                    inst.exec_start_s = now;
                    inst.completion_s = now + inst.service_s;
                    inst.running = true;
                    running_apps += 1;
                    peak_concurrency = peak_concurrency.max(running_apps);
                    let gen = inst.generation;
                    let t = inst.completion_s;
                    push(&mut events, t, EventKind::Complete(id, gen));
                    if let Some(q) = quantum {
                        push(&mut events, now + q, EventKind::Quantum(id, gen));
                    }
                    // Deployment finishing does not free resources, so the
                    // scheduler is not re-invoked here.
                    continue;
                }
                EventKind::Complete(id, gen) => {
                    // A completion is stale if the instance was evicted or
                    // its deadline moved (generation bump); remove-and-check
                    // in one step so no panicking unwrap is needed.
                    let inst = match instances.entry(id) {
                        Entry::Occupied(e) if e.get().generation == gen => e.remove(),
                        _ => continue,
                    };
                    running_apps -= 1;
                    for &b in &inst.blocks {
                        view.vacate(b);
                    }
                    busy_blocks -= inst.blocks.len();
                    let req = &requests[inst.request_idx];
                    needed_blocks -= req.blocks_needed as usize;
                    let mut fpgas: Vec<_> = inst.blocks.iter().map(|b| b.fpga).collect();
                    fpgas.sort_unstable();
                    fpgas.dedup();
                    // Execution time banked in earlier time-slice stints
                    // (zero outside preemptive runs) plus the final stint.
                    let service_s =
                        executed.get(&req.id).copied().unwrap_or(0.0) + (now - inst.exec_start_s);
                    self.telemetry.event_at(
                        sim_us(now),
                        "sim.completion",
                        &[
                            ("request", req.id.0.into()),
                            ("service_s", service_s.into()),
                            ("fpgas_used", fpgas.len().into()),
                        ],
                    );
                    self.telemetry.inc_counter("sim.completions", 1);
                    outcomes.push(RequestOutcome {
                        id: req.id,
                        name: req.name.clone(),
                        arrival_s: req.arrival_s,
                        scheduled_s: admitted_s.get(&req.id).copied().unwrap_or(inst.scheduled_s),
                        exec_start_s: inst.exec_start_s,
                        completion_s: now,
                        service_s,
                        blocks_needed: req.blocks_needed,
                        blocks_allocated: inst.blocks.len() as u32,
                        fpgas_used: fpgas.len() as u32,
                        interface_overhead_fraction: inst.interface_overhead_fraction,
                        restarts: restarts.get(&req.id).copied().unwrap_or(0),
                    });
                }
                EventKind::FpgaFail(fpga) => {
                    self.telemetry
                        .event_at(sim_us(now), "sim.fpga_fail", &[("fpga", fpga.into())]);
                    self.telemetry.inc_counter("sim.fpga_failures", 1);
                    view.set_offline(fpga, true);
                    // Kill every instance touching the failed device and
                    // re-queue its request; its blocks everywhere are freed.
                    let victims: Vec<InstanceId> = instances
                        .iter()
                        .filter(|(_, inst)| {
                            inst.blocks.iter().any(|b| b.fpga.index() as usize == fpga)
                        })
                        .map(|(&id, _)| id)
                        .collect();
                    let requeues = evict_victims(
                        victims,
                        now,
                        &requests,
                        &retry,
                        checkpoint_evictions,
                        &mut instances,
                        &mut view,
                        &mut pending,
                        &mut restarts,
                        &mut remaining,
                        &mut executed,
                        &mut failed,
                        &mut running_apps,
                        &mut busy_blocks,
                        &mut needed_blocks,
                        &mut interrupted_jobs,
                        &mut wasted_block_s,
                        &self.telemetry,
                    );
                    for (t, idx) in requeues {
                        push(&mut events, t, EventKind::Requeue(idx));
                    }
                }
                EventKind::FpgaRepair(fpga) => {
                    self.telemetry.event_at(
                        sim_us(now),
                        "sim.fpga_repair",
                        &[("fpga", fpga.into())],
                    );
                    view.set_offline(fpga, false);
                }
                EventKind::LinkDown(link) => {
                    self.telemetry
                        .event_at(sim_us(now), "sim.link_down", &[("link", link.into())]);
                    view.set_link(link, true);
                    // A spanning instance whose traffic can no longer take
                    // the path it was scheduled on loses its connection
                    // mid-stream: evict it like a device failure. Instances
                    // whose worst hop distance is unchanged keep running.
                    let down = view.down_links();
                    let victims: Vec<InstanceId> = instances
                        .iter()
                        .filter(|(_, inst)| {
                            let fpgas = inst.blocks.iter().map(|b| b.fpga);
                            self.topology.max_hops_from_avoiding(
                                vital_fabric::FpgaId::new(inst.primary_fpga),
                                fpgas,
                                &down,
                            ) != Some(inst.ring_hops)
                        })
                        .map(|(&id, _)| id)
                        .collect();
                    let requeues = evict_victims(
                        victims,
                        now,
                        &requests,
                        &retry,
                        checkpoint_evictions,
                        &mut instances,
                        &mut view,
                        &mut pending,
                        &mut restarts,
                        &mut remaining,
                        &mut executed,
                        &mut failed,
                        &mut running_apps,
                        &mut busy_blocks,
                        &mut needed_blocks,
                        &mut interrupted_jobs,
                        &mut wasted_block_s,
                        &self.telemetry,
                    );
                    for (t, idx) in requeues {
                        push(&mut events, t, EventKind::Requeue(idx));
                    }
                }
                EventKind::LinkUp(link) => {
                    self.telemetry
                        .event_at(sim_us(now), "sim.link_up", &[("link", link.into())]);
                    view.set_link(link, false);
                }
                EventKind::Requeue(idx) => {
                    self.telemetry.event_at(
                        sim_us(now),
                        "sim.requeue",
                        &[("request", requests[idx].id.0.into())],
                    );
                    self.telemetry.inc_counter("sim.requeues", 1);
                    pending.push(PendingRequest {
                        request: requests[idx].clone(),
                        arrived_s: now,
                    });
                }
                EventKind::Quantum(id, gen) => {
                    // Stale if the instance completed, was evicted, or had
                    // its deadline moved (generation bump).
                    let live = instances
                        .get(&id)
                        .is_some_and(|inst| inst.generation == gen && inst.running);
                    let Some(q) = quantum else { continue };
                    if !live {
                        continue;
                    }
                    if pending.is_empty() {
                        // Nobody is waiting: the tenant keeps the fabric
                        // and the timer re-arms one quantum out.
                        push(&mut events, now + q, EventKind::Quantum(id, gen));
                        continue;
                    }
                    // Swap the tenant out. Its progress survives (the
                    // runtime quiesces channels and checkpoints DRAM at
                    // this boundary), so — unlike a fault eviction — the
                    // request re-queues with only its remaining work and
                    // nothing counts as wasted.
                    let inst = instances
                        .remove(&id)
                        .expect("liveness was checked under the same borrow");
                    running_apps -= 1;
                    for &b in &inst.blocks {
                        view.vacate(b);
                    }
                    busy_blocks -= inst.blocks.len();
                    let req = &requests[inst.request_idx];
                    needed_blocks -= req.blocks_needed as usize;
                    let ran = now - inst.exec_start_s;
                    let done = (ran / inst.full_service_s.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
                    let rem = remaining.entry(req.id).or_insert(1.0);
                    *rem = (*rem - done).max(0.0);
                    *executed.entry(req.id).or_insert(0.0) += ran;
                    preemptions += 1;
                    self.telemetry.event_at(
                        sim_us(now),
                        "sim.preempt",
                        &[
                            ("request", req.id.0.into()),
                            ("remaining_fraction", (*rem).into()),
                            ("blocks_freed", inst.blocks.len().into()),
                        ],
                    );
                    self.telemetry.inc_counter("sim.preemptions", 1);
                    pending.push(PendingRequest {
                        request: req.clone(),
                        arrived_s: now,
                    });
                }
            }

            // Resources or queue changed: let the policy act until it has
            // nothing more to deploy. An empty queue short-circuits — at
            // datacenter scale most events leave nothing to schedule.
            while !pending.is_empty() {
                let decisions = policy.schedule(&view, &pending);
                if decisions.is_empty() {
                    break;
                }
                for d in decisions {
                    let pi = pending
                        .iter()
                        .position(|p| p.request.id == d.request)
                        .ok_or(ClusterError::NotPending(d.request))?;
                    self.validate(&view, &pending[pi].request, &d)?;
                    // Invariant: every PendingRequest is cloned from
                    // `requests` (arrivals and requeues alike), so its id
                    // always resolves to an input index. Skip the decision
                    // (leaving the request pending) rather than panic if the
                    // invariant is ever broken.
                    let Some(req_idx) = req_index.get(&pending[pi].request.id).copied() else {
                        debug_assert!(
                            false,
                            "pending request {} is not in the input set",
                            pending[pi].request.id
                        );
                        continue;
                    };
                    let p = pending.remove(pi);

                    let id = InstanceId(next_instance);
                    next_instance += 1;
                    for &b in &d.blocks {
                        view.occupy(b, id);
                    }
                    busy_blocks += d.blocks.len();
                    needed_blocks += p.request.blocks_needed as usize;

                    let model = self.service_time(&p.request, &d.blocks, &view.down_links());
                    let reconfig_s = self.reconfig_time(&d);
                    let rem_frac = remaining.get(&p.request.id).copied().unwrap_or(1.0);
                    if quantum.is_some() || checkpoint_evictions {
                        admitted_s.entry(p.request.id).or_insert(now);
                    }
                    if rem_frac < 1.0 {
                        if quantum.is_some() {
                            // Swap-in of a previously-preempted tenant: the PR
                            // time just charged is the time-slice mode's cost.
                            swap_reconfig_s += reconfig_s;
                            self.telemetry.event_at(
                                sim_us(now),
                                "sim.swap_in",
                                &[
                                    ("request", p.request.id.0.into()),
                                    ("remaining_fraction", rem_frac.into()),
                                    ("reconfig_s", reconfig_s.into()),
                                ],
                            );
                            self.telemetry.inc_counter("sim.swap_ins", 1);
                        } else {
                            // Resume from the portable checkpoint taken at
                            // the eviction: only the remainder runs here.
                            self.telemetry.event_at(
                                sim_us(now),
                                "sim.resume",
                                &[
                                    ("request", p.request.id.0.into()),
                                    ("remaining_fraction", rem_frac.into()),
                                    ("reconfig_s", reconfig_s.into()),
                                ],
                            );
                            self.telemetry.inc_counter("sim.resumes", 1);
                        }
                    }
                    {
                        let mut fpgas: Vec<_> = d.blocks.iter().map(|b| b.fpga).collect();
                        fpgas.sort_unstable();
                        fpgas.dedup();
                        self.telemetry.event_at(
                            sim_us(now),
                            "sim.placement",
                            &[
                                ("request", p.request.id.0.into()),
                                ("blocks", d.blocks.len().into()),
                                ("fpgas_used", fpgas.len().into()),
                                ("ring_hops", model.max_hops.into()),
                                ("reconfig_s", reconfig_s.into()),
                            ],
                        );
                        self.telemetry.inc_counter("sim.placements", 1);
                    }
                    if d.reconfig == ReconfigKind::FullDevice {
                        // Full-device programming pauses every co-running
                        // instance on the touched FPGAs.
                        let mut touched: Vec<_> = d.blocks.iter().map(|b| b.fpga).collect();
                        touched.sort_unstable();
                        touched.dedup();
                        for (&iid, inst) in instances.iter_mut() {
                            if iid == id || !inst.running {
                                continue;
                            }
                            if inst.blocks.iter().any(|b| touched.contains(&b.fpga)) {
                                inst.completion_s += reconfig_s;
                                inst.service_s += reconfig_s;
                                inst.generation += 1;
                                let gen = inst.generation;
                                let t = inst.completion_s;
                                push(&mut events, t, EventKind::Complete(iid, gen));
                            }
                        }
                    }
                    instances.insert(
                        id,
                        Instance {
                            request_idx: req_idx,
                            blocks: d.blocks,
                            scheduled_s: now,
                            exec_start_s: now,
                            completion_s: f64::INFINITY,
                            service_s: model.service_s * rem_frac,
                            full_service_s: model.service_s,
                            interface_overhead_fraction: model.overhead_fraction,
                            primary_fpga: model.primary_fpga,
                            ring_hops: model.max_hops,
                            generation: 0,
                            running: false,
                        },
                    );
                    push(&mut events, now + reconfig_s, EventKind::DeployDone(id));
                }
            }
            was_pending = !pending.is_empty();
        }

        let makespan = last_t;
        let total_blocks = self.layout.iter().sum::<usize>() as f64;
        let denom = (active_time * total_blocks).max(f64::MIN_POSITIVE);
        Ok(SimReport {
            policy: policy.name().to_string(),
            outcomes,
            makespan_s: makespan,
            block_utilization: busy_integral / denom,
            effective_utilization: needed_integral / denom,
            pressured_utilization: if pressured_time > 0.0 {
                pressured_busy_integral / (pressured_time * total_blocks)
            } else {
                busy_integral / denom
            },
            avg_concurrency: if active_time > 0.0 {
                conc_integral / active_time
            } else {
                0.0
            },
            peak_concurrency,
            failed,
            interrupted_jobs,
            wasted_block_s,
            busy_block_s: busy_integral,
            preemptions,
            swap_reconfig_s,
        })
    }

    /// Checks every [`FaultPlan`] event against the simulated cluster:
    /// FPGA indices must be in range, link indices must name a real
    /// interconnect link, and timestamps must be non-negative and finite.
    fn validate_plan(&self, plan: &FaultPlan) -> Result<(), ClusterError> {
        let fpgas = self.layout.len();
        let links = self.topology.link_count();
        for (i, ev) in plan.events.iter().enumerate() {
            let at = ev.at_s();
            if !at.is_finite() || at < 0.0 {
                return Err(ClusterError::InvalidFault(format!(
                    "event {i} ({ev:?}) has invalid timestamp {at}"
                )));
            }
            match *ev {
                FaultEvent::FpgaCrash { fpga, .. } | FaultEvent::FpgaRecover { fpga, .. } => {
                    if fpga as usize >= fpgas {
                        return Err(ClusterError::InvalidFault(format!(
                            "event {i} ({ev:?}) names FPGA {fpga} but the cluster has {fpgas}"
                        )));
                    }
                }
                FaultEvent::RingLinkDown { link, .. } | FaultEvent::RingLinkUp { link, .. } => {
                    if link as usize >= links {
                        return Err(ClusterError::InvalidFault(format!(
                            "event {i} ({ev:?}) names link {link} but the topology has {links}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn validate(
        &self,
        view: &ClusterView,
        request: &AppRequest,
        d: &Deployment,
    ) -> Result<(), ClusterError> {
        if d.blocks.len() < request.blocks_needed as usize {
            return Err(ClusterError::InsufficientBlocks {
                request: d.request,
                allocated: d.blocks.len(),
                needed: request.blocks_needed as usize,
            });
        }
        let mut seen: Vec<BlockAddr> = Vec::with_capacity(d.blocks.len());
        for &b in &d.blocks {
            if seen.contains(&b) {
                return Err(ClusterError::DuplicateBlock {
                    request: d.request,
                    block: b,
                });
            }
            seen.push(b);
            if !view.is_free(b) {
                return Err(ClusterError::BlockUnavailable {
                    request: d.request,
                    block: b,
                });
            }
        }
        Ok(())
    }

    /// Execution-time model: spanning FPGAs divides throughput by
    /// `1 + 2·comm_intensity·span·hop_factor`, where `span` is the fraction
    /// of blocks off the primary FPGA and `hop_factor` grows with the worst
    /// ring distance from the primary (multi-hop traffic shares ring
    /// segments). The pipeline-fill latency of the latency-insensitive
    /// interface is added on top (sub-millisecond; the paper measures it
    /// below 0.03 % of execution time).
    fn service_time(
        &self,
        request: &AppRequest,
        blocks: &[BlockAddr],
        down: &[usize],
    ) -> ServiceModel {
        let mut per_fpga: HashMap<u32, usize> = HashMap::new();
        for b in blocks.iter().take(request.blocks_needed as usize) {
            *per_fpga.entry(b.fpga.index()).or_insert(0) += 1;
        }
        let used = request.blocks_needed.max(1) as f64;
        // Tie-break equal block counts on the lowest FPGA id: `HashMap`
        // iteration order is randomized per instance, and an
        // order-dependent primary makes same-seed runs diverge whenever a
        // span splits evenly.
        let (primary_fpga, primary) = per_fpga
            .iter()
            .max_by_key(|&(&f, &n)| (n, std::cmp::Reverse(f)))
            .map(|(&f, &n)| (f, n as f64))
            .unwrap_or((0, 0.0));
        let span = (1.0 - primary / used).max(0.0);
        // Traffic reroutes around down links (longer hops). A spanning set
        // cut in two by link failures gets the full cluster length as a
        // crude finite penalty — the scheduler saw the down links and chose
        // to span anyway.
        let max_hops = self
            .topology
            .max_hops_from_avoiding(
                vital_fabric::FpgaId::new(primary_fpga),
                per_fpga.keys().map(|&f| vital_fabric::FpgaId::new(f)),
                down,
            )
            .unwrap_or(self.layout.len());
        // One hop = the calibrated penalty; further hops add 30% each (the
        // traffic occupies more interconnect segments). Spans crossing
        // links slower than the reference ring cable (pod uplinks) pay
        // proportionally more; on a single ring the bandwidth factor is
        // exactly 1.0, keeping the pre-topology model bit-identical.
        let hop_factor = if max_hops == 0 {
            0.0
        } else {
            let bw = self.topology.bandwidth_slowdown(
                vital_fabric::FpgaId::new(primary_fpga),
                per_fpga.keys().map(|&f| vital_fabric::FpgaId::new(f)),
                self.config.ring_gbps,
            );
            (1.0 + 0.3 * (max_hops as f64 - 1.0)) * bw
        };
        let base = request.standalone_service_s();
        let slowed = base * (1.0 + 2.0 * request.comm_intensity * span * hop_factor);
        // ~250 pipeline fills per job (one per layer batch): sub-millisecond
        // in total, matching the paper's <0.03% observation.
        let overhead = self.config.inter_fpga_latency_s * 250.0 * max_hops as f64;
        let total = slowed + overhead;
        ServiceModel {
            service_s: total,
            overhead_fraction: overhead / total.max(f64::MIN_POSITIVE),
            primary_fpga,
            max_hops,
        }
    }

    fn reconfig_time(&self, d: &Deployment) -> f64 {
        match d.reconfig {
            ReconfigKind::PartialPerBlock => {
                // Per-FPGA ICAPs program their blocks sequentially; distinct
                // FPGAs proceed in parallel.
                let mut per_fpga: HashMap<u32, usize> = HashMap::new();
                for b in &d.blocks {
                    *per_fpga.entry(b.fpga.index()).or_insert(0) += 1;
                }
                per_fpga
                    .values()
                    .map(|&n| n as f64 * self.config.per_block_reconfig_s)
                    .fold(0.0, f64::max)
            }
            ReconfigKind::FullDevice => self.config.full_reconfig_s,
            ReconfigKind::Instruction => {
                // The fabric already holds the static accelerator template;
                // claiming a block only redirects its compute tile to the
                // tenant's instruction stream. Tiles on one FPGA switch
                // sequentially (one stream-pointer write each), so the cost
                // mirrors the per-block arm at micro-second scale.
                let mut per_fpga: HashMap<u32, usize> = HashMap::new();
                for b in &d.blocks {
                    *per_fpga.entry(b.fpga.index()).or_insert(0) += 1;
                }
                per_fpga
                    .values()
                    .map(|&n| n as f64 * INSTRUCTION_SWITCH_S)
                    .fold(0.0, f64::max)
            }
        }
    }
}

/// Time to repoint one template compute tile at another tenant's
/// instruction stream (kept in sync with `vital_isa::TILE_SWITCH_S`;
/// the crates cannot share the constant without a dependency cycle).
pub(crate) const INSTRUCTION_SWITCH_S: f64 = 10.0e-6;

#[cfg(test)]
mod tests {
    use super::*;
    use vital_fabric::{FpgaId, PhysicalBlockId};

    /// Minimal policy: first-fit on one FPGA, optionally whole-device.
    struct FirstFit {
        whole_device: bool,
    }

    impl Scheduler for FirstFit {
        fn name(&self) -> &str {
            "first-fit"
        }
        fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
            let mut out = Vec::new();
            let mut free: Vec<Vec<BlockAddr>> = (0..view.fpga_count())
                .map(|f| view.free_blocks_of(f))
                .collect();
            for p in pending {
                let need = p.request.blocks_needed as usize;
                #[allow(clippy::needless_range_loop)] // `f` also selects the FPGA
                for f in 0..free.len() {
                    let whole = self.whole_device;
                    let enough = if whole {
                        free[f].len() == view.config().blocks_per_fpga
                    } else {
                        free[f].len() >= need
                    };
                    if enough {
                        let take = if whole { free[f].len() } else { need };
                        let blocks: Vec<BlockAddr> = free[f].drain(..take).collect();
                        out.push(Deployment {
                            request: p.request.id,
                            blocks,
                            reconfig: if whole {
                                ReconfigKind::FullDevice
                            } else {
                                ReconfigKind::PartialPerBlock
                            },
                        });
                        break;
                    }
                }
            }
            out
        }
    }

    fn requests(n: u64, blocks: u32, work: f64) -> Vec<AppRequest> {
        (0..n)
            .map(|i| {
                AppRequest::new(i, format!("app{i}"), blocks, work).arriving_at(i as f64 * 0.1)
            })
            .collect()
    }

    #[test]
    fn single_request_completes_with_expected_times() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(
            &mut FirstFit {
                whole_device: false,
            },
            requests(1, 3, 2.0e9),
        );
        assert_eq!(report.completed(), 1);
        let o = &report.outcomes[0];
        assert_eq!(o.wait_s(), 0.0);
        // 3 blocks x 12.3 ms reconfig, then 2 s of work.
        assert!((o.exec_start_s - 0.0369).abs() < 1e-9);
        assert!((o.service_s - 2.0).abs() < 1e-6);
        assert_eq!(o.fpgas_used, 1);
    }

    #[test]
    fn fine_grained_sharing_beats_whole_device_on_response_time() {
        // 12 small apps: fine-grained packs them onto few FPGAs
        // concurrently; whole-device serializes them 4 at a time.
        let reqs = requests(12, 3, 2.0e9);
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let fine = sim.run(
            &mut FirstFit {
                whole_device: false,
            },
            reqs.clone(),
        );
        let coarse = sim.run(&mut FirstFit { whole_device: true }, reqs);
        assert_eq!(fine.completed(), 12);
        assert_eq!(coarse.completed(), 12);
        assert!(
            fine.avg_response_s() < coarse.avg_response_s(),
            "fine {} vs coarse {}",
            fine.avg_response_s(),
            coarse.avg_response_s()
        );
        assert!(fine.avg_concurrency > coarse.avg_concurrency);
        assert!(fine.effective_utilization > coarse.effective_utilization);
    }

    #[test]
    fn full_device_reconfig_pauses_co_runners() {
        // One long app runs on FPGA 0; a whole-device deployment arrives on
        // the same FPGA... the baseline policy never co-locates, so build
        // the scenario manually with a custom policy.
        struct Colocate {
            step: u32,
        }
        impl Scheduler for Colocate {
            fn name(&self) -> &str {
                "colocate"
            }
            fn schedule(
                &mut self,
                view: &ClusterView,
                pending: &[PendingRequest],
            ) -> Vec<Deployment> {
                let Some(p) = pending.first() else {
                    return Vec::new();
                };
                self.step += 1;
                let start = if self.step == 1 { 0 } else { 8 };
                let blocks: Vec<BlockAddr> = (start..start + p.request.blocks_needed)
                    .map(|b| BlockAddr::new(FpgaId::new(0), PhysicalBlockId::new(b)))
                    .collect();
                if blocks.iter().all(|&b| view.is_free(b)) {
                    vec![Deployment {
                        request: p.request.id,
                        blocks,
                        reconfig: ReconfigKind::FullDevice,
                    }]
                } else {
                    Vec::new()
                }
            }
        }
        let reqs = vec![
            AppRequest::new(0, "long", 4, 10.0e9).arriving_at(0.0),
            AppRequest::new(1, "late", 4, 1.0e9).arriving_at(1.0),
        ];
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut Colocate { step: 0 }, reqs);
        let long = report.outcomes.iter().find(|o| o.name == "long").unwrap();
        // The long app was paused for one full reconfiguration (203 ms).
        assert!(
            long.service_s > 10.0 + 0.2,
            "service {} should include the pause",
            long.service_s
        );
    }

    #[test]
    fn spanning_fpgas_slows_execution_but_still_completes() {
        struct SpanPolicy;
        impl Scheduler for SpanPolicy {
            fn name(&self) -> &str {
                "span"
            }
            fn schedule(
                &mut self,
                view: &ClusterView,
                pending: &[PendingRequest],
            ) -> Vec<Deployment> {
                let Some(p) = pending.first() else {
                    return Vec::new();
                };
                // Half the blocks on FPGA 0, half on FPGA 1.
                let need = p.request.blocks_needed;
                let mut blocks = Vec::new();
                for b in 0..need / 2 {
                    blocks.push(BlockAddr::new(FpgaId::new(0), PhysicalBlockId::new(b)));
                }
                for b in need / 2..need {
                    blocks.push(BlockAddr::new(FpgaId::new(1), PhysicalBlockId::new(b)));
                }
                if blocks.iter().all(|&b| view.is_free(b)) {
                    vec![Deployment {
                        request: p.request.id,
                        blocks,
                        reconfig: ReconfigKind::PartialPerBlock,
                    }]
                } else {
                    Vec::new()
                }
            }
        }
        let reqs = vec![AppRequest::new(0, "spanner", 8, 2.0e9).with_comm_intensity(0.5)];
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut SpanPolicy, reqs);
        let o = &report.outcomes[0];
        assert_eq!(o.fpgas_used, 2);
        // Slowdown: 1 + 2*0.5*0.5 = 1.5x over the 2 s standalone time.
        assert!((o.service_s - 3.0).abs() < 0.01, "service {}", o.service_s);
        assert!(o.interface_overhead_fraction > 0.0);
        assert!(
            o.interface_overhead_fraction < 0.0003,
            "interface overhead {} should be < 0.03%",
            o.interface_overhead_fraction
        );
        assert_eq!(report.spanning_fraction(), 1.0);
    }

    #[test]
    fn invalid_deployment_is_reported() {
        struct Broken;
        impl Scheduler for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn schedule(
                &mut self,
                _view: &ClusterView,
                pending: &[PendingRequest],
            ) -> Vec<Deployment> {
                pending
                    .first()
                    .map(|p| Deployment {
                        request: p.request.id,
                        blocks: vec![], // fewer than needed
                        reconfig: ReconfigKind::PartialPerBlock,
                    })
                    .into_iter()
                    .collect()
            }
        }
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let err = sim.try_run(&mut Broken, requests(1, 2, 1.0e9)).unwrap_err();
        assert!(matches!(err, ClusterError::InsufficientBlocks { .. }));
    }

    #[test]
    fn fpga_failure_requeues_and_recovers() {
        // One long job lands on an FPGA that fails mid-run: the job must be
        // killed, re-queued, redeployed on a surviving device and still
        // complete, with the restart recorded.
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let reqs = vec![AppRequest::new(0, "victim", 4, 10.0e9)];
        let faults = [FaultSpec {
            fpga: 0,
            fail_at_s: 2.0,
            repair_at_s: None,
        }];
        let report = sim.run_with_faults(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
            &faults,
        );
        assert_eq!(report.completed(), 1);
        let o = &report.outcomes[0];
        assert_eq!(o.restarts, 1);
        assert_eq!(report.total_restarts(), 1);
        // The rerun must finish well after a failure-free run would have.
        assert!(o.completion_s > 12.0, "completion {}", o.completion_s);
    }

    #[test]
    fn checkpointed_eviction_preserves_progress() {
        // Same crash as above, but the plan opts into portable
        // checkpoints: the victim's 2 s of progress is banked at the
        // eviction, so it resumes with only the remainder, finishes well
        // before the restart-from-scratch run, and wastes nothing.
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let reqs = vec![AppRequest::new(0, "victim", 4, 10.0e9)];
        let crash = FaultPlan::new().fpga_crash(0, 2.0);
        let restart = sim.run_with_plan(
            &mut FirstFit {
                whole_device: false,
            },
            reqs.clone(),
            &crash,
        );
        let resumed = sim.run_with_plan(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
            &crash.with_portable_checkpoints(),
        );
        assert_eq!(resumed.completed(), 1);
        let o = &resumed.outcomes[0];
        assert_eq!(o.restarts, 1, "the eviction is still recorded");
        assert!(
            o.completion_s < restart.outcomes[0].completion_s - 1.0,
            "resume {} vs restart {}",
            o.completion_s,
            restart.outcomes[0].completion_s
        );
        // Executed time across both stints covers exactly one full run.
        assert!(
            (o.service_s - 10.0).abs() < 0.5,
            "stints sum to the full job, got {}",
            o.service_s
        );
        assert_eq!(resumed.interrupted_jobs, 1);
        assert_eq!(
            resumed.wasted_block_s, 0.0,
            "checkpointed progress is not wasted"
        );
        assert!(restart.wasted_block_s > 0.0);
    }

    #[test]
    fn repaired_fpga_rejoins_the_pool() {
        // Fail every FPGA except one, then repair them: a burst of
        // whole-device jobs can only drain once devices return.
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let reqs: Vec<AppRequest> = (0..4)
            .map(|i| AppRequest::new(i, format!("j{i}"), 15, 4.0e9))
            .collect();
        let faults: Vec<FaultSpec> = (1..4)
            .map(|f| FaultSpec {
                fpga: f,
                fail_at_s: 0.0,
                repair_at_s: Some(5.0),
            })
            .collect();
        let report = sim.run_with_faults(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
            &faults,
        );
        assert_eq!(report.completed(), 4);
        // At least one job had to wait for a repair.
        assert!(report.outcomes.iter().any(|o| o.scheduled_s >= 5.0));
    }

    #[test]
    fn failure_during_reconfiguration_is_safe() {
        // Fail the device while the deployment's partial reconfiguration is
        // still in flight (before DeployDone).
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let reqs = vec![AppRequest::new(0, "early", 5, 1.0e9)];
        let faults = [FaultSpec {
            fpga: 0,
            fail_at_s: 0.01, // < 5 x 12.3 ms reconfig
            repair_at_s: None,
        }];
        let report = sim.run_with_faults(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
            &faults,
        );
        assert_eq!(report.completed(), 1);
        assert_eq!(report.outcomes[0].restarts, 1);
    }

    #[test]
    fn heterogeneous_layout_is_respected() {
        let sim = ClusterSim::heterogeneous(ClusterConfig::paper_cluster(), vec![15, 4, 4]);
        assert_eq!(sim.layout(), &[15, 4, 4]);
        // A 10-block job only fits the big board; two of them serialize.
        let reqs = vec![
            AppRequest::new(0, "big0", 10, 1.0e9),
            AppRequest::new(1, "big1", 10, 1.0e9),
            AppRequest::new(2, "small", 4, 1.0e9),
        ];
        let report = sim.run(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
        );
        assert_eq!(report.completed(), 3);
        // The small job can run on a small board concurrently.
        let small = report.outcomes.iter().find(|o| o.name == "small").unwrap();
        assert_eq!(small.wait_s(), 0.0);
        // The two big jobs cannot overlap on one 15-block board.
        let mut bigs: Vec<f64> = report
            .outcomes
            .iter()
            .filter(|o| o.name.starts_with("big"))
            .map(|o| o.scheduled_s)
            .collect();
        bigs.sort_by(f64::total_cmp);
        assert!(bigs[1] > 0.9, "second big job must wait: {bigs:?}");
    }

    #[test]
    fn bounded_retry_gives_up_and_records_failure() {
        // The only FPGA that ever has room is 0, and it crashes for good at
        // t=1; with one attempt allowed the job lands in `failed`.
        let sim = ClusterSim::heterogeneous(ClusterConfig::paper_cluster(), vec![15, 1, 1, 1]);
        let reqs = vec![AppRequest::new(0, "doomed", 10, 10.0e9)];
        let plan = FaultPlan::new()
            .fpga_crash(0, 1.0)
            .with_retry(crate::RetryPolicy::bounded(1));
        let report = sim.run_with_plan(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
            &plan,
        );
        assert_eq!(report.completed(), 0);
        assert_eq!(report.failed_count(), 1);
        let f = &report.failed[0];
        assert_eq!(f.name, "doomed");
        assert_eq!(f.attempts, 1);
        assert!((f.failed_s - 1.0).abs() < 1e-9);
        assert_eq!(report.interrupted_jobs, 1);
        // The interrupted run occupied 10 blocks for ~1 s; all of it wasted.
        assert!(
            report.wasted_block_s > 9.0,
            "wasted {}",
            report.wasted_block_s
        );
        assert!(report.goodput_fraction() < 0.1);
    }

    #[test]
    fn backoff_delays_the_requeue() {
        // FPGA 0 crashes at t=1 and recovers at t=2. With a 4 s backoff the
        // victim cannot redeploy before t=5 even though capacity is back.
        let sim = ClusterSim::heterogeneous(ClusterConfig::paper_cluster(), vec![15]);
        let reqs = vec![AppRequest::new(0, "patient", 4, 2.0e9)];
        let plan = FaultPlan::new()
            .fpga_crash(0, 1.0)
            .fpga_recover(0, 2.0)
            .with_retry(crate::RetryPolicy::bounded(10).with_backoff(4.0, 2.0));
        let report = sim.run_with_plan(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
            &plan,
        );
        assert_eq!(report.completed(), 1);
        let o = &report.outcomes[0];
        assert_eq!(o.restarts, 1);
        assert!(o.scheduled_s >= 5.0, "scheduled {}", o.scheduled_s);
    }

    #[test]
    fn link_failure_evicts_spanning_instance_and_reroutes() {
        // A job spanning FPGAs 0 and 1 loses link 0 mid-run: its shortest
        // path changes, it is evicted, retried, and the redeployment pays
        // the long-way-around hop penalty.
        struct SpanTwo;
        impl Scheduler for SpanTwo {
            fn name(&self) -> &str {
                "span-two"
            }
            fn schedule(
                &mut self,
                view: &ClusterView,
                pending: &[PendingRequest],
            ) -> Vec<Deployment> {
                let Some(p) = pending.first() else {
                    return Vec::new();
                };
                let mut blocks = view.free_blocks_of(0);
                blocks.truncate(p.request.blocks_needed as usize / 2);
                let mut rest = view.free_blocks_of(1);
                rest.truncate(p.request.blocks_needed as usize - blocks.len());
                blocks.extend(rest);
                if blocks.len() == p.request.blocks_needed as usize {
                    vec![Deployment {
                        request: p.request.id,
                        blocks,
                        reconfig: ReconfigKind::PartialPerBlock,
                    }]
                } else {
                    Vec::new()
                }
            }
        }
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let reqs = vec![AppRequest::new(0, "spanner", 8, 4.0e9).with_comm_intensity(0.5)];
        let plan = FaultPlan::new().ring_link_down(0, 1.0);
        let report = sim.run_with_plan(&mut SpanTwo, reqs, &plan);
        assert_eq!(report.completed(), 1);
        let o = &report.outcomes[0];
        assert_eq!(o.restarts, 1, "link cut must evict the spanning job");
        assert_eq!(report.interrupted_jobs, 1);
        // Fault-free spanning service is 3 s (1 hop). Rerouted 0->1 is 3
        // hops: hop_factor 1.6, service 2*(1+2*0.5*0.5*1.6) = 3.6 s.
        assert!(o.service_s > 3.5, "rerouted service {}", o.service_s);
        assert!(report.goodput_fraction() < 1.0);
    }

    #[test]
    fn link_failure_spares_single_fpga_instances() {
        // Jobs confined to one FPGA have zero ring hops; cutting every link
        // must not disturb them.
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let reqs = requests(4, 4, 2.0e9);
        let plan = FaultPlan::new()
            .ring_link_down(0, 0.5)
            .ring_link_down(1, 0.5)
            .ring_link_down(2, 0.5)
            .ring_link_down(3, 0.5);
        let report = sim.run_with_plan(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
            &plan,
        );
        assert_eq!(report.completed(), 4);
        assert_eq!(report.interrupted_jobs, 0);
        assert_eq!(report.total_restarts(), 0);
        assert!((report.goodput_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_free_run_has_perfect_goodput() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(
            &mut FirstFit {
                whole_device: false,
            },
            requests(6, 5, 1.0e9),
        );
        assert_eq!(report.failed_count(), 0);
        assert_eq!(report.interrupted_jobs, 0);
        assert_eq!(report.wasted_block_s, 0.0);
        assert!(report.busy_block_s > 0.0);
        assert_eq!(report.goodput_fraction(), 1.0);
    }

    #[test]
    fn try_heterogeneous_rejects_empty_layout() {
        let err =
            ClusterSim::try_heterogeneous(ClusterConfig::paper_cluster(), vec![]).unwrap_err();
        assert!(matches!(err, ClusterError::InvalidLayout(_)));
    }

    #[test]
    fn out_of_range_faults_are_rejected_not_swallowed() {
        // Regression: these used to be silent no-ops (guarded `get_mut` in
        // the view, bare casts in the event builder), so a misconfigured
        // fault scenario tested nothing.
        let sim = ClusterSim::new(ClusterConfig::paper_cluster()); // 4 FPGAs, 4 links
        let mut policy = FirstFit {
            whole_device: false,
        };
        let bad_fpga = FaultPlan::new().fpga_crash(4, 1.0);
        let err = sim
            .try_run_with_plan(&mut policy, requests(1, 1, 1.0e9), &bad_fpga)
            .unwrap_err();
        assert!(matches!(err, ClusterError::InvalidFault(_)), "{err}");
        assert!(err.to_string().contains("FPGA 4"), "{err}");

        let bad_link = FaultPlan::new().ring_link_up(9, 1.0);
        let err = sim
            .try_run_with_plan(&mut policy, requests(1, 1, 1.0e9), &bad_link)
            .unwrap_err();
        assert!(matches!(err, ClusterError::InvalidFault(_)), "{err}");

        let bad_time = FaultPlan::new().fpga_crash(0, f64::NAN);
        let err = sim
            .try_run_with_plan(&mut policy, requests(1, 1, 1.0e9), &bad_time)
            .unwrap_err();
        assert!(matches!(err, ClusterError::InvalidFault(_)), "{err}");

        // An in-range plan on the same cluster still runs.
        let ok = FaultPlan::new().fpga_crash(3, 1.0).fpga_recover(3, 2.0);
        let report = sim
            .try_run_with_plan(&mut policy, requests(1, 1, 1.0e9), &ok)
            .expect("valid plan runs");
        assert_eq!(report.completed(), 1);
    }

    #[test]
    fn pod_topology_spans_pay_uplink_bandwidth() {
        // 2 pods x 2 FPGAs with 25 Gb/s uplinks (4x slower than the ring
        // reference). A job spanning pods 0 and 1 crosses 3 hops and the
        // slow uplinks: hop_factor (1 + 0.3*2) * (100/25) = 6.4, so
        // service = 2 * (1 + 2*0.5*0.5*6.4) = 8.4 s. The same span inside
        // one pod stays on the 100 Gb/s cable (1 hop): 3.0 s.
        struct SpanFpgas(u32, u32);
        impl Scheduler for SpanFpgas {
            fn name(&self) -> &str {
                "span-fpgas"
            }
            fn schedule(
                &mut self,
                view: &ClusterView,
                pending: &[PendingRequest],
            ) -> Vec<Deployment> {
                let Some(p) = pending.first() else {
                    return Vec::new();
                };
                let mut blocks = view.free_blocks_of(self.0 as usize);
                blocks.truncate(2);
                let mut far = view.free_blocks_of(self.1 as usize);
                far.truncate(2);
                blocks.extend(far);
                vec![Deployment {
                    request: p.request.id,
                    blocks,
                    reconfig: ReconfigKind::PartialPerBlock,
                }]
            }
        }
        let config = ClusterConfig::paper_cluster();
        let sim = ClusterSim::heterogeneous(config, vec![15; 4])
            .with_topology(crate::Topology::pods(2, 2, config.ring_gbps, 25.0))
            .expect("4-FPGA topology fits the 4-FPGA layout");
        let req = || vec![AppRequest::new(0, "span", 4, 2.0e9).with_comm_intensity(0.5)];
        let cross = sim.run(&mut SpanFpgas(0, 2), req());
        let local = sim.run(&mut SpanFpgas(0, 1), req());
        // (tolerance covers the sub-millisecond interface-latency term)
        assert!(
            (local.outcomes[0].service_s - 3.0).abs() < 1e-3,
            "intra-pod span: {}",
            local.outcomes[0].service_s
        );
        assert!(
            (cross.outcomes[0].service_s - 8.4).abs() < 1e-3,
            "cross-pod span: {}",
            cross.outcomes[0].service_s
        );
    }

    #[test]
    fn topology_fpga_count_must_match_layout() {
        let err = ClusterSim::new(ClusterConfig::paper_cluster())
            .with_topology(crate::Topology::ring(5))
            .unwrap_err();
        assert!(matches!(err, ClusterError::InvalidLayout(_)));
    }

    #[test]
    fn telemetry_timeline_covers_lifecycle_and_faults() {
        use vital_telemetry::Telemetry;
        let tel = Telemetry::sim();
        let sim = ClusterSim::new(ClusterConfig::paper_cluster()).with_telemetry(tel.clone());
        let reqs = vec![AppRequest::new(0, "victim", 4, 10.0e9)];
        let faults = [FaultSpec {
            fpga: 0,
            fail_at_s: 2.0,
            repair_at_s: Some(20.0),
        }];
        let report = sim.run_with_faults(
            &mut FirstFit {
                whole_device: false,
            },
            reqs,
            &faults,
        );
        assert_eq!(report.completed(), 1);
        let records = tel.records();
        let names: Vec<&str> = records.iter().map(|r| r.name).collect();
        for expected in [
            "sim.arrival",
            "sim.placement",
            "sim.exec_start",
            "sim.fpga_fail",
            "sim.eviction",
            "sim.fpga_repair",
            "sim.completion",
        ] {
            assert!(names.contains(&expected), "missing event {expected}");
        }
        // The failure fires at sim t=2 s → 2_000_000 µs on the timeline.
        let fail = records.iter().find(|r| r.name == "sim.fpga_fail").unwrap();
        assert_eq!(fail.start_us, 2_000_000);
        // One eviction, one extra placement for the redeployment.
        let m = tel.metrics();
        assert_eq!(m.counters["sim.evictions"], 1);
        assert_eq!(m.counters["sim.placements"], 2);
        assert_eq!(m.counters["sim.completions"], 1);
    }

    /// First-fit plus a declared time-slice quantum.
    struct SlicedFirstFit {
        inner: FirstFit,
        quantum_s: f64,
    }

    impl Scheduler for SlicedFirstFit {
        fn name(&self) -> &str {
            "first-fit-sliced"
        }
        fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
            self.inner.schedule(view, pending)
        }
        fn quantum_s(&self) -> Option<f64> {
            Some(self.quantum_s)
        }
    }

    #[test]
    fn time_slicing_round_robins_an_oversubscribed_fpga() {
        // One 4-block FPGA, three 4-block jobs of 2 s each arriving
        // together: 3x the physical capacity. Non-preemptive first-fit
        // serializes them; with a 0.5 s quantum they rotate through the
        // fabric, every job is admitted early, and no work is lost.
        let reqs: Vec<AppRequest> = (0..3)
            .map(|i| AppRequest::new(i, format!("j{i}"), 4, 2.0e9))
            .collect();
        let sim = ClusterSim::heterogeneous(ClusterConfig::paper_cluster(), vec![4]);
        let serial = sim.run(
            &mut FirstFit {
                whole_device: false,
            },
            reqs.clone(),
        );
        let sliced = sim.run(
            &mut SlicedFirstFit {
                inner: FirstFit {
                    whole_device: false,
                },
                quantum_s: 0.5,
            },
            reqs,
        );

        assert_eq!(sliced.completed(), 3);
        assert!(
            sliced.preemptions >= 2,
            "preemptions {}",
            sliced.preemptions
        );
        assert!(sliced.swap_reconfig_s > 0.0);
        // Preemption preserves progress: nothing is wasted or restarted.
        assert_eq!(sliced.interrupted_jobs, 0);
        assert_eq!(sliced.total_restarts(), 0);
        assert_eq!(sliced.wasted_block_s, 0.0);
        assert!((sliced.goodput_fraction() - 1.0).abs() < 1e-12);
        // Each job still executes its full 2 s of work (stints summed).
        for o in &sliced.outcomes {
            assert!(
                (o.service_s - 2.0).abs() < 0.05,
                "{} executed {}",
                o.name,
                o.service_s
            );
        }
        // Fairness: the serialized run makes the last job wait for both
        // predecessors (> 3.5 s); slicing admits everyone within ~2 quanta.
        let worst = |r: &SimReport| {
            r.outcomes
                .iter()
                .map(RequestOutcome::wait_s)
                .fold(0.0, f64::max)
        };
        assert!(worst(&serial) > 3.5, "serial worst wait {}", worst(&serial));
        assert!(worst(&sliced) < 1.5, "sliced worst wait {}", worst(&sliced));
        // The swap cost shows up as a longer makespan, bounded by the
        // number of swaps times the 4-block PR time.
        assert!(sliced.makespan_s > 6.0);
        assert!(sliced.makespan_s < 8.0, "makespan {}", sliced.makespan_s);
    }

    #[test]
    fn quantum_expiry_without_demand_is_a_no_op() {
        // A single job on an otherwise empty cluster must never be
        // preempted no matter how many quanta expire.
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(
            &mut SlicedFirstFit {
                inner: FirstFit {
                    whole_device: false,
                },
                quantum_s: 0.25,
            },
            vec![AppRequest::new(0, "solo", 4, 3.0e9)],
        );
        assert_eq!(report.completed(), 1);
        assert_eq!(report.preemptions, 0);
        assert_eq!(report.swap_reconfig_s, 0.0);
        assert!((report.outcomes[0].service_s - 3.0).abs() < 1e-6);
    }

    #[test]
    fn preemption_telemetry_rides_the_sim_timeline() {
        use vital_telemetry::Telemetry;
        let tel = Telemetry::sim();
        let sim = ClusterSim::heterogeneous(ClusterConfig::paper_cluster(), vec![4])
            .with_telemetry(tel.clone());
        let reqs: Vec<AppRequest> = (0..2)
            .map(|i| AppRequest::new(i, format!("j{i}"), 4, 1.0e9))
            .collect();
        let report = sim.run(
            &mut SlicedFirstFit {
                inner: FirstFit {
                    whole_device: false,
                },
                quantum_s: 0.3,
            },
            reqs,
        );
        assert_eq!(report.completed(), 2);
        assert!(report.preemptions > 0);
        let names: Vec<&str> = tel.records().iter().map(|r| r.name).collect();
        assert!(names.contains(&"sim.preempt"), "missing sim.preempt");
        assert!(names.contains(&"sim.swap_in"), "missing sim.swap_in");
        let m = tel.metrics();
        assert_eq!(m.counters["sim.preemptions"], report.preemptions);
        assert_eq!(m.counters["sim.swap_ins"], report.preemptions);
    }

    #[test]
    fn utilization_bounds() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(
            &mut FirstFit {
                whole_device: false,
            },
            requests(20, 5, 1.0e9),
        );
        assert!(report.block_utilization > 0.0 && report.block_utilization <= 1.0);
        assert!(report.effective_utilization <= report.block_utilization + 1e-12);
        assert!(report.peak_concurrency >= 1);
    }
}
