//! Quality-of-service metrics of a simulated run (paper §5.5).

use serde::{Deserialize, Serialize};

use crate::RequestId;

/// Per-request outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// The request.
    pub id: RequestId,
    /// Application name.
    pub name: String,
    /// Arrival time (s).
    pub arrival_s: f64,
    /// When resources were granted (s).
    pub scheduled_s: f64,
    /// When reconfiguration finished and execution began (s).
    pub exec_start_s: f64,
    /// When execution finished (s).
    pub completion_s: f64,
    /// Pure execution time (s), including any pause disturbance.
    pub service_s: f64,
    /// Blocks the request needed.
    pub blocks_needed: u32,
    /// Blocks actually allocated (the baseline allocates whole devices).
    pub blocks_allocated: u32,
    /// Distinct FPGAs used.
    pub fpgas_used: u32,
    /// Fraction of service time attributable to the latency-insensitive
    /// interface (paper: < 0.03 %).
    pub interface_overhead_fraction: f64,
    /// Times the request was killed by an FPGA failure and re-queued.
    pub restarts: u32,
}

impl RequestOutcome {
    /// Response time = completion − arrival: the paper's QoS metric.
    pub fn response_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }

    /// Time spent waiting for resources.
    pub fn wait_s(&self) -> f64 {
        self.scheduled_s - self.arrival_s
    }

    /// `true` if the application spanned multiple FPGAs.
    pub fn spanned_fpgas(&self) -> bool {
        self.fpgas_used > 1
    }
}

/// Terminal record of a request that exhausted its retry budget: every
/// deployment attempt was interrupted by an injected fault and the
/// [`RetryPolicy`](crate::RetryPolicy) gave up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedOutcome {
    /// The request.
    pub id: RequestId,
    /// Application name.
    pub name: String,
    /// Arrival time (s).
    pub arrival_s: f64,
    /// When the final attempt was interrupted (s).
    pub failed_s: f64,
    /// Deployment attempts made before giving up.
    pub attempts: u32,
    /// Blocks the request needed.
    pub blocks_needed: u32,
}

/// Aggregate report of one simulated workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy that produced the run.
    pub policy: String,
    /// Per-request outcomes, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Makespan: last completion time (s).
    pub makespan_s: f64,
    /// Time-averaged fraction of physical blocks occupied while the cluster
    /// was active.
    pub block_utilization: f64,
    /// Time-averaged fraction of occupied blocks doing *useful* work
    /// (needed blocks over allocated blocks — exposes the baseline's
    /// internal fragmentation).
    pub effective_utilization: f64,
    /// Time-averaged fraction of physical blocks occupied while at least
    /// one request was waiting for resources — the utilization figure that
    /// matters for the paper's ">93 % of blocks utilized" claim (§5.5):
    /// idle blocks are only a problem while demand is queued.
    pub pressured_utilization: f64,
    /// Time-averaged number of concurrently running applications.
    pub avg_concurrency: f64,
    /// Peak number of concurrently running applications.
    pub peak_concurrency: usize,
    /// Requests that exhausted their retry budget (terminal failures).
    pub failed: Vec<FailedOutcome>,
    /// Instance evictions caused by injected faults (a request evicted
    /// twice counts twice).
    pub interrupted_jobs: u64,
    /// Block-seconds occupied by instances that were later evicted — work
    /// and capacity thrown away to faults.
    pub wasted_block_s: f64,
    /// Total block-seconds occupied by any instance (the throughput-side
    /// denominator of [`SimReport::goodput_fraction`]).
    pub busy_block_s: f64,
    /// Quantum expiries that actually swapped a tenant out (zero outside
    /// time-sliced runs). Unlike fault evictions, a preemption preserves
    /// the tenant's progress, so it contributes to neither
    /// [`SimReport::interrupted_jobs`] nor [`SimReport::wasted_block_s`].
    pub preemptions: u64,
    /// Reconfiguration seconds spent swapping previously-preempted tenants
    /// back in — the partial-reconfiguration cost time-slicing pays for
    /// oversubscribing the cluster.
    pub swap_reconfig_s: f64,
}

impl SimReport {
    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Mean response time (s).
    pub fn avg_response_s(&self) -> f64 {
        mean(self.outcomes.iter().map(RequestOutcome::response_s))
    }

    /// Mean wait time (s).
    pub fn avg_wait_s(&self) -> f64 {
        mean(self.outcomes.iter().map(RequestOutcome::wait_s))
    }

    /// 95th-percentile response time (s), ceil-based nearest-rank: the
    /// smallest observation with at least 95 % of the sample at or below
    /// it (`rank = ceil(0.95 n)`). The earlier `round()`-based rank
    /// overshot on small samples (N=2 reported the max as p95).
    pub fn p95_response_s(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::response_s)
            .collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let rank = (0.95 * v.len() as f64).ceil() as usize;
        v[rank.clamp(1, v.len()) - 1]
    }

    /// Fraction of applications that spanned multiple FPGAs (the paper
    /// observes 5–40 % under ViTAL).
    pub fn spanning_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.spanned_fpgas()).count() as f64
            / self.outcomes.len() as f64
    }

    /// Total failure-induced restarts across all requests.
    pub fn total_restarts(&self) -> u64 {
        self.outcomes.iter().map(|o| u64::from(o.restarts)).sum()
    }

    /// Number of requests that terminally failed (retry budget exhausted).
    pub fn failed_count(&self) -> usize {
        self.failed.len()
    }

    /// Block-seconds that produced completed work: total occupancy minus
    /// the occupancy of evicted instances.
    pub fn goodput_block_s(&self) -> f64 {
        (self.busy_block_s - self.wasted_block_s).max(0.0)
    }

    /// Goodput over throughput: the fraction of occupied block-seconds
    /// that belonged to instances that ran to completion (1.0 in a
    /// fault-free run, lower the more work faults threw away).
    pub fn goodput_fraction(&self) -> f64 {
        if self.busy_block_s <= 0.0 {
            1.0
        } else {
            self.goodput_block_s() / self.busy_block_s
        }
    }

    /// Worst interface-overhead fraction observed.
    pub fn max_interface_overhead(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.interface_overhead_fraction)
            .fold(0.0, f64::max)
    }
}

/// Compile-side metrics of a benchmark run: local-P&R parallelism and the
/// content-addressed compile cache's hit/miss counters. Produced by the
/// compile-layer reports/benches and carried next to the QoS metrics so a
/// whole evaluation run serializes as one record. Plain integers/floats
/// here — the cluster layer sits below the runtime and must not depend on
/// its types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileMetrics {
    /// Designs compiled (cache misses included).
    pub designs: usize,
    /// Worker threads the local-P&R stage ran with.
    pub workers: usize,
    /// Sum of per-block local-P&R times (the stage's one-worker cost), s.
    pub serial_pnr_s: f64,
    /// Wall-clock local-P&R time actually observed, s.
    pub wall_pnr_s: f64,
    /// Compile-cache hits (deploys that skipped P&R entirely).
    pub cache_hits: u64,
    /// Compile-cache misses (deploys that paid for a full compile).
    pub cache_misses: u64,
}

impl CompileMetrics {
    /// Observed local-P&R speedup over the serial path (1 when nothing was
    /// measured).
    pub fn pnr_speedup(&self) -> f64 {
        if self.wall_pnr_s <= 0.0 || self.serial_pnr_s <= 0.0 {
            1.0
        } else {
            self.serial_pnr_s / self.wall_pnr_s
        }
    }

    /// Fraction of cache probes served from the cache (0 when never probed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival: f64, completion: f64, fpgas: u32) -> RequestOutcome {
        RequestOutcome {
            id: RequestId(id),
            name: "t".into(),
            arrival_s: arrival,
            scheduled_s: arrival,
            exec_start_s: arrival,
            completion_s: completion,
            service_s: completion - arrival,
            blocks_needed: 1,
            blocks_allocated: 1,
            fpgas_used: fpgas,
            interface_overhead_fraction: 0.0,
            restarts: 0,
        }
    }

    fn report(outcomes: Vec<RequestOutcome>) -> SimReport {
        SimReport {
            policy: "test".into(),
            makespan_s: 10.0,
            block_utilization: 0.5,
            effective_utilization: 0.5,
            pressured_utilization: 0.5,
            avg_concurrency: 1.0,
            peak_concurrency: 1,
            failed: Vec::new(),
            interrupted_jobs: 0,
            wasted_block_s: 0.0,
            busy_block_s: 0.0,
            preemptions: 0,
            swap_reconfig_s: 0.0,
            outcomes,
        }
    }

    #[test]
    fn aggregates() {
        let r = report(vec![outcome(1, 0.0, 2.0, 1), outcome(2, 1.0, 5.0, 2)]);
        assert_eq!(r.completed(), 2);
        assert!((r.avg_response_s() - 3.0).abs() < 1e-12);
        assert_eq!(r.spanning_fraction(), 0.5);
        assert!(r.p95_response_s() >= 2.0);
    }

    #[test]
    fn p95_is_ceil_based_nearest_rank() {
        // Response time of outcome k is k+1 seconds, so the sorted sample
        // is 1.0, 2.0, .., n and `v[i]` is `(i + 1) as f64`. Ceil-based
        // nearest rank selects index ceil(0.95 n) - 1.
        let sample = |n: u64| report((0..n).map(|k| outcome(k, 0.0, (k + 1) as f64, 1)).collect());
        assert_eq!(sample(1).p95_response_s(), 1.0); // ceil(0.95)  = 1 -> v[0]
        assert_eq!(sample(2).p95_response_s(), 2.0); // ceil(1.90)  = 2 -> v[1]
        assert_eq!(sample(3).p95_response_s(), 3.0); // ceil(2.85)  = 3 -> v[2]
        assert_eq!(sample(20).p95_response_s(), 19.0); // ceil(19.0) = 19 -> v[18]
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = report(vec![]);
        assert_eq!(r.avg_response_s(), 0.0);
        assert_eq!(r.spanning_fraction(), 0.0);
        assert_eq!(r.p95_response_s(), 0.0);
    }

    #[test]
    fn compile_metrics_derive_rates() {
        let m = CompileMetrics {
            designs: 4,
            workers: 4,
            serial_pnr_s: 8.0,
            wall_pnr_s: 2.5,
            cache_hits: 3,
            cache_misses: 1,
        };
        assert!((m.pnr_speedup() - 3.2).abs() < 1e-12);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
        // Unmeasured runs degrade gracefully.
        let zero = CompileMetrics::default();
        assert_eq!(zero.pnr_speedup(), 1.0);
        assert_eq!(zero.cache_hit_rate(), 0.0);
    }
}
