//! The bidirectional ring interconnect of the paper's cluster (§5.2: four
//! FPGAs sharing a 100 Gb/s bidirectional ring).

use serde::{Deserialize, Serialize};
use vital_fabric::FpgaId;

/// Topology helper for the bidirectional ring: shortest hop distances and
/// the worst-case diameter, used by the execution-time model to scale the
/// spanning penalty with the actual distance between an application's
/// FPGAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingNetwork {
    fpgas: usize,
}

impl RingNetwork {
    /// A ring of `fpgas` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `fpgas` is zero.
    pub fn new(fpgas: usize) -> Self {
        assert!(fpgas > 0, "a ring needs at least one node");
        RingNetwork { fpgas }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.fpgas
    }

    /// `true` for the degenerate single-node ring.
    pub fn is_empty(&self) -> bool {
        false // a constructed ring always has at least one node
    }

    /// Shortest hop count between two FPGAs (0 for the same device); the
    /// ring is bidirectional so traffic takes the shorter way around.
    pub fn hops(&self, a: FpgaId, b: FpgaId) -> usize {
        let a = a.index() as usize % self.fpgas;
        let b = b.index() as usize % self.fpgas;
        let d = a.abs_diff(b);
        d.min(self.fpgas - d)
    }

    /// The network diameter (worst shortest-path distance).
    pub fn diameter(&self) -> usize {
        self.fpgas / 2
    }

    /// The worst hop distance from `primary` to any FPGA in `used`.
    pub fn max_hops_from(&self, primary: FpgaId, used: impl IntoIterator<Item = FpgaId>) -> usize {
        used.into_iter()
            .map(|f| self.hops(primary, f))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_take_the_short_way_round() {
        let ring = RingNetwork::new(4);
        let f = FpgaId::new;
        assert_eq!(ring.hops(f(0), f(0)), 0);
        assert_eq!(ring.hops(f(0), f(1)), 1);
        assert_eq!(ring.hops(f(0), f(2)), 2);
        assert_eq!(ring.hops(f(0), f(3)), 1); // wraps
        assert_eq!(ring.hops(f(3), f(0)), 1); // symmetric
        assert_eq!(ring.diameter(), 2);
    }

    #[test]
    fn odd_rings() {
        let ring = RingNetwork::new(5);
        let f = FpgaId::new;
        assert_eq!(ring.hops(f(0), f(3)), 2);
        assert_eq!(ring.diameter(), 2);
    }

    #[test]
    fn single_node_ring() {
        let ring = RingNetwork::new(1);
        assert_eq!(ring.hops(FpgaId::new(0), FpgaId::new(0)), 0);
        assert_eq!(ring.diameter(), 0);
    }

    #[test]
    fn max_hops_from_primary() {
        let ring = RingNetwork::new(4);
        let f = FpgaId::new;
        assert_eq!(ring.max_hops_from(f(0), [f(0), f(1), f(2)]), 2);
        assert_eq!(ring.max_hops_from(f(1), [f(1)]), 0);
        assert_eq!(ring.max_hops_from(f(0), []), 0);
    }
}
