//! The bidirectional ring interconnect of the paper's cluster (§5.2: four
//! FPGAs sharing a 100 Gb/s bidirectional ring).

use serde::{Deserialize, Serialize};
use vital_fabric::FpgaId;

/// Topology helper for the bidirectional ring: shortest hop distances and
/// the worst-case diameter, used by the execution-time model to scale the
/// spanning penalty with the actual distance between an application's
/// FPGAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingNetwork {
    fpgas: usize,
}

impl RingNetwork {
    /// A ring of `fpgas` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `fpgas` is zero.
    pub fn new(fpgas: usize) -> Self {
        assert!(fpgas > 0, "a ring needs at least one node");
        RingNetwork { fpgas }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.fpgas
    }

    /// `true` for the degenerate single-node ring.
    pub fn is_empty(&self) -> bool {
        false // a constructed ring always has at least one node
    }

    /// Shortest hop count between two FPGAs (0 for the same device); the
    /// ring is bidirectional so traffic takes the shorter way around.
    pub fn hops(&self, a: FpgaId, b: FpgaId) -> usize {
        let a = a.index() as usize % self.fpgas;
        let b = b.index() as usize % self.fpgas;
        let d = a.abs_diff(b);
        d.min(self.fpgas - d)
    }

    /// The network diameter (worst shortest-path distance).
    pub fn diameter(&self) -> usize {
        self.fpgas / 2
    }

    /// The worst hop distance from `primary` to any FPGA in `used`.
    pub fn max_hops_from(&self, primary: FpgaId, used: impl IntoIterator<Item = FpgaId>) -> usize {
        used.into_iter()
            .map(|f| self.hops(primary, f))
            .max()
            .unwrap_or(0)
    }

    /// Number of point-to-point links on the ring. Link `i` connects FPGA
    /// `i` and FPGA `(i + 1) % len`; a two-node ring keeps both cables
    /// (links 0 and 1), a single-node ring has none.
    pub fn link_count(&self) -> usize {
        if self.fpgas < 2 {
            0
        } else {
            self.fpgas
        }
    }

    /// Shortest hop count between two FPGAs when the links in `down` are
    /// out of service, or `None` if every path crosses a down link. On a
    /// ring there are exactly two candidate paths; traffic reroutes the
    /// long way around a broken link.
    pub fn hops_avoiding(&self, a: FpgaId, b: FpgaId, down: &[usize]) -> Option<usize> {
        let n = self.fpgas;
        let a = a.index() as usize % n;
        let b = b.index() as usize % n;
        if a == b {
            return Some(0);
        }
        let blocked = |link: usize| down.contains(&(link % n));
        // Clockwise path a -> b uses links a, a+1, .., b-1 (mod n).
        let cw_len = (b + n - a) % n;
        let cw_ok = (0..cw_len).all(|i| !blocked((a + i) % n));
        let ccw_len = n - cw_len;
        let ccw_ok = (0..ccw_len).all(|i| !blocked((b + i) % n));
        match (cw_ok, ccw_ok) {
            (true, true) => Some(cw_len.min(ccw_len)),
            (true, false) => Some(cw_len),
            (false, true) => Some(ccw_len),
            (false, false) => None,
        }
    }

    /// The worst rerouted hop distance from `primary` to any FPGA in
    /// `used`; `None` as soon as one of them is unreachable.
    pub fn max_hops_from_avoiding(
        &self,
        primary: FpgaId,
        used: impl IntoIterator<Item = FpgaId>,
        down: &[usize],
    ) -> Option<usize> {
        let mut worst = 0;
        for f in used {
            worst = worst.max(self.hops_avoiding(primary, f, down)?);
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_take_the_short_way_round() {
        let ring = RingNetwork::new(4);
        let f = FpgaId::new;
        assert_eq!(ring.hops(f(0), f(0)), 0);
        assert_eq!(ring.hops(f(0), f(1)), 1);
        assert_eq!(ring.hops(f(0), f(2)), 2);
        assert_eq!(ring.hops(f(0), f(3)), 1); // wraps
        assert_eq!(ring.hops(f(3), f(0)), 1); // symmetric
        assert_eq!(ring.diameter(), 2);
    }

    #[test]
    fn odd_rings() {
        let ring = RingNetwork::new(5);
        let f = FpgaId::new;
        assert_eq!(ring.hops(f(0), f(3)), 2);
        assert_eq!(ring.diameter(), 2);
    }

    #[test]
    fn single_node_ring() {
        let ring = RingNetwork::new(1);
        assert_eq!(ring.hops(FpgaId::new(0), FpgaId::new(0)), 0);
        assert_eq!(ring.diameter(), 0);
    }

    #[test]
    fn down_links_reroute_the_long_way() {
        let ring = RingNetwork::new(4);
        let f = FpgaId::new;
        // Link 0 joins FPGAs 0 and 1: traffic must go 0-3-2-1.
        assert_eq!(ring.hops_avoiding(f(0), f(1), &[0]), Some(3));
        assert_eq!(ring.hops_avoiding(f(1), f(0), &[0]), Some(3));
        // An unrelated pair keeps its shortest path.
        assert_eq!(ring.hops_avoiding(f(2), f(3), &[0]), Some(1));
        // Two cuts partition the ring.
        assert_eq!(ring.hops_avoiding(f(0), f(1), &[0, 2]), None);
        assert_eq!(ring.hops_avoiding(f(0), f(3), &[0, 2]), Some(1));
        // Same node is always reachable.
        assert_eq!(ring.hops_avoiding(f(2), f(2), &[0, 1, 2, 3]), Some(0));
        assert_eq!(ring.link_count(), 4);
        assert_eq!(RingNetwork::new(1).link_count(), 0);
    }

    #[test]
    fn max_hops_avoiding_detects_unreachable() {
        let ring = RingNetwork::new(4);
        let f = FpgaId::new;
        assert_eq!(
            ring.max_hops_from_avoiding(f(0), [f(1), f(3)], &[0]),
            Some(3)
        );
        assert_eq!(ring.max_hops_from_avoiding(f(0), [f(2)], &[1, 3]), None);
        assert_eq!(
            ring.max_hops_from_avoiding(f(0), [], &[0, 1, 2, 3]),
            Some(0)
        );
    }

    #[test]
    fn max_hops_from_primary() {
        let ring = RingNetwork::new(4);
        let f = FpgaId::new;
        assert_eq!(ring.max_hops_from(f(0), [f(0), f(1), f(2)]), 2);
        assert_eq!(ring.max_hops_from(f(1), [f(1)]), 0);
        assert_eq!(ring.max_hops_from(f(0), []), 0);
    }
}
