//! Per-tenant instruction streams compiled from DNN benchmark structure.

use std::fmt;

use serde::{Deserialize, Serialize};
use vital_workloads::{benchmarks, DnnBenchmark, Size};

/// Error returned when an app name is not a known DNN suite variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnknownIsaApp {
    /// The app name that failed to resolve.
    pub app: String,
}

impl fmt::Display for UnknownIsaApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "'{}' is not a DNN suite variant (expected <bench>-<S|M|L>)",
            self.app
        )
    }
}

impl std::error::Error for UnknownIsaApp {}

/// One compiled instruction block: the tiled execution of one layer.
///
/// The compiler tiles a layer's MAC work across however many tiles the
/// tenant owns at replay time; `ops` is the layer's share of the job's
/// total work, and [`InstructionBlock::cycles_on`] gives the per-tile
/// cycle cost for a given tile share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionBlock {
    /// Layer index within the benchmark (0-based).
    pub layer: u32,
    /// MAC operations in this block.
    pub ops: f64,
}

impl InstructionBlock {
    /// Cycles each tile spends on this block when the work is tiled
    /// across `tiles` tiles with `dsp` DSPs each (two MACs/DSP/cycle).
    pub fn cycles_on(&self, tiles: usize, dsp: u64) -> f64 {
        let macs_per_cycle = tiles as f64 * dsp as f64 * 2.0;
        if macs_per_cycle <= 0.0 {
            return f64::INFINITY;
        }
        self.ops / macs_per_cycle
    }
}

/// A tenant's instruction stream: the DNN variant it was compiled from and
/// the layer structure its jobs replay.
///
/// The fabric backend synthesizes `tile_count` chained compute tiles per
/// variant (`DnnBenchmark::spec`); the ISA compiler maps the same chain to
/// `tile_count` layers, each becoming one instruction block. The *natural*
/// tile share of a tenant is therefore the variant's Table 2 block count,
/// which keeps the two backends' capacity requests directly comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsaProgram {
    app: String,
    bench: String,
    size: Size,
    layers: u32,
}

impl IsaProgram {
    /// Compile a program for one suite variant.
    pub fn compile(bench: &DnnBenchmark, size: Size) -> Self {
        IsaProgram {
            app: format!("{}-{}", bench.name(), size.letter()),
            bench: bench.name().to_string(),
            size,
            layers: bench.tile_count(size),
        }
    }

    /// Resolve an app name of the form `<bench>-<S|M|L>` against the DNN
    /// suite and compile it.
    pub fn for_app(app: &str) -> Result<Self, UnknownIsaApp> {
        let unknown = || UnknownIsaApp {
            app: app.to_string(),
        };
        let (bench_name, letter) = app.rsplit_once('-').ok_or_else(unknown)?;
        let size = match letter {
            "S" => Size::Small,
            "M" => Size::Medium,
            "L" => Size::Large,
            _ => return Err(unknown()),
        };
        let suite = benchmarks();
        let bench = suite
            .iter()
            .find(|b| b.name() == bench_name)
            .ok_or_else(unknown)?;
        Ok(IsaProgram::compile(bench, size))
    }

    /// The full app name (`<bench>-<letter>`).
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The variant size this program was compiled for.
    pub fn size(&self) -> Size {
        self.size
    }

    /// Number of layers (= instruction blocks per job replay).
    pub fn layers(&self) -> u32 {
        self.layers
    }

    /// The variant's natural tile share: its Table 2 block count. Used as
    /// the initial allocation request when the tenant deploys.
    pub fn natural_tiles(&self) -> usize {
        self.layers as usize
    }

    /// Compile one job of `work_ops` total MAC operations into its
    /// instruction blocks, one per layer, work split evenly (the suite's
    /// tiles are homogeneous by construction — see `DnnBenchmark::spec`).
    pub fn instruction_blocks(&self, work_ops: f64) -> Vec<InstructionBlock> {
        let per_layer = work_ops / f64::from(self.layers.max(1));
        (0..self.layers)
            .map(|layer| InstructionBlock {
                layer,
                ops: per_layer,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_app_resolves_every_suite_variant() {
        for b in benchmarks() {
            for s in Size::ALL {
                let app = format!("{}-{}", b.name(), s.letter());
                let p = IsaProgram::for_app(&app).unwrap();
                assert_eq!(p.app(), app);
                assert_eq!(p.natural_tiles(), b.tile_count(s) as usize);
                assert_eq!(p.layers(), b.tile_count(s));
            }
        }
    }

    #[test]
    fn for_app_rejects_non_suite_names() {
        assert!(IsaProgram::for_app("resnet-S").is_err());
        assert!(IsaProgram::for_app("lenet-X").is_err());
        assert!(IsaProgram::for_app("lenet").is_err());
        let err = IsaProgram::for_app("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn instruction_blocks_conserve_work_and_tile_inversely() {
        let p = IsaProgram::for_app("vgg-L").unwrap();
        let blocks = p.instruction_blocks(1.0e12);
        assert_eq!(blocks.len(), p.layers() as usize);
        let total: f64 = blocks.iter().map(|b| b.ops).sum();
        assert!((total - 1.0e12).abs() / 1.0e12 < 1e-12);
        // Doubling the tile share halves every block's per-tile cycles.
        let one = blocks[0].cycles_on(1, 48);
        let two = blocks[0].cycles_on(2, 48);
        assert!((one / two - 2.0).abs() < 1e-9);
        assert!(blocks[0].cycles_on(0, 48).is_infinite());
    }
}
