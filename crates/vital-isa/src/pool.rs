//! The hardware-level tile allocator: deterministic, conserving shares.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned when a grow request exceeds the free tile supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilesUnavailable {
    /// Tiles the caller asked to add.
    pub requested: usize,
    /// Tiles currently free in the pool.
    pub free: usize,
}

impl fmt::Display for TilesUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested {} tile(s) but only {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for TilesUnavailable {}

/// The tiles moved by one share change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShareChange {
    /// Tile ids newly assigned to the tenant (ascending).
    pub added: Vec<u32>,
    /// Tile ids released back to the pool (ascending).
    pub removed: Vec<u32>,
}

impl ShareChange {
    /// Total tiles that changed hands.
    pub fn moved(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// The shared pool of template tiles and who owns what.
///
/// All operations are deterministic — growing takes the lowest-numbered
/// free tiles, shrinking releases the tenant's highest-numbered tiles —
/// and conserving: free + Σ owned always equals the pool size. Replaying
/// the same operation sequence on a fresh pool yields identical
/// assignments (property-tested in `tests/pool_properties.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilePool {
    total: usize,
    /// Free tile ids, ascending.
    free: Vec<u32>,
    /// Owned tile ids per tenant, each ascending.
    owned: BTreeMap<u64, Vec<u32>>,
}

impl TilePool {
    /// A pool of `total` tiles, all free.
    pub fn new(total: usize) -> Self {
        TilePool {
            total,
            free: (0..total as u32).collect(),
            owned: BTreeMap::new(),
        }
    }

    /// Pool size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Tiles currently unowned.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Tiles owned by `tenant` (empty slice if unknown).
    pub fn assignment(&self, tenant: u64) -> &[u32] {
        self.owned.get(&tenant).map_or(&[], Vec::as_slice)
    }

    /// Tenants currently holding at least one tile, ascending.
    pub fn tenants(&self) -> Vec<u64> {
        self.owned.keys().copied().collect()
    }

    /// Grow `tenant`'s share by `n` tiles, taking the lowest free ids.
    pub fn grow(&mut self, tenant: u64, n: usize) -> Result<Vec<u32>, TilesUnavailable> {
        if n > self.free.len() {
            return Err(TilesUnavailable {
                requested: n,
                free: self.free.len(),
            });
        }
        let granted: Vec<u32> = self.free.drain(..n).collect();
        let share = self.owned.entry(tenant).or_default();
        share.extend_from_slice(&granted);
        share.sort_unstable();
        Ok(granted)
    }

    /// Shrink `tenant`'s share by up to `n` tiles, releasing its
    /// highest-numbered tiles. Returns the released ids (ascending).
    pub fn shrink(&mut self, tenant: u64, n: usize) -> Vec<u32> {
        let Some(share) = self.owned.get_mut(&tenant) else {
            return Vec::new();
        };
        let keep = share.len().saturating_sub(n);
        let mut released = share.split_off(keep);
        if share.is_empty() {
            self.owned.remove(&tenant);
        }
        released.sort_unstable();
        for id in &released {
            let at = self.free.partition_point(|f| f < id);
            self.free.insert(at, *id);
        }
        released
    }

    /// Move `tenant`'s share to exactly `target` tiles, growing or
    /// shrinking as needed.
    pub fn set_share(
        &mut self,
        tenant: u64,
        target: usize,
    ) -> Result<ShareChange, TilesUnavailable> {
        let current = self.assignment(tenant).len();
        let mut change = ShareChange::default();
        if target > current {
            change.added = self.grow(tenant, target - current)?;
        } else if target < current {
            change.removed = self.shrink(tenant, current - target);
        }
        Ok(change)
    }

    /// Release all of `tenant`'s tiles. Returns how many were freed.
    pub fn release(&mut self, tenant: u64) -> usize {
        let owned = self.assignment(tenant).len();
        self.shrink(tenant, owned).len()
    }

    /// Conservation invariant: free + Σ owned == total, no duplicates.
    pub fn is_conserving(&self) -> bool {
        let owned: usize = self.owned.values().map(Vec::len).sum();
        if owned + self.free.len() != self.total {
            return false;
        }
        let mut all: Vec<u32> = self.free.clone();
        all.extend(self.owned.values().flatten());
        all.sort_unstable();
        all.dedup();
        all.len() == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_takes_lowest_free_shrink_releases_highest_owned() {
        let mut p = TilePool::new(8);
        assert_eq!(p.grow(1, 3).unwrap(), vec![0, 1, 2]);
        assert_eq!(p.grow(2, 2).unwrap(), vec![3, 4]);
        assert_eq!(p.shrink(1, 2), vec![1, 2]);
        // Freed tiles go back in order and are re-granted lowest-first.
        assert_eq!(p.grow(3, 3).unwrap(), vec![1, 2, 5]);
        assert!(p.is_conserving());
    }

    #[test]
    fn grow_past_free_supply_is_typed_and_leaves_pool_untouched() {
        let mut p = TilePool::new(4);
        p.grow(1, 3).unwrap();
        let err = p.grow(2, 2).unwrap_err();
        assert_eq!(
            err,
            TilesUnavailable {
                requested: 2,
                free: 1
            }
        );
        assert_eq!(p.free_count(), 1);
        assert!(p.is_conserving());
    }

    #[test]
    fn set_share_reaches_target_in_both_directions() {
        let mut p = TilePool::new(10);
        let up = p.set_share(7, 6).unwrap();
        assert_eq!(up.added.len(), 6);
        assert!(up.removed.is_empty());
        let down = p.set_share(7, 2).unwrap();
        assert_eq!(down.removed.len(), 4);
        assert_eq!(p.assignment(7).len(), 2);
        assert_eq!(p.set_share(7, 2).unwrap().moved(), 0);
        assert!(p.is_conserving());
    }

    #[test]
    fn release_empties_the_tenant() {
        let mut p = TilePool::new(5);
        p.grow(9, 4).unwrap();
        assert_eq!(p.release(9), 4);
        assert_eq!(p.assignment(9), &[] as &[u32]);
        assert_eq!(p.free_count(), 5);
        assert!(p.tenants().is_empty());
    }
}
