//! The static accelerator template: a pool of identical compute tiles.

use serde::{Deserialize, Serialize};
use vital_fabric::Resources;

/// Post-P&R clock of the template, matched to the DNN suite's ~265 MHz
/// (`vital-workloads::DnnBenchmark::throughput_ops` uses the same clock).
const TEMPLATE_CLOCK_HZ: f64 = 265.0e6;

/// DSPs per template tile: the Table 2 suite's per-tile DSP counts span
/// 42–52, so the shared template provisions the suite median. Calibration
/// error against any one benchmark is bounded by (52-48)/48 ≈ 8 %.
const TEMPLATE_TILE_DSP: u64 = 48;

/// LUTs per template tile (suite average of Table 2's tile LUT budgets).
const TEMPLATE_TILE_LUT: u64 = 25_000;

/// BRAM kilobits per template tile.
const TEMPLATE_TILE_BRAM_KB: u64 = 2_940;

/// The static multi-tile accelerator template flashed once per FPGA.
///
/// Unlike ViTAL's per-tenant bitstreams, the template never changes at
/// runtime: tenants differ only in which instruction stream each tile
/// executes. The template is calibrated so one tile matches one ViTAL
/// virtual block at the 33 % routability fill, keeping ISA-vs-fabric
/// comparisons silicon-neutral.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsaTemplate {
    tiles: usize,
    tile_dsp: u64,
    clock_hz: f64,
}

impl IsaTemplate {
    /// A template with `tiles` compute tiles at the paper calibration.
    pub fn new(tiles: usize) -> Self {
        IsaTemplate {
            tiles,
            tile_dsp: TEMPLATE_TILE_DSP,
            clock_hz: TEMPLATE_CLOCK_HZ,
        }
    }

    /// The paper-cluster-equivalent pool: 60 tiles, matching the 4 FPGAs ×
    /// 15 virtual blocks of `ClusterConfig::paper_cluster` one-for-one.
    pub fn paper_pool() -> Self {
        IsaTemplate::new(60)
    }

    /// Number of compute tiles in the pool.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// DSPs per tile.
    pub fn tile_dsp(&self) -> u64 {
        self.tile_dsp
    }

    /// Template clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Peak rate of one tile in MAC ops/s (two MACs per DSP per cycle,
    /// the same model `DnnBenchmark::throughput_ops` uses).
    pub fn tile_ops_per_s(&self) -> f64 {
        self.tile_dsp as f64 * 2.0 * self.clock_hz
    }

    /// Aggregate rate of a tenant owning `tiles` tiles, in ops/s.
    pub fn tenant_ops_per_s(&self, tiles: usize) -> f64 {
        tiles as f64 * self.tile_ops_per_s()
    }

    /// Fabric resources of one template tile (Table 2 calibration).
    pub fn tile_resources(&self) -> Resources {
        Resources::new(
            TEMPLATE_TILE_LUT,
            2 * TEMPLATE_TILE_LUT,
            self.tile_dsp,
            TEMPLATE_TILE_BRAM_KB,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_workloads::{benchmarks, Size};

    #[test]
    fn tile_matches_one_vital_block_at_routability_fill() {
        // One template tile must fit one ViTAL virtual block at the same
        // 33 % fill the DNN sizing model uses, so the two backends compare
        // equal silicon.
        let block = Resources::new(79_200, 158_400, 580, 4_320);
        let t = IsaTemplate::paper_pool();
        assert_eq!(t.tile_resources().blocks_needed(&block, 0.33), 1);
    }

    #[test]
    fn template_rate_calibrates_against_table2_throughput() {
        // A tenant owning a benchmark's natural tile count must match the
        // fabric backend's standalone throughput model within the spread
        // of per-benchmark tile DSP counts (42–52 vs the template's 48).
        let t = IsaTemplate::paper_pool();
        for b in benchmarks() {
            for s in Size::ALL {
                let tiles = b.tile_count(s) as usize;
                let isa = t.tenant_ops_per_s(tiles);
                let fabric = b.throughput_ops(s);
                let err = (isa - fabric).abs() / fabric;
                assert!(
                    err < 0.15,
                    "{} {s:?}: template {isa:.3e} vs fabric {fabric:.3e} ({:.1} % off)",
                    b.name(),
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn paper_pool_matches_cluster_block_budget() {
        assert_eq!(IsaTemplate::paper_pool().tiles(), 60);
    }
}
