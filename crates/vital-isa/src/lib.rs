//! Instruction-level DNN accelerator virtualization (ROADMAP item 4).
//!
//! ViTAL (the main paper) virtualizes the FPGA *spatially*: tenants own
//! physical blocks and resizing a tenant means partial reconfiguration at
//! millisecond cost. The Tsinghua paper ("Enabling Efficient and Flexible
//! FPGA Virtualization for Deep Learning in the Cloud", FCCM'20) occupies
//! the complementary point in the design space: the FPGA is flashed **once**
//! with a static multi-core DNN accelerator template, tenants are compiled
//! to *instruction streams* over the template's compute tiles, and a
//! two-level scheduler reassigns tiles between tenants at quantum
//! boundaries with **zero reconfiguration** — the cost of moving capacity
//! is rewriting an instruction pointer, not reprogramming fabric.
//!
//! This crate models that backend end to end:
//!
//! * [`IsaTemplate`] — the static template: a pool of identical compute
//!   tiles calibrated against the `vital-workloads::dnn` Table 2 resource
//!   model (one tile ≈ one ViTAL virtual block at the 33 % routability
//!   fill, so head-to-head comparisons hold silicon constant);
//! * [`IsaProgram`] — a per-tenant instruction stream compiled from a DNN
//!   benchmark's layer structure: tiling turns each layer into an
//!   instruction block with a per-tile cycle cost;
//! * [`TilePool`] — the hardware-level allocator: deterministic, conserving
//!   grow/shrink of each tenant's tile share;
//! * [`IsaSim`] — the two-level scheduler: at each quantum boundary the
//!   hardware level recomputes tile shares from queued demand, and the
//!   tenant level replays instruction blocks on whatever tiles are
//!   currently owned.
//!
//! The headline constant is [`TILE_SWITCH_S`]: handing a tile to another
//! tenant costs ~10 µs (drain the in-flight instruction block, swap the
//! stream pointer), vs 12.3 ms for a ViTAL per-block partial
//! reconfiguration — a ~1000× cheaper capacity change, which is the whole
//! argument for this backend under bursty traffic.
//!
//! # Example
//!
//! ```
//! use vital_isa::{IsaJob, IsaSim, IsaTemplate};
//!
//! let template = IsaTemplate::paper_pool();
//! let jobs = vec![
//!     IsaJob::new(0, 1, "lenet-M", 4.0e12, 0.0),
//!     IsaJob::new(1, 2, "vgg-L", 8.0e12, 0.0),
//! ];
//! let report = IsaSim::new(template).run(&jobs);
//! assert_eq!(report.completed(), 2);
//! // Capacity moved between tenants without any reconfiguration.
//! assert_eq!(report.reconfigurations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod program;
mod sched;
mod template;

pub use pool::{ShareChange, TilePool, TilesUnavailable};
pub use program::{InstructionBlock, IsaProgram, UnknownIsaApp};
pub use sched::{IsaJob, IsaOutcome, IsaReport, IsaSim};
pub use template::IsaTemplate;

/// Time to hand one compute tile to a different tenant's instruction
/// stream: drain the in-flight instruction block and swap the stream
/// pointer. Micro-seconds, vs milliseconds for partial reconfiguration —
/// the core advantage of instruction-level virtualization.
pub const TILE_SWITCH_S: f64 = 10.0e-6;
