//! The two-level elastic scheduler and its discrete simulator.
//!
//! Level 1 (hardware): at every quantum boundary the tile allocator
//! recomputes each tenant's share from queued demand — proportional
//! shares with a one-tile floor per active tenant — and applies the
//! change through [`TilePool`], charging [`crate::TILE_SWITCH_S`] per
//! moved tile. Level 2 (tenant): each tenant replays its jobs'
//! instruction blocks FIFO on whatever tiles it currently owns.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::{IsaProgram, IsaTemplate, TilePool, UnknownIsaApp, TILE_SWITCH_S};

/// Default scheduling quantum: 10 ms, three orders of magnitude finer
/// than ViTAL's 0.5 s time-slice because an ISA-level switch costs µs
/// instead of ms.
pub const DEFAULT_QUANTUM_S: f64 = 0.01;

/// One inference job submitted by a tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsaJob {
    /// Caller-chosen job id (reported back in the outcome).
    pub id: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// DNN suite variant name (`<bench>-<S|M|L>`).
    pub app: String,
    /// Total MAC operations of the job.
    pub work_ops: f64,
    /// Arrival time in seconds.
    pub arrival_s: f64,
}

impl IsaJob {
    /// Convenience constructor.
    pub fn new(id: u64, tenant: u64, app: &str, work_ops: f64, arrival_s: f64) -> Self {
        IsaJob {
            id,
            tenant,
            app: app.to_string(),
            work_ops,
            arrival_s,
        }
    }
}

/// Completion record of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsaOutcome {
    /// Job id from the submitted [`IsaJob`].
    pub id: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Completion time in seconds.
    pub completion_s: f64,
}

impl IsaOutcome {
    /// Response time (queueing + service) in seconds.
    pub fn response_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// What one simulation run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsaReport {
    /// Per-job completion records, in completion order.
    pub outcomes: Vec<IsaOutcome>,
    /// Time of the last completion.
    pub makespan_s: f64,
    /// Busy tile-seconds over pool-capacity tile-seconds.
    pub utilization: f64,
    /// Quantum boundaries at which at least one tile changed hands.
    pub reallocations: u64,
    /// Total tiles that changed hands across the run.
    pub tiles_moved: u64,
    /// Modeled time spent switching tiles (tiles_moved × TILE_SWITCH_S).
    pub realloc_s: f64,
    /// Measured wall-clock nanoseconds of level-1 allocator work.
    pub sched_wall_ns: u64,
    /// Fabric reconfigurations performed. Always zero — the template is
    /// static; the field exists so reports read symmetrically against
    /// the ViTAL backend's partial-reconfiguration counts.
    pub reconfigurations: u64,
}

impl IsaReport {
    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Response times in seconds, one per completed job.
    pub fn response_times_s(&self) -> Vec<f64> {
        self.outcomes.iter().map(IsaOutcome::response_s).collect()
    }

    /// Mean response time in seconds (0 if nothing completed).
    pub fn mean_response_s(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.outcomes.iter().map(IsaOutcome::response_s).sum();
        sum / self.outcomes.len() as f64
    }

    /// Modeled cost of moving one unit of capacity (seconds per tile).
    pub fn realloc_s_per_tile(&self) -> f64 {
        TILE_SWITCH_S
    }
}

/// Per-tenant level-2 state: the instruction stream and its FIFO queue.
struct TenantQueue {
    program: IsaProgram,
    /// Jobs admitted but not finished: (job id, arrival, remaining ops).
    queue: Vec<(u64, f64, f64)>,
}

impl TenantQueue {
    fn demand_ops(&self) -> f64 {
        self.queue.iter().map(|(_, _, rem)| rem).sum()
    }
}

/// Discrete simulator of the two-level elastic scheduler over one
/// [`IsaTemplate`] tile pool.
pub struct IsaSim {
    template: IsaTemplate,
    quantum_s: f64,
}

impl IsaSim {
    /// A simulator with the default 10 ms quantum.
    pub fn new(template: IsaTemplate) -> Self {
        IsaSim {
            template,
            quantum_s: DEFAULT_QUANTUM_S,
        }
    }

    /// Override the scheduling quantum.
    pub fn with_quantum(mut self, quantum_s: f64) -> Self {
        self.quantum_s = quantum_s.max(1.0e-6);
        self
    }

    /// The scheduling quantum in seconds.
    pub fn quantum_s(&self) -> f64 {
        self.quantum_s
    }

    /// Run the scheduler over `jobs` until all complete.
    ///
    /// Jobs whose app name does not resolve against the DNN suite abort
    /// the run with [`UnknownIsaApp`] — submission is typed, not silently
    /// dropped.
    pub fn run(&self, jobs: &[IsaJob]) -> IsaReport {
        self.try_run(jobs)
            .expect("ISA app names must be suite variants")
    }

    /// Like [`IsaSim::run`] but surfaces unknown app names as an error.
    pub fn try_run(&self, jobs: &[IsaJob]) -> Result<IsaReport, UnknownIsaApp> {
        let mut arrivals: Vec<IsaJob> = jobs.to_vec();
        arrivals.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        // Compile each tenant's instruction stream up front (level 2).
        let mut tenants: BTreeMap<u64, TenantQueue> = BTreeMap::new();
        for j in &arrivals {
            if let std::collections::btree_map::Entry::Vacant(e) = tenants.entry(j.tenant) {
                e.insert(TenantQueue {
                    program: IsaProgram::for_app(&j.app)?,
                    queue: Vec::new(),
                });
            }
        }

        let mut pool = TilePool::new(self.template.tiles());
        let mut report = IsaReport {
            outcomes: Vec::new(),
            makespan_s: 0.0,
            utilization: 0.0,
            reallocations: 0,
            tiles_moved: 0,
            realloc_s: 0.0,
            sched_wall_ns: 0,
            reconfigurations: 0,
        };
        let mut busy_tile_s = 0.0;
        let mut next_arrival = 0usize;
        let mut now = arrivals.first().map_or(0.0, |j| j.arrival_s);
        // Align the first boundary to the quantum grid.
        now = (now / self.quantum_s).floor() * self.quantum_s;

        while next_arrival < arrivals.len() || tenants.values().any(|t| !t.queue.is_empty()) {
            // Admit everything that has arrived by this boundary.
            while next_arrival < arrivals.len() && arrivals[next_arrival].arrival_s <= now {
                let j = &arrivals[next_arrival];
                let q = tenants.get_mut(&j.tenant).expect("tenant pre-registered");
                q.queue.push((j.id, j.arrival_s, j.work_ops));
                next_arrival += 1;
            }

            // Level 1: recompute shares from demand at this boundary.
            let t0 = Instant::now();
            let targets = proportional_shares(&tenants, pool.total());
            let mut moved_per_tenant: BTreeMap<u64, usize> = BTreeMap::new();
            let mut moved_total = 0usize;
            // Shrinks run first so their tiles are free by the time the
            // grows execute — targets conserve the pool only in aggregate.
            let mut ordered: Vec<(u64, usize)> = targets.iter().map(|(&t, &s)| (t, s)).collect();
            ordered
                .sort_by_key(|&(tenant, target)| (target > pool.assignment(tenant).len(), tenant));
            for (tenant, target) in ordered {
                let change = pool
                    .set_share(tenant, target)
                    .expect("conserving targets never exceed the pool");
                if change.moved() > 0 {
                    moved_per_tenant.insert(tenant, change.moved());
                    moved_total += change.moved();
                }
            }
            report.sched_wall_ns += t0.elapsed().as_nanos() as u64;
            debug_assert!(pool.is_conserving());
            if moved_total > 0 {
                report.reallocations += 1;
                report.tiles_moved += moved_total as u64;
                report.realloc_s += moved_total as f64 * TILE_SWITCH_S;
            }

            // Level 2: each tenant replays instruction blocks on its
            // current share for the rest of the quantum.
            for (&tenant, tq) in tenants.iter_mut() {
                let tiles = pool.assignment(tenant).len();
                if tiles == 0 || tq.queue.is_empty() {
                    continue;
                }
                // Tiles that just switched streams drain first.
                let switch_s =
                    moved_per_tenant.get(&tenant).copied().unwrap_or(0) as f64 * TILE_SWITCH_S;
                let mut budget_s = (self.quantum_s - switch_s).max(0.0);
                let rate = self.template.tenant_ops_per_s(tiles)
                    * efficiency(tiles, tq.program.natural_tiles());
                let mut done = 0usize;
                for (id, arrival_s, remaining) in tq.queue.iter_mut() {
                    if budget_s <= 0.0 {
                        break;
                    }
                    let need_s = *remaining / rate;
                    if need_s <= budget_s {
                        budget_s -= need_s;
                        busy_tile_s += need_s * tiles as f64;
                        let completion_s = now + self.quantum_s - budget_s;
                        report.outcomes.push(IsaOutcome {
                            id: *id,
                            tenant,
                            arrival_s: *arrival_s,
                            completion_s,
                        });
                        done += 1;
                    } else {
                        *remaining -= budget_s * rate;
                        busy_tile_s += budget_s * tiles as f64;
                        budget_s = 0.0;
                    }
                }
                tq.queue.drain(..done);
            }

            now += self.quantum_s;
            // If the cluster is idle, jump to the next arrival's boundary.
            if tenants.values().all(|t| t.queue.is_empty()) {
                if let Some(j) = arrivals.get(next_arrival) {
                    let next = (j.arrival_s / self.quantum_s).floor() * self.quantum_s;
                    if next > now {
                        now = next;
                    }
                }
            }
        }

        report.makespan_s = report
            .outcomes
            .iter()
            .map(|o| o.completion_s)
            .fold(0.0, f64::max);
        let capacity = pool.total() as f64 * report.makespan_s;
        report.utilization = if capacity > 0.0 {
            (busy_tile_s / capacity).min(1.0)
        } else {
            0.0
        };
        Ok(report)
    }
}

/// Tiling efficiency beyond a program's natural share: extra tiles help
/// (more data parallelism) but with diminishing returns past the layer
/// structure the stream was compiled for.
fn efficiency(tiles: usize, natural: usize) -> f64 {
    if tiles <= natural || natural == 0 {
        return 1.0;
    }
    let extra = (tiles - natural) as f64;
    (natural as f64 + 0.7 * extra) / tiles as f64
}

/// Demand-proportional integer shares with a one-tile floor per active
/// tenant, conserving the pool size. Inactive tenants get zero.
fn proportional_shares(tenants: &BTreeMap<u64, TenantQueue>, pool: usize) -> BTreeMap<u64, usize> {
    let mut out: BTreeMap<u64, usize> = BTreeMap::new();
    let active: Vec<(u64, f64)> = tenants
        .iter()
        .filter(|(_, t)| !t.queue.is_empty())
        .map(|(&id, t)| (id, t.demand_ops().max(1.0)))
        .collect();
    for (&id, _) in tenants.iter() {
        out.insert(id, 0);
    }
    if active.is_empty() || pool == 0 {
        return out;
    }
    let total_demand: f64 = active.iter().map(|(_, d)| d).sum();
    // Floor of one tile per active tenant (first `pool` tenants if the
    // pool is over-subscribed), then largest-remainder on the rest.
    let floors = active.len().min(pool);
    let spare = pool - floors;
    let mut shares: Vec<(u64, usize, f64)> = active
        .iter()
        .enumerate()
        .map(|(i, &(id, d))| {
            let floor = usize::from(i < floors);
            let ideal = spare as f64 * d / total_demand;
            (id, floor + ideal as usize, ideal - (ideal as usize) as f64)
        })
        .collect();
    let assigned: usize = shares.iter().map(|(_, s, _)| s).sum();
    let mut leftover = pool.saturating_sub(assigned);
    // Hand leftovers to the largest fractional remainders; ties break on
    // the lower tenant id so the allocation is deterministic.
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| {
        shares[b]
            .2
            .partial_cmp(&shares[a].2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(shares[a].0.cmp(&shares[b].0))
    });
    for i in order {
        if leftover == 0 {
            break;
        }
        shares[i].1 += 1;
        leftover -= 1;
    }
    for (id, s, _) in shares {
        out.insert(id, s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_two_tenants() -> Vec<IsaJob> {
        vec![
            IsaJob::new(0, 1, "lenet-M", 2.0e11, 0.0),
            IsaJob::new(1, 2, "cifar10-M", 2.0e11, 0.0),
            IsaJob::new(2, 1, "lenet-M", 2.0e11, 0.05),
        ]
    }

    #[test]
    fn all_jobs_complete_without_reconfiguration() {
        let report = IsaSim::new(IsaTemplate::paper_pool()).run(&jobs_two_tenants());
        assert_eq!(report.completed(), 3);
        assert_eq!(report.reconfigurations, 0);
        assert!(report.makespan_s > 0.0);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        for o in &report.outcomes {
            assert!(o.completion_s >= o.arrival_s);
        }
    }

    #[test]
    fn run_is_deterministic() {
        let sim = IsaSim::new(IsaTemplate::paper_pool());
        let a = sim.run(&jobs_two_tenants());
        let b = sim.run(&jobs_two_tenants());
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.tiles_moved, b.tiles_moved);
        assert_eq!(a.reallocations, b.reallocations);
    }

    #[test]
    fn elastic_shares_track_demand() {
        // A burst from tenant 2 while tenant 1 is idle should move tiles:
        // at least two reallocation events (grant, then rebalance).
        let jobs = vec![
            IsaJob::new(0, 1, "vgg-L", 5.0e12, 0.0),
            IsaJob::new(1, 2, "alexnet-L", 5.0e12, 0.3),
        ];
        let report = IsaSim::new(IsaTemplate::paper_pool()).run(&jobs);
        assert_eq!(report.completed(), 2);
        assert!(report.reallocations >= 2, "got {}", report.reallocations);
        assert!(report.tiles_moved >= 60, "got {}", report.tiles_moved);
        // Modeled switch cost stays micro-scale per tile.
        let per_tile = report.realloc_s / report.tiles_moved as f64;
        assert!((per_tile - TILE_SWITCH_S).abs() < 1e-12);
    }

    #[test]
    fn unknown_app_is_a_typed_error() {
        let jobs = vec![IsaJob::new(0, 1, "resnet-S", 1.0e9, 0.0)];
        let err = IsaSim::new(IsaTemplate::paper_pool())
            .try_run(&jobs)
            .unwrap_err();
        assert_eq!(err.app, "resnet-S");
    }

    #[test]
    fn proportional_shares_conserve_and_floor() {
        let mut tenants: BTreeMap<u64, TenantQueue> = BTreeMap::new();
        for (id, demand) in [(1u64, 9.0e12), (2, 3.0e12), (3, 1.0e12)] {
            tenants.insert(
                id,
                TenantQueue {
                    program: IsaProgram::for_app("lenet-M").unwrap(),
                    queue: vec![(0, 0.0, demand)],
                },
            );
        }
        let shares = proportional_shares(&tenants, 60);
        let sum: usize = shares.values().sum();
        assert_eq!(sum, 60);
        assert!(shares.values().all(|&s| s >= 1));
        assert!(shares[&1] > shares[&2] && shares[&2] > shares[&3]);
    }
}
