//! Property tests for the hardware-level tile allocator: any sequence of
//! grow/shrink/set-share/release requests keeps the pool conserving, and
//! replaying the sequence on a fresh pool reproduces identical
//! assignments (ISSUE 9 satellite).

use proptest::prelude::*;
use vital_isa::TilePool;

#[derive(Debug, Clone)]
enum Op {
    Grow { tenant: u64, n: usize },
    Shrink { tenant: u64, n: usize },
    SetShare { tenant: u64, target: usize },
    Release { tenant: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let tenant = 1u64..=6;
    prop_oneof![
        (tenant.clone(), 0usize..20).prop_map(|(tenant, n)| Op::Grow { tenant, n }),
        (tenant.clone(), 0usize..20).prop_map(|(tenant, n)| Op::Shrink { tenant, n }),
        (tenant.clone(), 0usize..20).prop_map(|(tenant, target)| Op::SetShare { tenant, target }),
        tenant.prop_map(|tenant| Op::Release { tenant }),
    ]
}

fn apply(pool: &mut TilePool, op: &Op) {
    match *op {
        Op::Grow { tenant, n } => {
            // Over-asking is a typed error and must not disturb the pool.
            let _ = pool.grow(tenant, n);
        }
        Op::Shrink { tenant, n } => {
            pool.shrink(tenant, n);
        }
        Op::SetShare { tenant, target } => {
            let _ = pool.set_share(tenant, target);
        }
        Op::Release { tenant } => {
            pool.release(tenant);
        }
    }
}

fn snapshot(pool: &TilePool) -> Vec<(u64, Vec<u32>)> {
    pool.tenants()
        .into_iter()
        .map(|t| (t, pool.assignment(t).to_vec()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reallocation_is_conserving_and_deterministic(
        total in 1usize..64,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut pool = TilePool::new(total);
        for op in &ops {
            apply(&mut pool, op);
            // Conservation holds after every single step, not just at the
            // end: free + owned tiles always sum to the pool size with no
            // tile owned twice.
            prop_assert!(pool.is_conserving(), "pool lost tiles after {op:?}");
        }

        // Replaying the same sequence on a fresh pool yields identical
        // per-tenant assignments, tile for tile.
        let mut replay = TilePool::new(total);
        for op in &ops {
            apply(&mut replay, op);
        }
        prop_assert_eq!(snapshot(&pool), snapshot(&replay));
        prop_assert_eq!(pool.free_count(), replay.free_count());
    }

    #[test]
    fn shares_never_exceed_pool(
        total in 1usize..32,
        targets in proptest::collection::vec((1u64..=4, 0usize..64), 1..20),
    ) {
        let mut pool = TilePool::new(total);
        for &(tenant, target) in &targets {
            match pool.set_share(tenant, target) {
                Ok(_) => prop_assert!(pool.assignment(tenant).len() == target),
                Err(e) => {
                    // A rejected grow leaves the previous share intact.
                    prop_assert!(e.requested > e.free);
                    prop_assert!(pool.assignment(tenant).len() < target);
                }
            }
            let owned: usize = pool
                .tenants()
                .iter()
                .map(|&t| pool.assignment(t).len())
                .sum();
            prop_assert_eq!(owned + pool.free_count(), pool.total());
        }
    }
}
