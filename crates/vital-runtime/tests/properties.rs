//! Property-based tests of the system layer: the allocation policy and the
//! resource database must uphold ViTAL's isolation and accounting
//! invariants under arbitrary request sequences.

use proptest::prelude::*;
use vital_fabric::{BlockAddr, FpgaId, PhysicalBlockId};
use vital_periph::TenantId;
use vital_runtime::{allocate_blocks, ResourceDatabase};

fn free_lists_from(counts: &[usize]) -> Vec<Vec<BlockAddr>> {
    counts
        .iter()
        .enumerate()
        .map(|(f, &n)| {
            (0..n)
                .map(|b| BlockAddr::new(FpgaId::new(f as u32), PhysicalBlockId::new(b as u32)))
                .collect()
        })
        .collect()
}

proptest! {
    /// The multi-round policy allocates exactly `needed` distinct free
    /// blocks whenever the cluster has them, uses one FPGA when any single
    /// FPGA suffices, and reports the exact FPGA count it used.
    #[test]
    fn allocation_invariants(
        counts in prop::collection::vec(0usize..16, 1..6),
        needed in 0usize..40,
    ) {
        let free_lists = free_lists_from(&counts);
        let total: usize = counts.iter().sum();
        match allocate_blocks(&free_lists, needed) {
            Some(out) => {
                prop_assert!(needed <= total);
                prop_assert_eq!(out.blocks.len(), needed);
                // Distinct blocks, all from the free lists.
                let mut seen = out.blocks.clone();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), needed);
                for b in &out.blocks {
                    prop_assert!(free_lists[b.fpga.index() as usize].contains(b));
                }
                // Round-1 guarantee.
                if needed > 0 && counts.iter().any(|&c| c >= needed) {
                    prop_assert_eq!(out.fpgas_used, 1);
                }
                // Reported FPGA count matches the blocks.
                let mut fpgas: Vec<_> = out.blocks.iter().map(|b| b.fpga).collect();
                fpgas.sort_unstable();
                fpgas.dedup();
                prop_assert_eq!(out.fpgas_used, if needed == 0 { 0 } else { fpgas.len() });
            }
            None => prop_assert!(needed > total),
        }
    }
}

/// A randomized claim/release schedule against the resource database.
#[derive(Debug, Clone)]
enum DbOp {
    Claim { tenant: u64, blocks: Vec<(u8, u8)> },
    Release { tenant: u64 },
}

fn arb_db_op() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        (0u64..6, prop::collection::vec((0u8..4, 0u8..8), 1..6))
            .prop_map(|(tenant, blocks)| DbOp::Claim { tenant, blocks }),
        (0u64..6).prop_map(|tenant| DbOp::Release { tenant }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any schedule: free + held always equals the cluster size, no
    /// block is ever held by two tenants, and claims are all-or-nothing.
    #[test]
    fn resource_db_conservation(ops in prop::collection::vec(arb_db_op(), 1..40)) {
        let db = ResourceDatabase::new(4, 8);
        let total = 32usize;
        let mut live: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                DbOp::Claim { tenant, blocks } => {
                    let addrs: Vec<BlockAddr> = blocks
                        .iter()
                        .map(|&(f, b)| BlockAddr::new(
                            FpgaId::new(u32::from(f)),
                            PhysicalBlockId::new(u32::from(b)),
                        ))
                        .collect();
                    let t = TenantId::new(tenant);
                    let before_free = db.total_free();
                    let before_held = db.holdings(t).len();
                    if db.claim(t, &addrs) {
                        prop_assert_eq!(db.total_free(), before_free - addrs.len());
                        if !live.contains(&tenant) {
                            live.push(tenant);
                        }
                    } else {
                        // All-or-nothing: nothing changed.
                        prop_assert_eq!(db.total_free(), before_free);
                        prop_assert_eq!(db.holdings(t).len(), before_held);
                    }
                }
                DbOp::Release { tenant } => {
                    let t = TenantId::new(tenant);
                    let held = db.holdings(t).len();
                    let before_free = db.total_free();
                    let released = db.release(t);
                    prop_assert_eq!(released.len(), held);
                    prop_assert_eq!(db.total_free(), before_free + held);
                    live.retain(|&x| x != tenant);
                }
            }
            // Global conservation and exclusivity.
            let held_total: usize = (0..6)
                .map(|t| db.holdings(TenantId::new(t)).len())
                .sum();
            prop_assert_eq!(db.total_free() + held_total, total);
            let mut all_held: Vec<BlockAddr> = (0..6)
                .flat_map(|t| db.holdings(TenantId::new(t)))
                .collect();
            let n = all_held.len();
            all_held.sort_unstable();
            all_held.dedup();
            prop_assert_eq!(all_held.len(), n, "a block is held twice");
        }
    }
}
