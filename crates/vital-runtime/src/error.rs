//! Error type of the runtime crate.

use std::error::Error;
use std::fmt;

use vital_compiler::CompileError;
use vital_interface::{ApiError, ErrorCode, QuiesceError};
use vital_periph::{PeriphError, TenantId};

/// Errors raised by the system controller.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// No bitstream with that name is registered.
    UnknownApp(String),
    /// A bitstream with that name is already registered.
    AppExists(String),
    /// The cluster does not currently have enough free blocks.
    InsufficientResources {
        /// Blocks the application needs.
        needed: usize,
        /// Blocks currently free.
        free: usize,
    },
    /// No deployment exists for that tenant.
    UnknownTenant(TenantId),
    /// The DRAM bandwidth arbiter could not grant the configured minimum
    /// share (the channel is oversubscribed past the admission floor).
    BandwidthUnavailable {
        /// The FPGA whose channel is oversubscribed.
        fpga: usize,
        /// Share the deployment asked for, in Gb/s.
        requested_gbps: f64,
        /// Share the arbiter could grant, in Gb/s.
        granted_gbps: f64,
    },
    /// A peripheral-virtualization operation failed.
    Periph(PeriphError),
    /// Binding the bitstream to physical blocks failed.
    Relocation(CompileError),
    /// Compiling an application on behalf of the controller failed.
    Compile(CompileError),
    /// The requested cluster shape is unusable (empty layout or an FPGA
    /// with zero blocks).
    InvalidConfig(String),
    /// Suspending the tenant was refused because a channel could not
    /// quiesce (a flit is still mid-serialization); settle the tenant past
    /// the reported cycle and retry.
    Quiesce(QuiesceError),
    /// The tenant is still deployed — suspend it before restoring a
    /// checkpoint under its id.
    TenantActive(TenantId),
    /// No parked checkpoint exists for the tenant.
    NotSuspended(TenantId),
    /// The request failed for free blocks, but enough *idle* blocks to
    /// satisfy it sit on a [`Draining`](crate::FpgaHealth::Draining)
    /// device: capacity exists, it just is not allocatable until the drain
    /// resolves. A typed retry-after rejection — retry once the device
    /// finishes draining (or is recovered).
    Draining {
        /// The draining FPGA holding enough idle blocks.
        fpga: usize,
        /// Blocks the request needs.
        needed: usize,
    },
    /// The ISA backend's shared tile pool cannot supply the requested
    /// share right now — co-tenants hold the tiles. A typed retryable
    /// rejection: shares shrink elastically as queues drain, so retrying
    /// after a quantum or two usually succeeds.
    IsaTilesUnavailable {
        /// Tiles the request asked to add.
        requested: usize,
        /// Tiles currently free in the pool.
        free: usize,
    },
    /// The controller was built without an ISA accelerator template
    /// (`with_isa_backend` was never called); ISA deploy/scale requests
    /// are refused.
    IsaBackendDisabled,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownApp(name) => write!(f, "unknown application {name:?}"),
            RuntimeError::AppExists(name) => {
                write!(f, "application {name:?} is already registered")
            }
            RuntimeError::InsufficientResources { needed, free } => {
                write!(
                    f,
                    "insufficient resources: need {needed} blocks, {free} free"
                )
            }
            RuntimeError::UnknownTenant(t) => write!(f, "no deployment for {t}"),
            RuntimeError::BandwidthUnavailable {
                fpga,
                requested_gbps,
                granted_gbps,
            } => {
                write!(
                    f,
                    "DRAM bandwidth unavailable on FPGA {fpga}: \
                     requested {requested_gbps} Gb/s, granted {granted_gbps} Gb/s"
                )
            }
            RuntimeError::Periph(e) => write!(f, "peripheral error: {e}"),
            RuntimeError::Relocation(e) => write!(f, "relocation error: {e}"),
            RuntimeError::Compile(e) => write!(f, "compile error: {e}"),
            RuntimeError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            RuntimeError::Quiesce(e) => write!(f, "cannot suspend: {e}"),
            RuntimeError::TenantActive(t) => {
                write!(f, "{t} is still deployed; suspend it first")
            }
            RuntimeError::NotSuspended(t) => write!(f, "no parked checkpoint for {t}"),
            RuntimeError::Draining { fpga, needed } => write!(
                f,
                "FPGA {fpga} is draining: {needed} idle block(s) there could satisfy \
                 the request once the drain resolves; retry later"
            ),
            RuntimeError::IsaTilesUnavailable { requested, free } => write!(
                f,
                "ISA tile pool exhausted: requested {requested} tile(s), {free} free; \
                 retry after co-tenant shares shrink"
            ),
            RuntimeError::IsaBackendDisabled => {
                write!(
                    f,
                    "ISA backend disabled: controller has no accelerator template"
                )
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Periph(e) => Some(e),
            RuntimeError::Relocation(e) => Some(e),
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::Quiesce(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PeriphError> for RuntimeError {
    fn from(e: PeriphError) -> Self {
        RuntimeError::Periph(e)
    }
}

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> Self {
        RuntimeError::Relocation(e)
    }
}

impl From<QuiesceError> for RuntimeError {
    fn from(e: QuiesceError) -> Self {
        RuntimeError::Quiesce(e)
    }
}

impl RuntimeError {
    /// The stable control-plane code of this error (the shared taxonomy of
    /// [`vital_interface::ErrorCode`]). `ControlResponse::Err` carries this
    /// code plus the rendered message, so machine clients never parse the
    /// prose.
    pub fn code(&self) -> ErrorCode {
        match self {
            RuntimeError::UnknownApp(_) => ErrorCode::UnknownApp,
            RuntimeError::AppExists(_) => ErrorCode::AppExists,
            RuntimeError::InsufficientResources { .. } => ErrorCode::InsufficientResources,
            RuntimeError::UnknownTenant(_) => ErrorCode::UnknownTenant,
            RuntimeError::BandwidthUnavailable { .. } => ErrorCode::BandwidthUnavailable,
            RuntimeError::Periph(_) => ErrorCode::Periph,
            RuntimeError::Relocation(_) => ErrorCode::Relocation,
            RuntimeError::Compile(_) => ErrorCode::Compile,
            RuntimeError::InvalidConfig(_) => ErrorCode::InvalidConfig,
            RuntimeError::Quiesce(_) => ErrorCode::Quiesce,
            RuntimeError::TenantActive(_) => ErrorCode::TenantActive,
            RuntimeError::NotSuspended(_) => ErrorCode::NotSuspended,
            RuntimeError::Draining { .. } => ErrorCode::FpgaDraining,
            RuntimeError::IsaTilesUnavailable { .. } => ErrorCode::IsaTilesUnavailable,
            RuntimeError::IsaBackendDisabled => ErrorCode::IsaBackendDisabled,
        }
    }
}

impl From<&RuntimeError> for ApiError {
    fn from(e: &RuntimeError) -> Self {
        let api = ApiError::new(e.code(), e.to_string());
        match e {
            // Draining is a maintenance window: hint a coarse retry delay.
            RuntimeError::Draining { .. } => api.with_retry_after_ms(1_000),
            // Tile shares rebalance at quantum granularity (~10 ms): a
            // near-immediate retry is worthwhile.
            RuntimeError::IsaTilesUnavailable { .. } => api.with_retry_after_ms(50),
            _ => api,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
        let e = RuntimeError::Periph(PeriphError::UnknownNic(5));
        assert!(e.source().is_some());
    }

    #[test]
    fn errors_map_to_shared_taxonomy() {
        assert_eq!(
            RuntimeError::UnknownApp("x".into()).code(),
            ErrorCode::UnknownApp
        );
        assert_eq!(
            RuntimeError::InsufficientResources { needed: 4, free: 1 }.code(),
            ErrorCode::InsufficientResources
        );
        let draining = RuntimeError::Draining { fpga: 2, needed: 5 };
        let api = ApiError::from(&draining);
        assert_eq!(api.code, ErrorCode::FpgaDraining);
        assert!(api.is_retryable());
        assert!(api.retry_after_ms.is_some(), "draining carries a hint");
        let hard = ApiError::from(&RuntimeError::UnknownTenant(TenantId::new(9)));
        assert!(!hard.is_retryable());
        assert!(hard.message.contains('9'));
    }

    #[test]
    fn isa_errors_map_to_shared_taxonomy() {
        let busy = RuntimeError::IsaTilesUnavailable {
            requested: 8,
            free: 2,
        };
        assert_eq!(busy.code(), ErrorCode::IsaTilesUnavailable);
        let api = ApiError::from(&busy);
        assert!(api.is_retryable());
        assert!(api.retry_after_ms.is_some(), "pool pressure carries a hint");
        assert!(api.message.contains('8') && api.message.contains('2'));
        let off = ApiError::from(&RuntimeError::IsaBackendDisabled);
        assert_eq!(off.code, ErrorCode::IsaBackendDisabled);
        assert!(!off.is_retryable());
    }
}
