//! Error type of the runtime crate.

use std::error::Error;
use std::fmt;

use vital_compiler::CompileError;
use vital_interface::QuiesceError;
use vital_periph::{PeriphError, TenantId};

/// Errors raised by the system controller.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// No bitstream with that name is registered.
    UnknownApp(String),
    /// A bitstream with that name is already registered.
    AppExists(String),
    /// The cluster does not currently have enough free blocks.
    InsufficientResources {
        /// Blocks the application needs.
        needed: usize,
        /// Blocks currently free.
        free: usize,
    },
    /// No deployment exists for that tenant.
    UnknownTenant(TenantId),
    /// The DRAM bandwidth arbiter could not grant the configured minimum
    /// share (the channel is oversubscribed past the admission floor).
    BandwidthUnavailable {
        /// The FPGA whose channel is oversubscribed.
        fpga: usize,
        /// Share the deployment asked for, in Gb/s.
        requested_gbps: f64,
        /// Share the arbiter could grant, in Gb/s.
        granted_gbps: f64,
    },
    /// A peripheral-virtualization operation failed.
    Periph(PeriphError),
    /// Binding the bitstream to physical blocks failed.
    Relocation(CompileError),
    /// Compiling an application on behalf of the controller failed.
    Compile(CompileError),
    /// The requested cluster shape is unusable (empty layout or an FPGA
    /// with zero blocks).
    InvalidConfig(String),
    /// Suspending the tenant was refused because a channel could not
    /// quiesce (a flit is still mid-serialization); settle the tenant past
    /// the reported cycle and retry.
    Quiesce(QuiesceError),
    /// The tenant is still deployed — suspend it before restoring a
    /// checkpoint under its id.
    TenantActive(TenantId),
    /// No parked checkpoint exists for the tenant.
    NotSuspended(TenantId),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownApp(name) => write!(f, "unknown application {name:?}"),
            RuntimeError::AppExists(name) => {
                write!(f, "application {name:?} is already registered")
            }
            RuntimeError::InsufficientResources { needed, free } => {
                write!(
                    f,
                    "insufficient resources: need {needed} blocks, {free} free"
                )
            }
            RuntimeError::UnknownTenant(t) => write!(f, "no deployment for {t}"),
            RuntimeError::BandwidthUnavailable {
                fpga,
                requested_gbps,
                granted_gbps,
            } => {
                write!(
                    f,
                    "DRAM bandwidth unavailable on FPGA {fpga}: \
                     requested {requested_gbps} Gb/s, granted {granted_gbps} Gb/s"
                )
            }
            RuntimeError::Periph(e) => write!(f, "peripheral error: {e}"),
            RuntimeError::Relocation(e) => write!(f, "relocation error: {e}"),
            RuntimeError::Compile(e) => write!(f, "compile error: {e}"),
            RuntimeError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            RuntimeError::Quiesce(e) => write!(f, "cannot suspend: {e}"),
            RuntimeError::TenantActive(t) => {
                write!(f, "{t} is still deployed; suspend it first")
            }
            RuntimeError::NotSuspended(t) => write!(f, "no parked checkpoint for {t}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Periph(e) => Some(e),
            RuntimeError::Relocation(e) => Some(e),
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::Quiesce(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PeriphError> for RuntimeError {
    fn from(e: PeriphError) -> Self {
        RuntimeError::Periph(e)
    }
}

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> Self {
        RuntimeError::Relocation(e)
    }
}

impl From<QuiesceError> for RuntimeError {
    fn from(e: QuiesceError) -> Self {
        RuntimeError::Quiesce(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
        let e = RuntimeError::Periph(PeriphError::UnknownNic(5));
        assert!(e.source().is_some());
    }
}
