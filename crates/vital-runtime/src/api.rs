//! The unified control-plane request API.
//!
//! Every management operation the [`SystemController`] performs — deploy,
//! undeploy, checkpoint, restore, migrate, evacuate, fail/recover,
//! defragment, status — is expressible as one typed [`ControlRequest`],
//! answered by one typed [`ControlResponse`]. The enums (and the summary
//! DTOs they carry) implement `Serialize`/`Deserialize`, so the same value
//! travels the `vitald` wire protocol (DESIGN.md §12) and the in-process
//! [`SystemController::execute`] path unchanged. Where the capsule-format
//! redesign extended a payload, the `Deserialize` impls are hand-written to
//! accept the pre-portable shapes too (see the type-level docs).
//!
//! Tenants cross this boundary as raw `u64` ids rather than
//! [`TenantId`] handles: the wire has no notion of a live handle, and a
//! stale id is answered with a typed
//! [`ErrorCode::UnknownTenant`](vital_interface::ErrorCode::UnknownTenant)
//! rather than a panic.
//!
//! [`SystemController`]: crate::SystemController
//! [`SystemController::execute`]: crate::SystemController::execute
//! [`TenantId`]: vital_periph::TenantId

use std::time::Duration;

use serde::{DeError, Deserialize, Serialize, Value};
use vital_interface::{ApiError, FormatVersion};
use vital_periph::TenantId;

use crate::controller::{EvacuationReport, FailureReport, Migration};
use crate::{DeployHandle, TenantCheckpoint};

/// Which execution substrate a deployment lands on.
///
/// The controller runs two backends side by side: ViTAL's spatial
/// virtualization (tenants own physical blocks, programmed by partial
/// reconfiguration) and the `vital-isa` instruction-level backend (tenants
/// own compute tiles of a static accelerator template, switched by
/// instruction-stream pointer). The request picks per deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeployBackend {
    /// Spatial: compile/relocate a bitstream onto physical blocks.
    Fabric,
    /// Instruction-level: grant tiles from the shared ISA template pool.
    Isa,
}

/// A deployment request: which app to place and under what memory quota,
/// or — when [`restore`](DeployRequest::restore) is set — which parked
/// checkpoint capsule to re-admit.
///
/// This builder consolidates what used to be three controller entry points
/// (`deploy`, `deploy_with_quota`, `resume_from`) into one request shape:
///
/// ```
/// use vital_runtime::DeployRequest;
///
/// // Equivalent of `deploy("lenet")`:
/// let r = DeployRequest::app("lenet");
/// // Equivalent of `deploy_with_quota("lenet", 64 << 20)`:
/// let r = DeployRequest::app("lenet").with_quota_bytes(64 << 20);
/// assert_eq!(r.quota_bytes, 64 << 20);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployRequest {
    /// Name of the registered application bitstream. Ignored when
    /// [`restore`](DeployRequest::restore) is set (the capsule names its
    /// own app).
    pub app: String,
    /// DRAM quota in bytes; `0` means the controller's configured default.
    pub quota_bytes: u64,
    /// When set, re-admit this checkpoint capsule instead of performing a
    /// fresh placement (the `resume_from` path).
    pub restore: Option<TenantCheckpoint>,
    /// Which backend places the app. Fabric (ViTAL spatial) unless the
    /// request opts into the ISA template pool.
    pub backend: DeployBackend,
}

impl DeployRequest {
    /// A fresh deployment of the named app under the default DRAM quota.
    pub fn app(name: impl Into<String>) -> Self {
        DeployRequest {
            app: name.into(),
            quota_bytes: 0,
            restore: None,
            backend: DeployBackend::Fabric,
        }
    }

    /// A deployment of the named DNN suite variant onto the ISA backend's
    /// shared tile pool (no bitstream, no reconfiguration).
    pub fn isa(name: impl Into<String>) -> Self {
        DeployRequest {
            app: name.into(),
            quota_bytes: 0,
            restore: None,
            backend: DeployBackend::Isa,
        }
    }

    /// A lossless re-admission of a parked checkpoint capsule.
    pub fn restore(checkpoint: TenantCheckpoint) -> Self {
        DeployRequest {
            app: checkpoint.placement.app.clone(),
            quota_bytes: 0,
            restore: Some(checkpoint),
            backend: DeployBackend::Fabric,
        }
    }

    /// Override the DRAM quota (`0` keeps the controller default).
    #[must_use]
    pub fn with_quota_bytes(mut self, quota_bytes: u64) -> Self {
        self.quota_bytes = quota_bytes;
        self
    }

    /// Override the target backend (builder style).
    #[must_use]
    pub fn with_backend(mut self, backend: DeployBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// How a [`ControlRequest::Migrate`] is allowed to move the tenant.
///
/// `SameGeometry` is the PR 4 fast path: the parked capsule rebinds the
/// *same* compiled image to new blocks, so it only works between identical
/// device geometries. `Portable` lifts the capsule into the
/// geometry-independent [`PortableCheckpoint`](vital_checkpoint::PortableCheckpoint)
/// format and restores through recompile-or-cache-hit, so the target may be
/// a different device model. `Auto` tries the fast path and falls back to
/// the portable one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigratePolicy {
    /// Rebind the existing image — identical geometries only (fast path).
    #[default]
    SameGeometry,
    /// Go through the portable capsule and the build farm (works across
    /// device geometries).
    Portable,
    /// Try [`MigratePolicy::SameGeometry`] first, fall back to
    /// [`MigratePolicy::Portable`].
    Auto,
}

/// One control-plane operation, covering the controller's whole management
/// surface. Constructed directly or via the convenience constructors
/// ([`ControlRequest::deploy`] etc.), and executed by
/// [`SystemController::execute`](crate::SystemController::execute) or
/// submitted to a `vitald` service.
///
/// # Wire compatibility
///
/// The checkpoint/migration surface was renamed in capsule-format v1
/// (`Suspend` → [`Checkpoint`](ControlRequest::Checkpoint), `Resume` →
/// [`Restore`](ControlRequest::Restore), `Migrate` gained a
/// [`MigratePolicy`]). The hand-written [`Deserialize`] impl still accepts
/// the legacy tags and a policy-less `Migrate` payload, so requests from
/// older clients keep working; the deprecated constructors
/// ([`suspend`](ControlRequest::suspend), [`resume`](ControlRequest::resume))
/// shim old call sites onto the new variants.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub enum ControlRequest {
    /// Place an application (or restore a checkpoint capsule).
    Deploy(DeployRequest),
    /// Tear a tenant down and scrub its state.
    Undeploy {
        /// Raw id of the tenant to remove.
        tenant: u64,
    },
    /// Quiesce a tenant and park its checkpoint capsule (the operation
    /// formerly tagged `Suspend` on the wire).
    Checkpoint {
        /// Raw id of the tenant to checkpoint.
        tenant: u64,
    },
    /// Re-admit a previously checkpointed tenant from its parked capsule
    /// (formerly tagged `Resume` on the wire).
    Restore {
        /// Raw id of the parked tenant.
        tenant: u64,
    },
    /// Live-migrate a tenant to a better placement (checkpoint + restore),
    /// under the given policy.
    Migrate {
        /// Raw id of the tenant to move.
        tenant: u64,
        /// How the move is allowed to happen. Legacy payloads without this
        /// field deserialize as [`MigratePolicy::SameGeometry`].
        policy: MigratePolicy,
    },
    /// Drain a device by live-migrating its tenants elsewhere.
    Evacuate {
        /// Device to drain.
        fpga: usize,
    },
    /// Declare a device failed and rescue its tenants.
    Fail {
        /// Device that failed.
        fpga: usize,
    },
    /// Bring a failed or drained device back online.
    Recover {
        /// Device to restore.
        fpga: usize,
    },
    /// Compact fragmented placements cluster-wide.
    Defragment,
    /// Snapshot cluster health, occupancy and tenancy.
    Status,
    /// Ensure the named app's bitstream is registered, compiling it via
    /// the controller's app resolver if necessary.
    Prepare {
        /// Application name to resolve.
        app: String,
    },
    /// Elastically resize an ISA tenant's compute-tile share. The change
    /// takes effect at the next quantum boundary at micro-second cost —
    /// no reconfiguration, unlike resizing a fabric tenant.
    Scale {
        /// Raw id of the ISA tenant to resize.
        tenant: u64,
        /// Target tile share.
        tiles: u32,
    },
}

impl ControlRequest {
    /// Deploy the named app under the default quota.
    pub fn deploy(app: impl Into<String>) -> Self {
        ControlRequest::Deploy(DeployRequest::app(app))
    }

    /// Undeploy the tenant.
    pub fn undeploy(tenant: TenantId) -> Self {
        ControlRequest::Undeploy {
            tenant: tenant.raw(),
        }
    }

    /// Checkpoint the tenant (quiesce + park its capsule).
    pub fn checkpoint(tenant: TenantId) -> Self {
        ControlRequest::Checkpoint {
            tenant: tenant.raw(),
        }
    }

    /// Restore the parked tenant from its capsule.
    pub fn restore(tenant: TenantId) -> Self {
        ControlRequest::Restore {
            tenant: tenant.raw(),
        }
    }

    /// Deprecated shim for the pre-portable API surface.
    #[deprecated(note = "use `ControlRequest::checkpoint`")]
    pub fn suspend(tenant: TenantId) -> Self {
        Self::checkpoint(tenant)
    }

    /// Deprecated shim for the pre-portable API surface.
    #[deprecated(note = "use `ControlRequest::restore`")]
    pub fn resume(tenant: TenantId) -> Self {
        Self::restore(tenant)
    }

    /// Live-migrate the tenant on the identical-geometry fast path (the
    /// behavior the policy-less request always had).
    pub fn migrate(tenant: TenantId) -> Self {
        Self::migrate_with(tenant, MigratePolicy::SameGeometry)
    }

    /// Live-migrate the tenant under an explicit [`MigratePolicy`].
    pub fn migrate_with(tenant: TenantId, policy: MigratePolicy) -> Self {
        ControlRequest::Migrate {
            tenant: tenant.raw(),
            policy,
        }
    }

    /// Resize an ISA tenant's tile share.
    pub fn scale(tenant: TenantId, tiles: u32) -> Self {
        ControlRequest::Scale {
            tenant: tenant.raw(),
            tiles,
        }
    }

    /// The stable endpoint name of this request, used for per-endpoint
    /// telemetry (latency histograms are keyed
    /// `service.latency_us.<endpoint>`).
    pub fn endpoint(&self) -> &'static str {
        match self {
            ControlRequest::Deploy(r) if r.restore.is_some() => "restore",
            ControlRequest::Deploy(_) => "deploy",
            ControlRequest::Undeploy { .. } => "undeploy",
            ControlRequest::Checkpoint { .. } => "checkpoint",
            ControlRequest::Restore { .. } => "restore",
            ControlRequest::Migrate { .. } => "migrate",
            ControlRequest::Evacuate { .. } => "evacuate",
            ControlRequest::Fail { .. } => "fail",
            ControlRequest::Recover { .. } => "recover",
            ControlRequest::Defragment => "defrag",
            ControlRequest::Status => "status",
            ControlRequest::Prepare { .. } => "prepare",
            ControlRequest::Scale { .. } => "scale",
        }
    }

    /// `true` for requests the service may batch into one allocator round
    /// (fresh deployments and capsule restores).
    pub fn is_batchable(&self) -> bool {
        matches!(self, ControlRequest::Deploy(_))
    }
}

fn tenant_of(v: &Value) -> Result<u64, DeError> {
    Deserialize::from_value(v.field("tenant")?)
}

/// Hand-written so the wire stays compatible across the checkpoint-surface
/// rename: the legacy `Suspend`/`Resume` tags map onto
/// [`ControlRequest::Checkpoint`]/[`ControlRequest::Restore`], and a
/// `Migrate` payload without a `policy` field (what pre-portable clients
/// send) defaults to [`MigratePolicy::SameGeometry`].
impl Deserialize for ControlRequest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Value::Str(tag) = v {
            return match tag.as_str() {
                "Defragment" => Ok(ControlRequest::Defragment),
                "Status" => Ok(ControlRequest::Status),
                other => Err(DeError(format!(
                    "unknown variant {other} of ControlRequest"
                ))),
            };
        }
        let Value::Map(entries) = v else {
            return Err(DeError(format!(
                "expected string or single-entry map for ControlRequest, got {v:?}"
            )));
        };
        let [(tag, inner)] = entries.as_slice() else {
            return Err(DeError(format!(
                "expected single-entry map for ControlRequest, got {} entries",
                entries.len()
            )));
        };
        match tag.as_str() {
            "Deploy" => Ok(ControlRequest::Deploy(Deserialize::from_value(inner)?)),
            "Undeploy" => Ok(ControlRequest::Undeploy {
                tenant: tenant_of(inner)?,
            }),
            "Checkpoint" | "Suspend" => Ok(ControlRequest::Checkpoint {
                tenant: tenant_of(inner)?,
            }),
            "Restore" | "Resume" => Ok(ControlRequest::Restore {
                tenant: tenant_of(inner)?,
            }),
            "Migrate" => Ok(ControlRequest::Migrate {
                tenant: tenant_of(inner)?,
                policy: match inner.field("policy") {
                    Ok(p) => Deserialize::from_value(p)?,
                    Err(_) => MigratePolicy::SameGeometry,
                },
            }),
            "Evacuate" => Ok(ControlRequest::Evacuate {
                fpga: Deserialize::from_value(inner.field("fpga")?)?,
            }),
            "Fail" => Ok(ControlRequest::Fail {
                fpga: Deserialize::from_value(inner.field("fpga")?)?,
            }),
            "Recover" => Ok(ControlRequest::Recover {
                fpga: Deserialize::from_value(inner.field("fpga")?)?,
            }),
            "Prepare" => Ok(ControlRequest::Prepare {
                app: Deserialize::from_value(inner.field("app")?)?,
            }),
            "Scale" => Ok(ControlRequest::Scale {
                tenant: tenant_of(inner)?,
                tiles: Deserialize::from_value(inner.field("tiles")?)?,
            }),
            other => Err(DeError(format!(
                "unknown variant {other} of ControlRequest"
            ))),
        }
    }
}

/// What one successful deployment (or resume) produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploySummary {
    /// Raw id of the admitted tenant.
    pub tenant: u64,
    /// Name of the deployed application.
    pub app: String,
    /// Physical blocks the placement uses.
    pub blocks: usize,
    /// Distinct FPGAs the placement spans.
    pub fpgas: usize,
    /// The FPGA hosting the majority of the blocks (and the DRAM).
    pub primary_fpga: usize,
    /// Modelled partial-reconfiguration time, in microseconds.
    pub reconfig_us: u64,
    /// DRAM bandwidth share granted at admission, in Gb/s.
    pub granted_gbps: f64,
}

impl From<&DeployHandle> for DeploySummary {
    fn from(h: &DeployHandle) -> Self {
        DeploySummary {
            tenant: h.tenant().raw(),
            app: h.placed().app.clone(),
            blocks: h.placed().bindings.len(),
            fpgas: h.fpga_count(),
            primary_fpga: h.primary_fpga(),
            reconfig_us: duration_us(h.reconfig_duration()),
            granted_gbps: h.bandwidth().granted_gbps,
        }
    }
}

/// What one elastic tile-share change did (ISA backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleSummary {
    /// Raw id of the resized tenant.
    pub tenant: u64,
    /// Tile share before the change.
    pub tiles_before: u32,
    /// Tile share after the change.
    pub tiles_after: u32,
    /// Modelled stream-switch time of the change, in microseconds —
    /// compare [`DeploySummary::reconfig_us`] on the fabric backend,
    /// which is milliseconds for the same capacity delta.
    pub realloc_us: u64,
}

/// What checkpointing (suspending) a tenant captured.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SuspendSummary {
    /// Raw id of the suspended tenant.
    pub tenant: u64,
    /// Channels whose state was captured.
    pub channels: usize,
    /// In-flight flits drained into the capsule.
    pub flits: usize,
    /// DRAM bytes exported into the capsule.
    pub dram_bytes: u64,
    /// Format version a portable export of this capsule would carry.
    pub capsule_version: FormatVersion,
    /// `true` if the capsule can be lifted into the geometry-independent
    /// portable format (the compiled image exposes a scan interface).
    pub portable: bool,
    /// State bits the scan interface captures (0 when not portable).
    pub scan_bits: u64,
}

impl SuspendSummary {
    /// Marks the capsule as portable, recording its scan-state footprint
    /// (builder style, used by the controller's checkpoint path).
    #[must_use]
    pub fn with_portability(mut self, scan_bits: u64) -> Self {
        self.portable = true;
        self.scan_bits = scan_bits;
        self
    }
}

impl From<&TenantCheckpoint> for SuspendSummary {
    fn from(cp: &TenantCheckpoint) -> Self {
        SuspendSummary {
            tenant: cp.tenant.raw(),
            channels: cp.channels.len(),
            flits: cp.channels.iter().map(|c| c.snapshot.occupancy()).sum(),
            dram_bytes: cp.memory.pages.len() as u64 * cp.memory.page_size,
            capsule_version: FormatVersion::CURRENT,
            portable: false,
            scan_bits: 0,
        }
    }
}

/// Hand-written so summaries from pre-portable builds (no
/// `capsule_version`/`portable`/`scan_bits` fields) still parse: the new
/// fields default instead of failing the strict field lookup.
impl Deserialize for SuspendSummary {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(SuspendSummary {
            tenant: Deserialize::from_value(v.field("tenant")?)?,
            channels: Deserialize::from_value(v.field("channels")?)?,
            flits: Deserialize::from_value(v.field("flits")?)?,
            dram_bytes: Deserialize::from_value(v.field("dram_bytes")?)?,
            capsule_version: match v.field("capsule_version") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => FormatVersion::CURRENT,
            },
            portable: match v.field("portable") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => false,
            },
            scan_bits: match v.field("scan_bits") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => 0,
            },
        })
    }
}

/// One completed relocation, as reported over the control plane.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MigrationSummary {
    /// Raw id of the migrated tenant.
    pub tenant: u64,
    /// Distinct FPGAs spanned before the move.
    pub fpgas_before: usize,
    /// Distinct FPGAs spanned after the move.
    pub fpgas_after: usize,
    /// Partial-reconfiguration downtime the move charged, in microseconds.
    pub reconfig_us: u64,
    /// Ring-hop cost before the move.
    pub hop_cost_before: usize,
    /// Ring-hop cost after the move.
    pub hop_cost_after: usize,
    /// Which migration path actually ran (under [`MigratePolicy::Auto`]
    /// this records the winner, never `Auto` itself).
    pub policy: MigratePolicy,
}

impl MigrationSummary {
    /// Records which migration path produced this summary (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: MigratePolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl From<&Migration> for MigrationSummary {
    fn from(m: &Migration) -> Self {
        MigrationSummary {
            tenant: m.tenant.raw(),
            fpgas_before: m.fpgas_before,
            fpgas_after: m.fpgas_after,
            reconfig_us: duration_us(m.reconfig),
            hop_cost_before: m.hop_cost_before,
            hop_cost_after: m.hop_cost_after,
            policy: MigratePolicy::SameGeometry,
        }
    }
}

/// Hand-written so summaries from pre-portable builds (no `policy` field)
/// still parse as the fast path they were.
impl Deserialize for MigrationSummary {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(MigrationSummary {
            tenant: Deserialize::from_value(v.field("tenant")?)?,
            fpgas_before: Deserialize::from_value(v.field("fpgas_before")?)?,
            fpgas_after: Deserialize::from_value(v.field("fpgas_after")?)?,
            reconfig_us: Deserialize::from_value(v.field("reconfig_us")?)?,
            hop_cost_before: Deserialize::from_value(v.field("hop_cost_before")?)?,
            hop_cost_after: Deserialize::from_value(v.field("hop_cost_after")?)?,
            policy: match v.field("policy") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => MigratePolicy::SameGeometry,
            },
        })
    }
}

/// What an evacuation managed to move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvacuationSummary {
    /// The drained device.
    pub fpga: usize,
    /// Tenants live-migrated off it.
    pub migrated: Vec<MigrationSummary>,
    /// Raw ids of tenants left in place for lack of capacity.
    pub unmoved: Vec<u64>,
}

impl EvacuationSummary {
    pub(crate) fn from_report(fpga: usize, r: &EvacuationReport) -> Self {
        EvacuationSummary {
            fpga,
            migrated: r.migrated.iter().map(MigrationSummary::from).collect(),
            unmoved: r.unmoved.iter().map(|t| t.raw()).collect(),
        }
    }
}

/// What declaring a device failed did to the affected tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSummary {
    /// The failed device.
    pub fpga: usize,
    /// Tenants rescued onto surviving devices.
    pub migrated: Vec<MigrationSummary>,
    /// Raw ids of tenants torn down because no placement could hold them.
    pub torn_down: Vec<u64>,
}

impl FailureSummary {
    pub(crate) fn from_report(fpga: usize, r: &FailureReport) -> Self {
        FailureSummary {
            fpga,
            migrated: r.migrated.iter().map(MigrationSummary::from).collect(),
            torn_down: r.torn_down.iter().map(|t| t.raw()).collect(),
        }
    }
}

/// Health and occupancy of one device, from a [`ControlRequest::Status`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaStatus {
    /// Device index.
    pub fpga: usize,
    /// Health as a stable string: `"Online"`, `"Draining"` or `"Offline"`.
    pub health: String,
    /// Per-block occupancy: `0` for a free block, otherwise the raw id of
    /// the owning tenant. Clients render the occupancy map from this.
    pub blocks: Vec<u64>,
    /// Free (allocatable) blocks on this device right now.
    pub free: usize,
}

/// A cluster-wide snapshot: per-device occupancy plus tenancy and the
/// failure/recovery counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusSummary {
    /// One entry per device, in index order.
    pub fpgas: Vec<FpgaStatus>,
    /// Free blocks across all online devices.
    pub total_free: usize,
    /// Raw ids of currently deployed tenants, ascending.
    pub live_tenants: Vec<u64>,
    /// Raw ids of suspended (parked) tenants, ascending.
    pub suspended_tenants: Vec<u64>,
    /// Devices declared failed so far.
    pub fpga_failures: u64,
    /// Devices brought back so far.
    pub fpga_recoveries: u64,
    /// Evacuations started so far.
    pub evacuations: u64,
    /// Tenants relocated by failure handling or evacuation.
    pub tenants_migrated: u64,
    /// Tenants torn down because they could not be re-placed.
    pub tenants_torn_down: u64,
    /// Raw ids of tenants on the ISA backend, ascending (empty when the
    /// backend is disabled).
    pub isa_tenants: Vec<u64>,
    /// Compute tiles in the ISA template pool (0 when disabled).
    pub isa_tiles_total: usize,
    /// Free compute tiles in the ISA template pool right now.
    pub isa_tiles_free: usize,
}

/// The typed answer to one [`ControlRequest`]. Failures are a value, not a
/// transport error: [`ControlResponse::Err`] carries the shared
/// [`ApiError`] taxonomy so remote and in-process callers see identical
/// codes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ControlResponse {
    /// A fresh deployment was admitted.
    Deployed(DeploySummary),
    /// The tenant was torn down.
    Undeployed {
        /// Raw id of the removed tenant.
        tenant: u64,
    },
    /// The tenant was quiesced and its capsule parked.
    Suspended(SuspendSummary),
    /// A suspended tenant (or capsule) was re-admitted.
    Resumed(DeploySummary),
    /// The tenant was live-migrated.
    Migrated(MigrationSummary),
    /// The device was drained.
    Evacuated(EvacuationSummary),
    /// The device was declared failed and its tenants handled.
    FpgaFailed(FailureSummary),
    /// The device is back online.
    Recovered {
        /// The restored device.
        fpga: usize,
    },
    /// Cluster-wide compaction ran.
    Defragmented {
        /// Relocations performed, possibly empty.
        migrations: Vec<MigrationSummary>,
    },
    /// The requested snapshot.
    Status(StatusSummary),
    /// The app's bitstream is registered and ready to deploy.
    Prepared {
        /// The resolved application name.
        app: String,
        /// `true` if the bitstream was already registered.
        cache_hit: bool,
    },
    /// An ISA tenant's tile share was resized.
    Scaled(ScaleSummary),
    /// The request failed; the [`ApiError`] carries a stable
    /// machine-readable code plus a human-readable message.
    Err(ApiError),
}

impl ControlResponse {
    /// The error, if this response is one.
    pub fn err(&self) -> Option<&ApiError> {
        match self {
            ControlResponse::Err(e) => Some(e),
            _ => None,
        }
    }

    /// `true` unless this response is [`ControlResponse::Err`].
    pub fn is_ok(&self) -> bool {
        self.err().is_none()
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_interface::ErrorCode;

    #[test]
    fn deploy_request_builder() {
        let r = DeployRequest::app("lenet").with_quota_bytes(1 << 20);
        assert_eq!(r.app, "lenet");
        assert_eq!(r.quota_bytes, 1 << 20);
        assert!(r.restore.is_none());
    }

    #[test]
    fn endpoint_names_are_stable() {
        assert_eq!(ControlRequest::deploy("a").endpoint(), "deploy");
        assert_eq!(ControlRequest::Status.endpoint(), "status");
        assert_eq!(ControlRequest::Defragment.endpoint(), "defrag");
        assert_eq!(
            ControlRequest::undeploy(TenantId::new(3)).endpoint(),
            "undeploy"
        );
        assert_eq!(
            ControlRequest::scale(TenantId::new(3), 8).endpoint(),
            "scale"
        );
    }

    #[test]
    fn isa_deploy_and_scale_round_trip_through_json() {
        let reqs = vec![
            ControlRequest::Deploy(DeployRequest::isa("lenet-M")),
            ControlRequest::Scale {
                tenant: 5,
                tiles: 9,
            },
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).expect("serialize");
            let back: ControlRequest = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, req);
        }
        let resp = ControlResponse::Scaled(ScaleSummary {
            tenant: 5,
            tiles_before: 4,
            tiles_after: 9,
            realloc_us: 50,
        });
        let json = serde_json::to_string(&resp).expect("serialize");
        let back: ControlResponse = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, resp);
        assert_eq!(
            DeployRequest::app("x").backend,
            DeployBackend::Fabric,
            "fabric stays the default backend"
        );
        assert_eq!(DeployRequest::isa("x").backend, DeployBackend::Isa);
    }

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            ControlRequest::deploy("mlp"),
            ControlRequest::Undeploy { tenant: 7 },
            ControlRequest::Evacuate { fpga: 2 },
            ControlRequest::Defragment,
            ControlRequest::Status,
            ControlRequest::Prepare { app: "aes".into() },
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).expect("serialize");
            let back: ControlRequest = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let resps = vec![
            ControlResponse::Deployed(DeploySummary {
                tenant: 1,
                app: "mlp".into(),
                blocks: 4,
                fpgas: 1,
                primary_fpga: 0,
                reconfig_us: 120,
                granted_gbps: 12.5,
            }),
            ControlResponse::Undeployed { tenant: 1 },
            ControlResponse::Defragmented { migrations: vec![] },
            ControlResponse::Err(ApiError::new(ErrorCode::Overloaded, "queue full")),
        ];
        for resp in resps {
            let json = serde_json::to_string(&resp).expect("serialize");
            let back: ControlResponse = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, resp);
            assert_eq!(back.is_ok(), back.err().is_none());
        }
    }

    #[test]
    fn checkpoint_surface_round_trips_through_json() {
        let reqs = vec![
            ControlRequest::checkpoint(TenantId::new(3)),
            ControlRequest::restore(TenantId::new(3)),
            ControlRequest::migrate(TenantId::new(3)),
            ControlRequest::migrate_with(TenantId::new(3), MigratePolicy::Portable),
            ControlRequest::migrate_with(TenantId::new(3), MigratePolicy::Auto),
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).expect("serialize");
            let back: ControlRequest = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, req);
        }
        assert_eq!(
            ControlRequest::checkpoint(TenantId::new(3)).endpoint(),
            "checkpoint"
        );
        assert_eq!(
            ControlRequest::restore(TenantId::new(3)).endpoint(),
            "restore"
        );
        assert_eq!(
            ControlRequest::migrate(TenantId::new(3)).endpoint(),
            "migrate"
        );
    }

    #[test]
    fn deprecated_constructors_map_to_the_new_surface() {
        #[allow(deprecated)]
        let suspend = ControlRequest::suspend(TenantId::new(9));
        assert_eq!(suspend, ControlRequest::Checkpoint { tenant: 9 });
        #[allow(deprecated)]
        let resume = ControlRequest::resume(TenantId::new(9));
        assert_eq!(resume, ControlRequest::Restore { tenant: 9 });
        assert_eq!(
            ControlRequest::migrate(TenantId::new(9)),
            ControlRequest::Migrate {
                tenant: 9,
                policy: MigratePolicy::SameGeometry
            }
        );
    }

    #[test]
    fn legacy_wire_tags_still_parse() {
        // Requests serialized by pre-portable builds use the old variant
        // names and carry no policy; they must keep working verbatim.
        let back: ControlRequest = serde_json::from_str("{\"Suspend\":{\"tenant\":4}}").unwrap();
        assert_eq!(back, ControlRequest::Checkpoint { tenant: 4 });
        let back: ControlRequest = serde_json::from_str("{\"Resume\":{\"tenant\":4}}").unwrap();
        assert_eq!(back, ControlRequest::Restore { tenant: 4 });
        let back: ControlRequest = serde_json::from_str("{\"Migrate\":{\"tenant\":4}}").unwrap();
        assert_eq!(
            back,
            ControlRequest::Migrate {
                tenant: 4,
                policy: MigratePolicy::SameGeometry
            }
        );
    }

    #[test]
    fn legacy_summaries_parse_with_defaulted_fields() {
        let json = "{\"tenant\":2,\"channels\":3,\"flits\":7,\"dram_bytes\":4096}";
        let s: SuspendSummary = serde_json::from_str(json).unwrap();
        assert_eq!(
            (s.tenant, s.channels, s.flits, s.dram_bytes),
            (2, 3, 7, 4096)
        );
        assert_eq!(s.capsule_version, FormatVersion::CURRENT);
        assert!(!s.portable);
        assert_eq!(s.scan_bits, 0);

        let json = "{\"tenant\":2,\"fpgas_before\":2,\"fpgas_after\":1,\"reconfig_us\":80,\
                    \"hop_cost_before\":3,\"hop_cost_after\":0}";
        let m: MigrationSummary = serde_json::from_str(json).unwrap();
        assert_eq!(m.policy, MigratePolicy::SameGeometry);
    }

    #[test]
    fn new_summaries_round_trip_with_portability_fields() {
        let s = SuspendSummary {
            tenant: 8,
            channels: 2,
            flits: 5,
            dram_bytes: 1 << 20,
            capsule_version: FormatVersion::CURRENT,
            portable: false,
            scan_bits: 0,
        }
        .with_portability(12_288);
        let json = serde_json::to_string(&s).unwrap();
        let back: SuspendSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(back.portable);
        assert_eq!(back.scan_bits, 12_288);

        let m = MigrationSummary {
            tenant: 8,
            fpgas_before: 1,
            fpgas_after: 1,
            reconfig_us: 90,
            hop_cost_before: 0,
            hop_cost_after: 0,
            policy: MigratePolicy::SameGeometry,
        }
        .with_policy(MigratePolicy::Portable);
        let json = serde_json::to_string(&m).unwrap();
        let back: MigrationSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.policy, MigratePolicy::Portable);
    }
}
