//! The resource database: status of every physical block (paper Fig. 6).

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use vital_fabric::{BlockAddr, FpgaId, PhysicalBlockId};
use vital_periph::TenantId;

/// The state of one physical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BlockState {
    /// Available for allocation.
    #[default]
    Free,
    /// Occupied by a tenant's virtual block.
    Active(TenantId),
}

/// Operational health of one FPGA (the failure model's state machine).
///
/// `Online → Draining` (operator-initiated evacuation) and `Online →
/// Offline` (crash) both stop new allocations; only `Offline` means the
/// device — and any tenant logic still on it — is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FpgaHealth {
    /// Healthy: blocks are allocatable.
    #[default]
    Online,
    /// Being evacuated: existing tenants keep running (and keep their
    /// DRAM), but no new blocks are handed out.
    Draining,
    /// Crashed or removed: nothing on it is usable.
    Offline,
}

struct Inner {
    states: Vec<Vec<BlockState>>,
    tenants: HashMap<TenantId, Vec<BlockAddr>>,
    health: Vec<FpgaHealth>,
    /// Per-FPGA index: tenant → number of blocks it holds on that device.
    /// Maintained on claim/release so `tenants_on` (the hot query behind
    /// `fail_fpga`/`evacuate`) is O(tenants-on-device), not a scan of
    /// every tenant's whole holding list.
    by_fpga: Vec<HashMap<TenantId, usize>>,
}

/// Thread-safe bookkeeping of the cluster's physical blocks.
///
/// The invariant the database maintains is ViTAL's isolation guarantee:
/// **one physical block is never shared between tenants** (§3.4).
pub struct ResourceDatabase {
    layout: Vec<usize>,
    inner: RwLock<Inner>,
}

impl fmt::Debug for ResourceDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceDatabase")
            .field("layout", &self.layout)
            .field("tenants", &self.inner.read().tenants.len())
            .finish()
    }
}

impl ResourceDatabase {
    /// Creates a database for `fpgas` devices of `blocks_per_fpga` blocks.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(fpgas: usize, blocks_per_fpga: usize) -> Self {
        assert!(
            fpgas > 0 && blocks_per_fpga > 0,
            "cluster must be non-empty"
        );
        Self::with_layout(vec![blocks_per_fpga; fpgas])
    }

    /// Creates a database over a *heterogeneous* cluster: one entry per
    /// FPGA giving its block count (paper §7 notes ViTAL extends to mixed
    /// clusters — only the blocks themselves must stay identical).
    ///
    /// # Panics
    ///
    /// Panics if `layout` is empty or any FPGA has zero blocks.
    pub fn with_layout(layout: Vec<usize>) -> Self {
        assert!(
            !layout.is_empty() && layout.iter().all(|&n| n > 0),
            "cluster must be non-empty"
        );
        ResourceDatabase {
            inner: RwLock::new(Inner {
                states: layout.iter().map(|&n| vec![BlockState::Free; n]).collect(),
                tenants: HashMap::new(),
                health: vec![FpgaHealth::Online; layout.len()],
                by_fpga: vec![HashMap::new(); layout.len()],
            }),
            layout,
        }
    }

    /// Number of FPGAs tracked.
    pub fn fpga_count(&self) -> usize {
        self.layout.len()
    }

    /// Blocks per FPGA (the maximum, for heterogeneous layouts).
    pub fn blocks_per_fpga(&self) -> usize {
        self.layout.iter().copied().max().unwrap_or(0)
    }

    /// Blocks of one specific FPGA.
    pub fn blocks_of(&self, fpga: usize) -> usize {
        self.layout.get(fpga).copied().unwrap_or(0)
    }

    /// The state of one block (`None` if out of range).
    pub fn state(&self, addr: BlockAddr) -> Option<BlockState> {
        self.inner
            .read()
            .states
            .get(addr.fpga.index() as usize)?
            .get(addr.block.index() as usize)
            .copied()
    }

    /// The health of one FPGA (`Offline` if out of range).
    pub fn health_of(&self, fpga: usize) -> FpgaHealth {
        self.inner
            .read()
            .health
            .get(fpga)
            .copied()
            .unwrap_or(FpgaHealth::Offline)
    }

    /// Sets the health of one FPGA. Out-of-range indices are ignored.
    /// Blocks already held by tenants are untouched — eviction or
    /// migration is the controller's job, not the database's.
    pub fn set_health(&self, fpga: usize, health: FpgaHealth) {
        if let Some(slot) = self.inner.write().health.get_mut(fpga) {
            *slot = health;
        }
    }

    /// Free blocks per FPGA, as counts. Non-[`Online`](FpgaHealth::Online)
    /// devices report zero: their blocks are not allocatable.
    pub fn free_counts(&self) -> Vec<usize> {
        let inner = self.inner.read();
        inner
            .states
            .iter()
            .zip(&inner.health)
            .map(|(f, h)| {
                if *h == FpgaHealth::Online {
                    f.iter().filter(|s| **s == BlockState::Free).count()
                } else {
                    0
                }
            })
            .collect()
    }

    /// Free block addresses of one FPGA (empty unless the device is
    /// [`Online`](FpgaHealth::Online)).
    pub fn free_blocks_of(&self, fpga: usize) -> Vec<BlockAddr> {
        let inner = self.inner.read();
        if inner.health.get(fpga) != Some(&FpgaHealth::Online) {
            return Vec::new();
        }
        inner
            .states
            .get(fpga)
            .map(|blocks| {
                blocks
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s == BlockState::Free)
                    .map(|(i, _)| {
                        BlockAddr::new(FpgaId::new(fpga as u32), PhysicalBlockId::new(i as u32))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Unclaimed blocks on one FPGA **regardless of its health**. Where
    /// [`ResourceDatabase::free_counts`] reports what is allocatable right
    /// now, this reports raw idle capacity — the number the controller
    /// uses to tell "the cluster is full" apart from "capacity exists but
    /// sits on a [`Draining`](FpgaHealth::Draining) device".
    pub fn idle_count_of(&self, fpga: usize) -> usize {
        let inner = self.inner.read();
        inner
            .states
            .get(fpga)
            .map(|blocks| blocks.iter().filter(|s| **s == BlockState::Free).count())
            .unwrap_or(0)
    }

    /// Total free blocks.
    pub fn total_free(&self) -> usize {
        self.free_counts().iter().sum()
    }

    /// Atomically claims `blocks` for `tenant`. Either all blocks are
    /// claimed or none are.
    ///
    /// Returns `false` (claiming nothing) if any block is out of range,
    /// already active, listed twice, or on a device that is not
    /// [`Online`](FpgaHealth::Online).
    pub fn claim(&self, tenant: TenantId, blocks: &[BlockAddr]) -> bool {
        let mut inner = self.inner.write();
        // Validate first.
        for (i, b) in blocks.iter().enumerate() {
            if blocks[..i].contains(b) {
                return false;
            }
            if inner.health.get(b.fpga.index() as usize) != Some(&FpgaHealth::Online) {
                return false;
            }
            let ok = inner
                .states
                .get(b.fpga.index() as usize)
                .and_then(|f| f.get(b.block.index() as usize))
                .is_some_and(|s| *s == BlockState::Free);
            if !ok {
                return false;
            }
        }
        for b in blocks {
            let f = b.fpga.index() as usize;
            inner.states[f][b.block.index() as usize] = BlockState::Active(tenant);
            *inner.by_fpga[f].entry(tenant).or_insert(0) += 1;
        }
        inner.tenants.entry(tenant).or_default().extend(blocks);
        true
    }

    /// Releases every block held by `tenant`, returning them.
    pub fn release(&self, tenant: TenantId) -> Vec<BlockAddr> {
        let mut inner = self.inner.write();
        let blocks = inner.tenants.remove(&tenant).unwrap_or_default();
        for b in &blocks {
            let f = b.fpga.index() as usize;
            inner.states[f][b.block.index() as usize] = BlockState::Free;
            // Invariant: every claimed block has an index entry — claim()
            // increments the count under the same lock that set the block
            // Active, so a missing entry means the two structures diverged.
            match inner.by_fpga[f].get_mut(&tenant) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    inner.by_fpga[f].remove(&tenant);
                }
                None => debug_assert!(false, "claimed block missing from per-FPGA tenant index"),
            }
        }
        blocks
    }

    /// The blocks currently held by `tenant`.
    pub fn holdings(&self, tenant: TenantId) -> Vec<BlockAddr> {
        self.inner
            .read()
            .tenants
            .get(&tenant)
            .cloned()
            .unwrap_or_default()
    }

    /// Tenants holding at least one block on `fpga`, sorted.
    ///
    /// Served from the per-FPGA index, so the cost scales with the number
    /// of tenants *on that device* — `fail_fpga`/`evacuate` used to scan
    /// every tenant's whole holding list here, going quadratic during
    /// mass evacuations.
    pub fn tenants_on(&self, fpga: usize) -> Vec<TenantId> {
        let inner = self.inner.read();
        let mut v: Vec<TenantId> = match inner.by_fpga.get(fpga) {
            Some(idx) => idx.keys().copied().collect(),
            None => Vec::new(),
        };
        v.sort_unstable();
        v
    }

    /// Reference implementation of [`tenants_on`](Self::tenants_on) that
    /// scans every tenant's holdings. Kept for the index equivalence test.
    #[doc(hidden)]
    pub fn tenants_on_by_scan(&self, fpga: usize) -> Vec<TenantId> {
        let inner = self.inner.read();
        let mut v: Vec<TenantId> = inner
            .tenants
            .iter()
            .filter(|(_, blocks)| blocks.iter().any(|b| b.fpga.index() as usize == fpga))
            .map(|(&t, _)| t)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(f: u32, b: u32) -> BlockAddr {
        BlockAddr::new(FpgaId::new(f), PhysicalBlockId::new(b))
    }

    #[test]
    fn claim_and_release_roundtrip() {
        let db = ResourceDatabase::new(2, 4);
        let t = TenantId::new(1);
        assert!(db.claim(t, &[addr(0, 0), addr(1, 3)]));
        assert_eq!(db.state(addr(0, 0)), Some(BlockState::Active(t)));
        assert_eq!(db.total_free(), 6);
        assert_eq!(db.holdings(t).len(), 2);
        let released = db.release(t);
        assert_eq!(released.len(), 2);
        assert_eq!(db.total_free(), 8);
    }

    #[test]
    fn claim_is_atomic() {
        let db = ResourceDatabase::new(1, 2);
        let a = TenantId::new(1);
        let b = TenantId::new(2);
        assert!(db.claim(a, &[addr(0, 1)]));
        // Second claim includes a busy block: nothing must change.
        assert!(!db.claim(b, &[addr(0, 0), addr(0, 1)]));
        assert_eq!(db.state(addr(0, 0)), Some(BlockState::Free));
        assert!(db.holdings(b).is_empty());
    }

    #[test]
    fn claim_rejects_duplicates_and_out_of_range() {
        let db = ResourceDatabase::new(1, 2);
        let t = TenantId::new(1);
        assert!(!db.claim(t, &[addr(0, 0), addr(0, 0)]));
        assert!(!db.claim(t, &[addr(5, 0)]));
        assert_eq!(db.total_free(), 2);
    }

    #[test]
    fn blocks_never_shared_between_tenants() {
        let db = ResourceDatabase::new(1, 1);
        assert!(db.claim(TenantId::new(1), &[addr(0, 0)]));
        assert!(!db.claim(TenantId::new(2), &[addr(0, 0)]));
    }

    #[test]
    fn heterogeneous_layout_is_ragged() {
        let db = ResourceDatabase::with_layout(vec![2, 5, 1]);
        assert_eq!(db.fpga_count(), 3);
        assert_eq!(db.blocks_of(1), 5);
        assert_eq!(db.total_free(), 8);
        // Out-of-range block on the small FPGA is rejected.
        assert!(!db.claim(TenantId::new(1), &[addr(2, 1)]));
        assert!(db.claim(TenantId::new(1), &[addr(2, 0), addr(1, 4)]));
        assert_eq!(db.total_free(), 6);
    }

    #[test]
    fn release_unknown_tenant_is_empty() {
        let db = ResourceDatabase::new(1, 1);
        assert!(db.release(TenantId::new(9)).is_empty());
    }

    #[test]
    fn health_gates_allocation_but_not_release() {
        let db = ResourceDatabase::new(2, 4);
        let t = TenantId::new(1);
        assert!(db.claim(t, &[addr(1, 0), addr(1, 1)]));
        assert_eq!(db.health_of(1), FpgaHealth::Online);
        db.set_health(1, FpgaHealth::Draining);
        // No new allocations on a draining device...
        assert!(db.free_blocks_of(1).is_empty());
        assert_eq!(db.free_counts(), vec![4, 0]);
        assert!(!db.claim(TenantId::new(2), &[addr(1, 2)]));
        // ...but existing holdings are intact and releasable.
        assert_eq!(db.holdings(t).len(), 2);
        assert_eq!(db.tenants_on(1), vec![t]);
        db.set_health(1, FpgaHealth::Offline);
        assert_eq!(db.release(t).len(), 2);
        // Recovery restores allocatability.
        db.set_health(1, FpgaHealth::Online);
        assert_eq!(db.free_counts(), vec![4, 4]);
        assert!(db.claim(t, &[addr(1, 3)]));
    }

    /// The per-FPGA tenant index must agree with a full scan of tenant
    /// holdings at every step of a randomized claim/release churn.
    #[test]
    fn tenant_index_matches_scan_under_churn() {
        let db = ResourceDatabase::with_layout(vec![4, 3, 5, 2]);
        let mut lcg: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as usize
        };
        let mut live: Vec<TenantId> = Vec::new();
        for step in 0..200 {
            if live.is_empty() || next() % 3 != 0 {
                // Claim 1-3 free blocks for a fresh tenant.
                let t = TenantId::new(1000 + step);
                let mut want = Vec::new();
                for f in 0..db.fpga_count() {
                    for b in db.free_blocks_of(f) {
                        if want.len() < 1 + next() % 3 && next() % 2 == 0 {
                            want.push(b);
                        }
                    }
                }
                if !want.is_empty() && db.claim(t, &want) {
                    live.push(t);
                }
            } else {
                let t = live.swap_remove(next() % live.len());
                assert!(!db.release(t).is_empty());
            }
            for f in 0..db.fpga_count() {
                assert_eq!(
                    db.tenants_on(f),
                    db.tenants_on_by_scan(f),
                    "index diverged from scan on fpga {f} at step {step}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_health_is_offline() {
        let db = ResourceDatabase::new(1, 1);
        assert_eq!(db.health_of(7), FpgaHealth::Offline);
        db.set_health(7, FpgaHealth::Online); // ignored, no panic
        assert_eq!(db.health_of(7), FpgaHealth::Offline);
    }
}
