//! ViTAL's policy adapted to the cluster simulator's [`Scheduler`] trait.

use vital_cluster::{ClusterView, Deployment, PendingRequest, ReconfigKind, Scheduler};
use vital_fabric::BlockAddr;

use crate::allocate_blocks_on;

/// The ViTAL runtime policy for the discrete-event simulator:
/// communication-aware multi-round allocation, per-block partial
/// reconfiguration, optional backfilling of later requests when the head of
/// the queue cannot be placed yet.
///
/// Backfilling carries a starvation risk: a large request at the head of
/// the queue can wait forever while a stream of small later arrivals keeps
/// grabbing every block the moment it frees. The scheduler therefore
/// *reserves* capacity for the oldest unplaceable request once it has
/// waited [`VitalScheduler::starvation_age_s`] seconds: backfill candidates
/// are only granted blocks the reservation does not need.
/// In preemptive mode ([`VitalScheduler::time_sliced`]) the policy also
/// declares a scheduling quantum: the simulator swaps a running tenant out
/// whenever its quantum expires while demand is queued. Because the runtime
/// suspends tenants through the checkpoint path (channels quiesced, DRAM
/// exported), the swap preserves all progress, and the cluster can admit
/// more tenants than physically fit — each swap-in just pays the partial-
/// reconfiguration cost again.
#[derive(Debug, Clone)]
pub struct VitalScheduler {
    backfill: bool,
    reconfig: ReconfigKind,
    starvation_age_s: f64,
    quantum_s: Option<f64>,
}

/// Default wait (seconds) before an unplaceable request earns a capacity
/// reservation against backfill.
const DEFAULT_STARVATION_AGE_S: f64 = 10.0;

impl VitalScheduler {
    /// Creates the scheduler with backfilling enabled (the default).
    pub fn new() -> Self {
        VitalScheduler {
            backfill: true,
            reconfig: ReconfigKind::PartialPerBlock,
            starvation_age_s: DEFAULT_STARVATION_AGE_S,
            quantum_s: None,
        }
    }

    /// Strict FIFO: when the head of the queue cannot be placed, later
    /// requests wait too.
    pub fn fifo() -> Self {
        VitalScheduler {
            backfill: false,
            reconfig: ReconfigKind::PartialPerBlock,
            starvation_age_s: DEFAULT_STARVATION_AGE_S,
            quantum_s: None,
        }
    }

    /// Preemptive time-sliced mode for oversubscribed clusters: identical
    /// allocation policy to [`VitalScheduler::new`] (backfill plus the
    /// starvation guard), but the policy additionally declares `quantum_s`
    /// as its scheduling quantum. The simulator then swaps a running
    /// tenant out at each quantum expiry while demand is queued; the
    /// tenant's progress is preserved (the runtime's suspend/resume path
    /// checkpoints channels and DRAM at the quiesce boundary) and every
    /// swap-in is charged the per-block partial-reconfiguration cost. A
    /// non-positive or non-finite `quantum_s` disables preemption.
    pub fn time_sliced(quantum_s: f64) -> Self {
        VitalScheduler {
            backfill: true,
            reconfig: ReconfigKind::PartialPerBlock,
            starvation_age_s: DEFAULT_STARVATION_AGE_S,
            quantum_s: Some(quantum_s).filter(|q| q.is_finite() && *q > 0.0),
        }
    }

    /// The declared time-slice quantum, if preemptive mode is enabled.
    pub fn quantum(&self) -> Option<f64> {
        self.quantum_s
    }

    /// Sets the age (seconds) at which an unplaceable request earns a
    /// capacity reservation against backfill. `f64::INFINITY` disables the
    /// guard (the pre-fix behaviour).
    #[must_use]
    pub fn with_starvation_age(mut self, age_s: f64) -> Self {
        self.starvation_age_s = age_s.max(0.0);
        self
    }

    /// The configured starvation-guard age in seconds.
    pub fn starvation_age_s(&self) -> f64 {
        self.starvation_age_s
    }

    /// Ablation variant: same allocation policy but programming the fabric
    /// with whole-device bitstreams instead of per-block partial
    /// reconfiguration — quantifies how much of ViTAL's win comes from
    /// non-disruptive deployment (DESIGN.md ablation #4).
    #[must_use]
    pub fn with_reconfig(mut self, reconfig: ReconfigKind) -> Self {
        self.reconfig = reconfig;
        self
    }

    /// Whether backfilling is enabled.
    pub fn backfills(&self) -> bool {
        self.backfill
    }
}

impl Default for VitalScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for VitalScheduler {
    fn name(&self) -> &str {
        if self.quantum_s.is_some() {
            return "vital-timeslice";
        }
        match (self.backfill, self.reconfig) {
            (true, ReconfigKind::PartialPerBlock) => "vital",
            (false, ReconfigKind::PartialPerBlock) => "vital-fifo",
            (true, ReconfigKind::FullDevice) => "vital-fullreconfig",
            (false, ReconfigKind::FullDevice) => "vital-fifo-fullreconfig",
            // The ViTAL policy never emits instruction-switch deployments
            // (that is the `vital-baselines` IsaElastic policy), but the
            // knob exists for ablations.
            (true, ReconfigKind::Instruction) => "vital-instr",
            (false, ReconfigKind::Instruction) => "vital-fifo-instr",
        }
    }

    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
        let mut free_lists: Vec<_> = (0..view.fpga_count())
            .map(|f| view.free_blocks_of(f))
            .collect();
        let mut free_total: usize = free_lists.iter().map(Vec::len).sum();
        let mut out = Vec::new();
        // Blocks promised to the oldest sufficiently-aged unplaceable
        // request. The allocator only needs block *counts*, so a
        // count-based reservation is enough to guarantee the aged request
        // goes next once capacity accrues.
        let mut reserved: usize = 0;
        for p in pending {
            let need = p.request.blocks_needed as usize;
            // Skip candidates that would eat into the reservation.
            let fits_beside_reservation = free_total >= reserved + need;
            let alloc = if fits_beside_reservation {
                allocate_blocks_on(view.topology(), &free_lists, need)
            } else {
                None
            };
            match alloc {
                Some(alloc) => {
                    // Remove the granted blocks from the local free lists so
                    // later decisions in this pass stay consistent.
                    for b in &alloc.blocks {
                        let list = &mut free_lists[b.fpga.index() as usize];
                        if let Some(pos) = list.iter().position(|x| x == b) {
                            list.swap_remove(pos);
                        }
                    }
                    free_total -= alloc.blocks.len();
                    out.push(Deployment {
                        request: p.request.id,
                        blocks: alloc.blocks,
                        reconfig: self.reconfig,
                    });
                }
                None if self.backfill => {
                    // Starvation guard: the first aged request that cannot
                    // be placed reserves its block count against backfill.
                    if reserved == 0 && view.now_s() - p.arrived_s >= self.starvation_age_s {
                        reserved = need;
                    }
                    continue;
                }
                None => break,
            }
        }
        out
    }

    fn quantum_s(&self) -> Option<f64> {
        self.quantum_s
    }
}

/// Free-block state of one pod, materialized lazily inside a scheduling
/// sweep: `free_lists[i]` holds the free blocks of `members[i]`.
struct PodState {
    members: Vec<usize>,
    free_lists: Vec<Vec<BlockAddr>>,
}

/// The pod-sharded variant of the ViTAL policy for datacenter-scale
/// topologies ([`Topology::pods`]): one scheduling sweep batches all
/// pending requests across pods, so per-request allocation cost is
/// O(pods + pod size) instead of O(cluster).
///
/// The sweep consults the thin global layer first — per-pod free-block
/// counts, one O(FPGAs) pass per call ([`ClusterView::pod_free_counts`]) —
/// then routes each request to the *best-fit pod* (smallest sufficient
/// free count, ties to the lowest pod index) and only materializes that
/// pod's per-FPGA free lists, caching them for the rest of the sweep.
/// Inside the pod the policy mirrors the single-ring allocator: best-fit
/// single FPGA, else span from the largest member outward in hop order.
///
/// Requests never span pods (a cross-pod span would ride the slow
/// uplinks); demand that fits no single pod waits, guarded against
/// starvation by the same count-based reservation as [`VitalScheduler`].
///
/// On a single-ring topology the whole cluster is one pod and the policy
/// degenerates to a plain best-fit — use [`VitalScheduler`] there; this
/// policy exists for the multi-pod scale regime.
///
/// [`Topology::pods`]: vital_cluster::Topology::pods
#[derive(Debug, Clone)]
pub struct PodScheduler {
    reconfig: ReconfigKind,
    starvation_age_s: f64,
}

impl PodScheduler {
    /// Creates the pod scheduler (per-block partial reconfiguration, the
    /// default starvation guard).
    pub fn new() -> Self {
        PodScheduler {
            reconfig: ReconfigKind::PartialPerBlock,
            starvation_age_s: DEFAULT_STARVATION_AGE_S,
        }
    }

    /// Sets the age (seconds) at which an unplaceable request earns a
    /// capacity reservation against backfill.
    #[must_use]
    pub fn with_starvation_age(mut self, age_s: f64) -> Self {
        self.starvation_age_s = age_s.max(0.0);
        self
    }
}

impl Default for PodScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for PodScheduler {
    fn name(&self) -> &str {
        "vital-pod"
    }

    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
        let topology = view.topology();
        let mut pod_free = view.pod_free_counts();
        let mut free_total: usize = pod_free.iter().sum();
        let mut pods: Vec<Option<PodState>> = (0..pod_free.len()).map(|_| None).collect();
        let mut out = Vec::new();
        let mut reserved: usize = 0;
        for p in pending {
            let need = p.request.blocks_needed as usize;
            if need == 0 {
                continue;
            }
            // Thin global layer: best-fit pod by free count, leaving the
            // starvation reservation untouched.
            let pod = if free_total >= reserved + need {
                (0..pod_free.len())
                    .filter(|&g| pod_free[g] >= need)
                    .min_by_key(|&g| (pod_free[g], g))
            } else {
                None
            };
            let Some(pod) = pod else {
                if reserved == 0 && view.now_s() - p.arrived_s >= self.starvation_age_s {
                    reserved = need;
                }
                continue;
            };
            let state = pods[pod].get_or_insert_with(|| {
                let members = topology.pod_members(pod);
                let free_lists = members.iter().map(|&f| view.free_blocks_of(f)).collect();
                PodState {
                    members,
                    free_lists,
                }
            });
            // Best-fit single FPGA within the pod.
            let single = state
                .free_lists
                .iter()
                .enumerate()
                .filter(|(_, free)| free.len() >= need)
                .min_by_key(|(i, free)| (free.len(), *i))
                .map(|(i, _)| i);
            let order: Vec<usize> = match single {
                Some(i) => vec![i],
                None => {
                    // Span inside the pod: the largest member anchors the
                    // placement, partners join nearest-first.
                    let Some(primary) = state
                        .free_lists
                        .iter()
                        .enumerate()
                        .filter(|(_, free)| !free.is_empty())
                        .max_by_key(|(i, free)| (free.len(), std::cmp::Reverse(*i)))
                        .map(|(i, _)| i)
                    else {
                        continue;
                    };
                    let anchor = vital_fabric::FpgaId::new(state.members[primary] as u32);
                    let mut rest: Vec<usize> = (0..state.members.len())
                        .filter(|&i| i != primary && !state.free_lists[i].is_empty())
                        .collect();
                    rest.sort_by_key(|&i| {
                        (
                            topology
                                .hops(anchor, vital_fabric::FpgaId::new(state.members[i] as u32)),
                            i,
                        )
                    });
                    std::iter::once(primary).chain(rest).collect()
                }
            };
            let mut blocks = Vec::with_capacity(need);
            for &i in &order {
                let list = &mut state.free_lists[i];
                let take = list.len().min(need - blocks.len());
                blocks.extend(list.drain(..take));
                if blocks.len() == need {
                    break;
                }
            }
            debug_assert_eq!(blocks.len(), need, "pod free count promised capacity");
            if blocks.len() < need {
                // The pod summary and the lists disagree (should not
                // happen); put nothing back and skip the request.
                continue;
            }
            pod_free[pod] -= need;
            free_total -= need;
            out.push(Deployment {
                request: p.request.id,
                blocks,
                reconfig: self.reconfig,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_cluster::{AppRequest, ClusterConfig, ClusterSim};

    fn workload() -> Vec<AppRequest> {
        (0..20)
            .map(|i| {
                let blocks = [1u32, 4, 7, 10][i as usize % 4];
                AppRequest::new(i, format!("app{i}"), blocks, 1.5e9).arriving_at(i as f64 * 0.2)
            })
            .collect()
    }

    #[test]
    fn all_requests_complete() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut VitalScheduler::new(), workload());
        assert_eq!(report.completed(), 20);
        assert!(report.block_utilization > 0.0);
    }

    #[test]
    fn backfill_is_no_worse_than_fifo() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let bf = sim.run(&mut VitalScheduler::new(), workload());
        let fifo = sim.run(&mut VitalScheduler::fifo(), workload());
        assert!(bf.avg_response_s() <= fifo.avg_response_s() * 1.05);
    }

    #[test]
    fn starvation_guard_bounds_large_request_wait() {
        // 2 FPGAs x 4 blocks. A whole-cluster (8-block) request arrives
        // just after the first of a long stream of 4-block jobs. Without
        // the guard, backfill re-grabs every freed FPGA for the stream and
        // the big request waits until the stream dries up; with the guard,
        // it earns a reservation after `starvation_age_s` and runs as soon
        // as the in-flight jobs drain.
        let sim = ClusterSim::heterogeneous(ClusterConfig::paper_cluster(), vec![4, 4]);
        let mut reqs: Vec<AppRequest> = (0..20)
            .map(|i| AppRequest::new(i, format!("small{i}"), 4, 2.0e9).arriving_at(i as f64))
            .collect();
        reqs.push(AppRequest::new(99, "big", 8, 2.0e9).arriving_at(0.5));

        let starved = sim.run(
            &mut VitalScheduler::new().with_starvation_age(f64::INFINITY),
            reqs.clone(),
        );
        let guarded = sim.run(&mut VitalScheduler::new().with_starvation_age(3.0), reqs);

        let wait_of = |r: &vital_cluster::SimReport| {
            r.outcomes
                .iter()
                .find(|o| o.name == "big")
                .expect("big request completes")
                .wait_s()
        };
        let starved_wait = wait_of(&starved);
        let guarded_wait = wait_of(&guarded);
        assert!(
            starved_wait > 15.0,
            "without the guard the big request should starve behind the \
             stream (waited {starved_wait:.1}s)"
        );
        assert!(
            guarded_wait < 10.0,
            "the guard should bound the wait to roughly starvation_age + \
             one service time (waited {guarded_wait:.1}s)"
        );
        // Everything still completes under the guard.
        assert_eq!(guarded.completed(), 21);
    }

    #[test]
    fn time_slice_mode_oversubscribes_the_cluster() {
        // 9 tenants x 10 blocks = 90 blocks of simultaneous demand on the
        // 60-block paper cluster: 1.5x physical capacity. The preemptive
        // mode must admit everyone by rotating tenants through the fabric,
        // complete all requests, and throw no work away (swaps preserve
        // progress via the checkpoint path).
        let reqs: Vec<AppRequest> = (0..9)
            .map(|i| AppRequest::new(i, format!("t{i}"), 10, 3.0e9))
            .collect();
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let mut policy = VitalScheduler::time_sliced(0.5);
        assert_eq!(policy.name(), "vital-timeslice");
        assert_eq!(policy.quantum(), Some(0.5));
        let sliced = sim.run(&mut policy, reqs.clone());
        let fifo = sim.run(&mut VitalScheduler::fifo(), reqs);

        assert_eq!(sliced.completed(), 9);
        assert!(sliced.preemptions > 0, "no preemptions recorded");
        assert_eq!(sliced.interrupted_jobs, 0);
        assert_eq!(sliced.wasted_block_s, 0.0);
        assert!((sliced.goodput_fraction() - 1.0).abs() < 1e-12);
        assert!(sliced.swap_reconfig_s > 0.0);
        // Time-slicing grants every tenant the fabric early: the worst
        // admission wait stays within a few quanta, while the
        // non-preemptive run makes the overflow tenants wait for a full
        // service time.
        let worst_wait = |r: &vital_cluster::SimReport| {
            r.outcomes
                .iter()
                .map(vital_cluster::RequestOutcome::wait_s)
                .fold(0.0, f64::max)
        };
        assert!(
            worst_wait(&sliced) < 2.0,
            "sliced worst wait {}",
            worst_wait(&sliced)
        );
        assert!(
            worst_wait(&fifo) > worst_wait(&sliced),
            "fifo {} vs sliced {}",
            worst_wait(&fifo),
            worst_wait(&sliced)
        );
    }

    #[test]
    fn zero_quantum_disables_preemption() {
        let policy = VitalScheduler::time_sliced(0.0);
        assert_eq!(policy.quantum(), None);
        assert_eq!(policy.name(), "vital");
    }

    /// Delegates to an inner policy while recording the FPGAs of every
    /// deployment, so tests can check placement shape after a run.
    struct RecordingScheduler<S> {
        inner: S,
        placements: Vec<Vec<usize>>,
    }

    impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
        fn name(&self) -> &str {
            self.inner.name()
        }

        fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
            let out = self.inner.schedule(view, pending);
            for d in &out {
                self.placements
                    .push(d.blocks.iter().map(|b| b.fpga.index() as usize).collect());
            }
            out
        }
    }

    #[test]
    fn pod_scheduler_completes_and_stays_inside_pods() {
        // 4 pods x 4 FPGAs x 4 blocks (64 blocks). Mixed sizes, including
        // 6-block requests that must span FPGAs inside a pod.
        let topo = vital_cluster::Topology::pods(4, 4, 100.0, 25.0);
        let sim = ClusterSim::heterogeneous(ClusterConfig::paper_cluster(), vec![4; 16])
            .with_topology(topo)
            .expect("16-FPGA layout matches the pod topology");
        let reqs: Vec<AppRequest> = (0..24)
            .map(|i| {
                let blocks = [1u32, 3, 6, 4][i as usize % 4];
                AppRequest::new(i, format!("app{i}"), blocks, 1.5e9).arriving_at(i as f64 * 0.1)
            })
            .collect();
        let mut policy = RecordingScheduler {
            inner: PodScheduler::new(),
            placements: Vec::new(),
        };
        let report = sim.run(&mut policy, reqs);
        assert_eq!(report.completed(), 24);
        assert!(report.spanning_fraction() > 0.0, "6-block requests span");
        // No placement ever crosses a pod boundary.
        let topo = vital_cluster::Topology::pods(4, 4, 100.0, 25.0);
        assert!(!policy.placements.is_empty());
        for fpgas in &policy.placements {
            let pods: std::collections::BTreeSet<usize> =
                fpgas.iter().map(|&f| topo.pod_of(f)).collect();
            assert_eq!(pods.len(), 1, "placement {fpgas:?} spans pods {pods:?}");
        }
    }

    #[test]
    fn pod_scheduler_guards_against_starvation() {
        // One pod of 2 FPGAs x 4 blocks; a whole-pod request behind a
        // stream of pod-half jobs must still run once aged.
        let topo = vital_cluster::Topology::pods(1, 2, 100.0, 25.0);
        let sim = ClusterSim::heterogeneous(ClusterConfig::paper_cluster(), vec![4, 4])
            .with_topology(topo)
            .expect("layout matches");
        let mut reqs: Vec<AppRequest> = (0..20)
            .map(|i| AppRequest::new(i, format!("small{i}"), 4, 2.0e9).arriving_at(i as f64))
            .collect();
        reqs.push(AppRequest::new(99, "big", 8, 2.0e9).arriving_at(0.5));
        let report = sim.run(&mut PodScheduler::new().with_starvation_age(3.0), reqs);
        assert_eq!(report.completed(), 21);
        let big = report
            .outcomes
            .iter()
            .find(|o| o.name == "big")
            .expect("big request completes");
        assert!(big.wait_s() < 10.0, "big waited {:.1}s", big.wait_s());
    }

    #[test]
    fn spanning_occurs_under_fragmentation() {
        // Saturate with 10-block apps (15-block FPGAs) so later requests
        // must span the leftovers.
        let reqs: Vec<AppRequest> = (0..12)
            .map(|i| AppRequest::new(i, format!("big{i}"), 10, 2.0e9).arriving_at(0.0))
            .collect();
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut VitalScheduler::new(), reqs);
        assert_eq!(report.completed(), 12);
        assert!(
            report.spanning_fraction() > 0.0,
            "expected some multi-FPGA deployments"
        );
    }
}
