//! ViTAL's policy adapted to the cluster simulator's [`Scheduler`] trait.

use vital_cluster::{ClusterView, Deployment, PendingRequest, ReconfigKind, Scheduler};

use crate::allocate_blocks;

/// The ViTAL runtime policy for the discrete-event simulator:
/// communication-aware multi-round allocation, per-block partial
/// reconfiguration, optional backfilling of later requests when the head of
/// the queue cannot be placed yet.
#[derive(Debug, Clone)]
pub struct VitalScheduler {
    backfill: bool,
    reconfig: ReconfigKind,
}

impl VitalScheduler {
    /// Creates the scheduler with backfilling enabled (the default).
    pub fn new() -> Self {
        VitalScheduler {
            backfill: true,
            reconfig: ReconfigKind::PartialPerBlock,
        }
    }

    /// Strict FIFO: when the head of the queue cannot be placed, later
    /// requests wait too.
    pub fn fifo() -> Self {
        VitalScheduler {
            backfill: false,
            reconfig: ReconfigKind::PartialPerBlock,
        }
    }

    /// Ablation variant: same allocation policy but programming the fabric
    /// with whole-device bitstreams instead of per-block partial
    /// reconfiguration — quantifies how much of ViTAL's win comes from
    /// non-disruptive deployment (DESIGN.md ablation #4).
    #[must_use]
    pub fn with_reconfig(mut self, reconfig: ReconfigKind) -> Self {
        self.reconfig = reconfig;
        self
    }

    /// Whether backfilling is enabled.
    pub fn backfills(&self) -> bool {
        self.backfill
    }
}

impl Default for VitalScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for VitalScheduler {
    fn name(&self) -> &str {
        match (self.backfill, self.reconfig) {
            (true, ReconfigKind::PartialPerBlock) => "vital",
            (false, ReconfigKind::PartialPerBlock) => "vital-fifo",
            (true, ReconfigKind::FullDevice) => "vital-fullreconfig",
            (false, ReconfigKind::FullDevice) => "vital-fifo-fullreconfig",
        }
    }

    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
        let mut free_lists: Vec<_> = (0..view.fpga_count())
            .map(|f| view.free_blocks_of(f))
            .collect();
        let mut out = Vec::new();
        for p in pending {
            match allocate_blocks(&free_lists, p.request.blocks_needed as usize) {
                Some(alloc) => {
                    // Remove the granted blocks from the local free lists so
                    // later decisions in this pass stay consistent.
                    for b in &alloc.blocks {
                        let list = &mut free_lists[b.fpga.index() as usize];
                        if let Some(pos) = list.iter().position(|x| x == b) {
                            list.swap_remove(pos);
                        }
                    }
                    out.push(Deployment {
                        request: p.request.id,
                        blocks: alloc.blocks,
                        reconfig: self.reconfig,
                    });
                }
                None if self.backfill => continue,
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_cluster::{AppRequest, ClusterConfig, ClusterSim};

    fn workload() -> Vec<AppRequest> {
        (0..20)
            .map(|i| {
                let blocks = [1u32, 4, 7, 10][i as usize % 4];
                AppRequest::new(i, format!("app{i}"), blocks, 1.5e9).arriving_at(i as f64 * 0.2)
            })
            .collect()
    }

    #[test]
    fn all_requests_complete() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut VitalScheduler::new(), workload());
        assert_eq!(report.completed(), 20);
        assert!(report.block_utilization > 0.0);
    }

    #[test]
    fn backfill_is_no_worse_than_fifo() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let bf = sim.run(&mut VitalScheduler::new(), workload());
        let fifo = sim.run(&mut VitalScheduler::fifo(), workload());
        assert!(bf.avg_response_s() <= fifo.avg_response_s() * 1.05);
    }

    #[test]
    fn spanning_occurs_under_fragmentation() {
        // Saturate with 10-block apps (15-block FPGAs) so later requests
        // must span the leftovers.
        let reqs: Vec<AppRequest> = (0..12)
            .map(|i| AppRequest::new(i, format!("big{i}"), 10, 2.0e9).arriving_at(0.0))
            .collect();
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut VitalScheduler::new(), reqs);
        assert_eq!(report.completed(), 12);
        assert!(
            report.spanning_fraction() > 0.0,
            "expected some multi-FPGA deployments"
        );
    }
}
