//! The ViTAL system layer (paper §3.4, Fig. 6): a system controller that
//! performs runtime resource management over the virtualized cluster.
//!
//! The controller owns two databases:
//!
//! * the **resource database** ([`ResourceDatabase`]) — the status of every
//!   physical block of every FPGA,
//! * the **bitstream database** ([`BitstreamDatabase`]) — the compiled,
//!   relocatable [`vital_compiler::AppBitstream`] of every application.
//!
//! Deployment uses the **communication-aware multi-round policy**
//! ([`allocate_blocks`]): round 1 looks for a single FPGA with enough free
//! blocks (best-fit, to limit fragmentation); each following round admits
//! one more FPGA, choosing the spanning set that is **adjacent on the
//! ring** — the primary plus its nearest neighbours by hop distance — so
//! inter-FPGA traffic crosses as few ring links as possible. Blocks are
//! programmed with per-block partial reconfiguration, so co-running
//! applications are never disturbed.
//!
//! Isolation (paper §3.4): a physical block is never shared between
//! applications, each tenant gets a private DRAM address space and virtual
//! NIC, and undeploy scrubs both.
//!
//! [`VitalScheduler`] adapts the same policy to the `vital-cluster`
//! discrete-event simulator for the paper's §5.5 experiments; its
//! [`VitalScheduler::time_sliced`] mode oversubscribes the cluster by
//! swapping tenants on quantum expiry.
//!
//! Context save/restore: [`SystemController::suspend`] quiesces a tenant's
//! channels, exports its DRAM, and parks a
//! [`TenantCheckpoint`] capsule; [`SystemController::resume`] re-admits it
//! losslessly, and [`SystemController::migrate_live`] chains the two so
//! `defragment`/`evacuate` move tenants without dropping state.
//!
//! # Example
//!
//! ```
//! use vital_runtime::{SystemController, RuntimeConfig};
//! use vital_compiler::{Compiler, CompilerConfig};
//! use vital_netlist::hls::{AppSpec, Operator};
//!
//! // Compile an app and register it in the bitstream database.
//! let mut spec = AppSpec::new("demo");
//! spec.add_operator("m", Operator::MacArray { pes: 8 });
//! let bitstream = Compiler::new(CompilerConfig::default())
//!     .compile(&spec)?
//!     .into_bitstream();
//!
//! let controller = SystemController::new(RuntimeConfig::paper_cluster());
//! controller.register(bitstream)?;
//! let handle = controller.deploy("demo")?;
//! assert!(handle.fpga_count() >= 1);
//! controller.undeploy(handle.tenant())?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod bitstream_db;
mod controller;
mod error;
mod farm;
mod policy;
mod resource_db;
mod scheduler;

pub use api::{
    ControlRequest, ControlResponse, DeployBackend, DeployRequest, DeploySummary,
    EvacuationSummary, FailureSummary, FpgaStatus, MigratePolicy, MigrationSummary, ScaleSummary,
    StatusSummary, SuspendSummary,
};
pub use bitstream_db::{BitstreamDatabase, CacheStats};
pub use controller::{
    AppResolver, CompileOutcome, DeployHandle, EvacuationReport, FailureReport, FailureStats,
    Migration, RuntimeConfig, SystemController,
};
pub use error::RuntimeError;
pub use farm::FarmStats;
pub use policy::{allocate_blocks, allocate_blocks_on, AllocationOutcome};
pub use resource_db::{BlockState, FpgaHealth, ResourceDatabase};
pub use scheduler::{PodScheduler, VitalScheduler};
// The checkpoint capsule types appear in the controller's public API;
// re-export them so downstream users don't need a direct
// `vital-checkpoint` dependency.
pub use vital_checkpoint::{
    quiesce_all, ChannelCheckpoint, CheckpointDigest, PlacementMeta, PortableChannel,
    PortableCheckpoint, ScanState, TenantCheckpoint,
};
