//! The build-farm layer behind the compile cache (DESIGN.md §14).
//!
//! Three mechanisms turn the content-addressed [`BitstreamDatabase`]
//! into a build farm the control plane can lean on:
//!
//! * **Single-flight dedupe** ([`SingleFlight`]): concurrent compiles of
//!   the same key (netlist digest, or app name for resolver-driven
//!   prepares) elect one leader; everyone else blocks until the leader
//!   publishes, then serves the result from the cache. N identical
//!   requests cost one place-and-route.
//! * **Persistence**: the bitstream database is loaded from a JSON file
//!   at startup and re-saved (atomically, via a temp file + rename) after
//!   every mutation, so a restarted `vitald` serves warm-cache deploys
//!   with zero P&R.
//! * **Demand profile** ([`DemandProfile`]): an exponentially decayed
//!   per-app deploy counter that ranks which footprints the speculative
//!   compile hook should pre-compile next.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use vital_interface::FormatVersion;

use crate::RuntimeError;

/// Monotonic counters of the build-farm layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Full compiles actually executed (cache misses that led a flight).
    pub compiles: u64,
    /// Requests that blocked on another request's in-flight compile
    /// instead of compiling themselves.
    pub single_flight_waits: u64,
    /// Compiles triggered by [`speculate`](crate::SystemController::speculate_compile)
    /// rather than demand.
    pub speculative_compiles: u64,
    /// Successful bitstream-database saves to the persistence path.
    pub persist_saves: u64,
    /// Failed (and skipped) save attempts; saving is best-effort and
    /// never fails the triggering operation.
    pub persist_errors: u64,
    /// Entries loaded from the persistence path at startup.
    pub persist_loaded: u64,
    /// Demand-profile entries restored from the sidecar file at startup.
    pub demand_loaded: u64,
    /// Successful demand-profile saves to the sidecar file.
    pub demand_saves: u64,
}

/// Atomic backing store for [`FarmStats`].
#[derive(Debug, Default)]
pub(crate) struct FarmCounters {
    pub(crate) compiles: AtomicU64,
    pub(crate) single_flight_waits: AtomicU64,
    pub(crate) speculative_compiles: AtomicU64,
    pub(crate) persist_saves: AtomicU64,
    pub(crate) persist_errors: AtomicU64,
    pub(crate) persist_loaded: AtomicU64,
    pub(crate) demand_loaded: AtomicU64,
    pub(crate) demand_saves: AtomicU64,
}

impl FarmCounters {
    pub(crate) fn snapshot(&self) -> FarmStats {
        FarmStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            single_flight_waits: self.single_flight_waits.load(Ordering::Relaxed),
            speculative_compiles: self.speculative_compiles.load(Ordering::Relaxed),
            persist_saves: self.persist_saves.load(Ordering::Relaxed),
            persist_errors: self.persist_errors.load(Ordering::Relaxed),
            persist_loaded: self.persist_loaded.load(Ordering::Relaxed),
            demand_loaded: self.demand_loaded.load(Ordering::Relaxed),
            demand_saves: self.demand_saves.load(Ordering::Relaxed),
        }
    }
}

/// What a finished flight left behind for its followers.
#[derive(Debug, Clone)]
pub(crate) enum FlightResult {
    /// The leader finished; `Ok` means the cache now holds the artifact.
    Done(Result<(), RuntimeError>),
    /// The leader panicked (or otherwise unwound) before publishing.
    /// Followers retry — the next one through elects itself leader.
    Aborted,
}

/// One in-flight compilation: a rendezvous the followers block on.
#[derive(Debug)]
pub(crate) struct Flight {
    state: Mutex<Option<FlightResult>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, result: FlightResult) {
        let mut state = self.state.lock().expect("flight mutex poisoned");
        *state = Some(result);
        self.done.notify_all();
    }

    pub(crate) fn wait(&self) -> FlightResult {
        let mut state = self.state.lock().expect("flight mutex poisoned");
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self.done.wait(state).expect("flight mutex poisoned");
        }
    }
}

/// Single-flight table: concurrent callers of the same key share one
/// in-flight execution.
#[derive(Debug)]
pub(crate) struct SingleFlight<K> {
    inflight: Mutex<HashMap<K, Arc<Flight>>>,
}

impl<K: Eq + Hash + Clone> Default for SingleFlight<K> {
    fn default() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

/// The caller's role in a flight (see [`SingleFlight::join`]).
pub(crate) enum FlightRole<'a, K: Eq + Hash + Clone> {
    /// This caller leads: it must execute the work and publish through the
    /// guard. Dropping the guard without publishing marks the flight
    /// aborted, so followers never hang on a panicked leader.
    Leader(LeaderGuard<'a, K>),
    /// Another caller is already executing; wait on the handle.
    Follower(Arc<Flight>),
}

impl<K: Eq + Hash + Clone> SingleFlight<K> {
    /// Joins the flight for `key`: the first caller in becomes the leader,
    /// everyone else a follower of that leader's flight.
    pub(crate) fn join(&self, key: K) -> FlightRole<'_, K> {
        let mut inflight = self.inflight.lock().expect("singleflight mutex poisoned");
        if let Some(flight) = inflight.get(&key) {
            return FlightRole::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        inflight.insert(key.clone(), Arc::clone(&flight));
        FlightRole::Leader(LeaderGuard {
            table: self,
            key,
            flight,
            published: false,
        })
    }
}

/// Leadership of one flight; publishes the outcome exactly once and
/// retires the flight from the table.
pub(crate) struct LeaderGuard<'a, K: Eq + Hash + Clone> {
    table: &'a SingleFlight<K>,
    key: K,
    flight: Arc<Flight>,
    published: bool,
}

impl<K: Eq + Hash + Clone> LeaderGuard<'_, K> {
    /// Publishes the leader's result to every follower and removes the
    /// flight, so later callers start fresh (re-probing the cache first).
    pub(crate) fn publish(mut self, result: Result<(), RuntimeError>) {
        self.finish(FlightResult::Done(result));
    }

    fn finish(&mut self, result: FlightResult) {
        if self.published {
            return;
        }
        self.published = true;
        self.table
            .inflight
            .lock()
            .expect("singleflight mutex poisoned")
            .remove(&self.key);
        self.flight.publish(result);
    }
}

impl<K: Eq + Hash + Clone> Drop for LeaderGuard<'_, K> {
    fn drop(&mut self) {
        // Reached only when the leader unwound before publishing.
        self.finish(FlightResult::Aborted);
    }
}

/// How many demand events accumulate before every count is halved. The
/// decay keeps the ranking biased toward *recent* demand: an app that was
/// hot yesterday but idle today loses its slot to today's traffic.
const DECAY_EVERY_EVENTS: u64 = 1024;

/// Exponentially decayed per-application demand counter.
#[derive(Debug, Default)]
pub(crate) struct DemandProfile {
    inner: Mutex<DemandInner>,
}

#[derive(Debug, Default)]
struct DemandInner {
    counts: HashMap<String, u64>,
    events: u64,
    /// Monotonic total of `record` calls — unlike `events`, never reset
    /// by decay, so periodic persistence triggers at a steady cadence.
    recorded: u64,
}

/// Serializable image of the demand profile. `BTreeMap` keeps the JSON
/// byte-deterministic for a given state, so repeated saves of an unchanged
/// profile write identical files. The sidecar carries the same
/// [`FormatVersion`] header as the bitstream database; the loader checks
/// it before restoring.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub(crate) struct DemandSnapshot {
    pub(crate) format_version: FormatVersion,
    pub(crate) counts: BTreeMap<String, u64>,
    pub(crate) events: u64,
}

impl DemandProfile {
    /// How many `record` calls elapse between periodic demand-profile
    /// saves when persistence is armed.
    pub(crate) const PERSIST_EVERY_RECORDS: u64 = 64;

    /// Records one demand event (a deploy or prepare) for `app`. Returns
    /// `true` every [`DemandProfile::PERSIST_EVERY_RECORDS`] calls — the
    /// caller's cue to persist the profile if a sidecar path is armed.
    pub(crate) fn record(&self, app: &str) -> bool {
        let mut inner = self.inner.lock().expect("demand mutex poisoned");
        *inner.counts.entry(app.to_string()).or_insert(0) += 1;
        inner.events += 1;
        inner.recorded += 1;
        if inner.events >= DECAY_EVERY_EVENTS {
            inner.counts.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
            inner.events = inner.counts.values().sum();
        }
        inner.recorded.is_multiple_of(Self::PERSIST_EVERY_RECORDS)
    }

    /// A serializable copy of the current profile.
    pub(crate) fn snapshot(&self) -> DemandSnapshot {
        let inner = self.inner.lock().expect("demand mutex poisoned");
        DemandSnapshot {
            format_version: FormatVersion::CURRENT,
            counts: inner.counts.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            events: inner.events,
        }
    }

    /// Replaces the profile with a previously saved snapshot (warm
    /// restart). Returns the number of apps restored.
    pub(crate) fn restore(&self, snapshot: DemandSnapshot) -> usize {
        let mut inner = self.inner.lock().expect("demand mutex poisoned");
        let apps = snapshot.counts.len();
        inner.counts = snapshot.counts.into_iter().collect();
        inner.events = snapshot.events;
        inner.recorded = 0;
        apps
    }

    /// The `limit` most-demanded apps for which `keep` returns true,
    /// highest count first (ties broken by name, so the ranking is
    /// deterministic).
    pub(crate) fn top(&self, limit: usize, mut keep: impl FnMut(&str) -> bool) -> Vec<String> {
        let inner = self.inner.lock().expect("demand mutex poisoned");
        let mut ranked: Vec<(&String, u64)> = inner
            .counts
            .iter()
            .filter(|(name, _)| keep(name))
            .map(|(name, &count)| (name, count))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        ranked
            .into_iter()
            .take(limit)
            .map(|(name, _)| name.clone())
            .collect()
    }
}

/// The controller-side state of the build farm: the single-flight tables,
/// the demand profile, the persistence path, and the stat counters.
#[derive(Debug, Default)]
pub(crate) struct BuildFarm {
    /// Digest-keyed flights for [`register_compiled`]
    /// (`crate::SystemController::register_compiled`).
    pub(crate) by_digest: SingleFlight<vital_compiler::NetlistDigest>,
    /// Name-keyed flights for resolver-driven prepares.
    pub(crate) by_name: SingleFlight<String>,
    pub(crate) demand: DemandProfile,
    pub(crate) counters: FarmCounters,
    /// Where the bitstream database is saved after every mutation; `None`
    /// disables persistence.
    pub(crate) persist_path: Option<PathBuf>,
    /// Serializes saves to `persist_path`. Held across snapshot + temp
    /// write + rename, so overlapping saves from concurrent mutators can
    /// neither tear the temp file nor rename an older snapshot over a
    /// newer one.
    pub(crate) persist_lock: Mutex<()>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_flight_elects_one_leader() {
        let sf: SingleFlight<u64> = SingleFlight::default();
        let FlightRole::Leader(leader) = sf.join(7) else {
            panic!("first caller must lead");
        };
        let FlightRole::Follower(follower) = sf.join(7) else {
            panic!("second caller must follow");
        };
        leader.publish(Ok(()));
        assert!(matches!(follower.wait(), FlightResult::Done(Ok(()))));
        // The flight retired: the next caller leads a fresh one.
        assert!(matches!(sf.join(7), FlightRole::Leader(_)));
    }

    #[test]
    fn dropped_leader_marks_flight_aborted() {
        let sf: SingleFlight<u64> = SingleFlight::default();
        let FlightRole::Leader(leader) = sf.join(1) else {
            panic!("first caller must lead");
        };
        let FlightRole::Follower(follower) = sf.join(1) else {
            panic!("second caller must follow");
        };
        drop(leader);
        assert!(matches!(follower.wait(), FlightResult::Aborted));
        assert!(matches!(sf.join(1), FlightRole::Leader(_)));
    }

    #[test]
    fn followers_unblock_across_threads() {
        let sf = Arc::new(SingleFlight::<u64>::default());
        let FlightRole::Leader(leader) = sf.join(3) else {
            panic!("first caller must lead");
        };
        let woken = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let woken = Arc::clone(&woken);
                std::thread::spawn(move || {
                    if let FlightRole::Follower(f) = sf.join(3) {
                        f.wait();
                        woken.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // Give the followers a moment to block, then publish.
        std::thread::sleep(std::time::Duration::from_millis(10));
        leader.publish(Err(RuntimeError::UnknownApp("x".into())));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn demand_profile_ranks_and_decays() {
        let d = DemandProfile::default();
        for _ in 0..5 {
            d.record("hot");
        }
        for _ in 0..2 {
            d.record("warm");
        }
        d.record("cold");
        assert_eq!(d.top(2, |_| true), vec!["hot", "warm"]);
        assert_eq!(d.top(10, |name| name != "hot"), vec!["warm", "cold"]);
        // Push past the decay threshold; "cold" (count 1) halves to zero
        // and drops out, the newly hot app leads.
        for _ in 0..DECAY_EVERY_EVENTS {
            d.record("new-hot");
        }
        let top = d.top(10, |_| true);
        assert_eq!(top.first().map(String::as_str), Some("new-hot"));
        assert!(!top.iter().any(|n| n == "cold"));
    }

    #[test]
    fn demand_snapshot_roundtrips_and_record_signals_persistence() {
        let d = DemandProfile::default();
        let mut signals = 0;
        for i in 0..(2 * DemandProfile::PERSIST_EVERY_RECORDS) {
            if d.record(if i % 2 == 0 { "a" } else { "b" }) {
                signals += 1;
            }
        }
        assert_eq!(signals, 2, "one signal per PERSIST_EVERY_RECORDS calls");
        let snap = d.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: DemandSnapshot = serde_json::from_str(&json).unwrap();
        let restored = DemandProfile::default();
        assert_eq!(restored.restore(back), 2);
        assert_eq!(restored.top(2, |_| true), d.top(2, |_| true));
        assert_eq!(restored.snapshot().events, snap.events);
    }

    #[test]
    fn ties_rank_by_name() {
        let d = DemandProfile::default();
        d.record("b");
        d.record("a");
        assert_eq!(d.top(2, |_| true), vec!["a", "b"]);
    }
}
