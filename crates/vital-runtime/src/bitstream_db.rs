//! The bitstream database: compiled, relocatable application images
//! (paper Fig. 6).

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;
use vital_compiler::AppBitstream;

use crate::RuntimeError;

/// Thread-safe store of compiled applications, keyed by name.
///
/// Because ViTAL decouples compilation from resource allocation, one entry
/// per application suffices: the same image deploys to *any* set of free
/// physical blocks. (Contrast with AmorphOS's high-throughput mode, which
/// must store an image per application *combination*.)
pub struct BitstreamDatabase {
    entries: RwLock<HashMap<String, AppBitstream>>,
}

impl fmt::Debug for BitstreamDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitstreamDatabase")
            .field("entries", &self.entries.read().len())
            .finish()
    }
}

impl Default for BitstreamDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl BitstreamDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        BitstreamDatabase {
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// Registers a compiled application.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::AppExists`] if the name is taken.
    pub fn insert(&self, bitstream: AppBitstream) -> Result<(), RuntimeError> {
        let mut entries = self.entries.write();
        let name = bitstream.name().to_string();
        if entries.contains_key(&name) {
            return Err(RuntimeError::AppExists(name));
        }
        entries.insert(name, bitstream);
        Ok(())
    }

    /// Replaces (or inserts) an application image; returns the old image.
    pub fn replace(&self, bitstream: AppBitstream) -> Option<AppBitstream> {
        self.entries
            .write()
            .insert(bitstream.name().to_string(), bitstream)
    }

    /// Fetches a clone of an application's image.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownApp`] if not registered.
    pub fn get(&self, name: &str) -> Result<AppBitstream, RuntimeError> {
        self.entries
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownApp(name.to_string()))
    }

    /// Removes an application's image.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownApp`] if not registered.
    pub fn remove(&self, name: &str) -> Result<AppBitstream, RuntimeError> {
        self.entries
            .write()
            .remove(name)
            .ok_or_else(|| RuntimeError::UnknownApp(name.to_string()))
    }

    /// Registered application names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// `true` if no applications are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Serializes the whole database to JSON (for inspection or persistence).
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(&*self.entries.read())
    }

    /// Restores a database from [`BitstreamDatabase::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let entries: HashMap<String, AppBitstream> = serde_json::from_str(json)?;
        Ok(BitstreamDatabase {
            entries: RwLock::new(entries),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_compiler::{Compiler, CompilerConfig};
    use vital_netlist::hls::{AppSpec, Operator};

    fn bitstream(name: &str) -> AppBitstream {
        let mut spec = AppSpec::new(name);
        spec.add_operator("m", Operator::MacArray { pes: 4 });
        Compiler::new(CompilerConfig::default())
            .compile(&spec)
            .unwrap()
            .into_bitstream()
    }

    #[test]
    fn insert_get_remove() {
        let db = BitstreamDatabase::new();
        assert!(db.is_empty());
        db.insert(bitstream("a")).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("a").unwrap().name(), "a");
        assert!(matches!(
            db.insert(bitstream("a")),
            Err(RuntimeError::AppExists(_))
        ));
        db.remove("a").unwrap();
        assert!(matches!(db.get("a"), Err(RuntimeError::UnknownApp(_))));
    }

    #[test]
    fn replace_returns_old() {
        let db = BitstreamDatabase::new();
        assert!(db.replace(bitstream("a")).is_none());
        assert!(db.replace(bitstream("a")).is_some());
    }

    #[test]
    fn json_roundtrip() {
        let db = BitstreamDatabase::new();
        db.insert(bitstream("a")).unwrap();
        db.insert(bitstream("b")).unwrap();
        let json = db.to_json().unwrap();
        let back = BitstreamDatabase::from_json(&json).unwrap();
        assert_eq!(back.names(), vec!["a", "b"]);
        assert_eq!(
            back.get("a").unwrap().block_count(),
            db.get("a").unwrap().block_count()
        );
    }
}
