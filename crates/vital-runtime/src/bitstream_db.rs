//! The bitstream database: compiled, relocatable application images
//! (paper Fig. 6), doubling as a content-addressed compile cache.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use vital_compiler::{AppBitstream, NetlistDigest};
use vital_interface::FormatVersion;

use crate::RuntimeError;

/// On-disk envelope of the persisted database: the entry map wrapped in
/// a [`FormatVersion`] header, so a daemon refuses (instead of
/// misreading) files written by an incompatible build. The demand
/// sidecar carries the same header (DESIGN.md §17).
#[derive(Serialize, Deserialize)]
struct PersistEnvelope {
    format_version: FormatVersion,
    apps: HashMap<String, AppBitstream>,
}

/// Hit/miss counters of the content-addressed compile cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Digest probes that found an already-compiled image.
    pub hits: u64,
    /// Digest probes that found nothing (a full compile followed).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of probes served from the cache (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Name and digest indices, kept consistent under one lock.
struct Inner {
    by_name: HashMap<String, AppBitstream>,
    /// Digest → name of a registered bitstream carrying that digest.
    by_digest: HashMap<NetlistDigest, String>,
}

impl Inner {
    /// Re-derives the digest index after bulk edits (deserialization,
    /// removals). First name in sorted order wins, so the index is
    /// deterministic.
    fn rebuild_digest_index(&mut self) {
        self.by_digest.clear();
        let mut names: Vec<&String> = self.by_name.keys().collect();
        names.sort();
        for name in names {
            let digest = self.by_name[name].digest();
            self.by_digest.entry(digest).or_insert_with(|| name.clone());
        }
    }
}

/// Thread-safe store of compiled applications, keyed by name.
///
/// Because ViTAL decouples compilation from resource allocation, one entry
/// per application suffices: the same image deploys to *any* set of free
/// physical blocks. (Contrast with AmorphOS's high-throughput mode, which
/// must store an image per application *combination*.)
///
/// Entries are additionally indexed by their [`NetlistDigest`], making the
/// database a compile cache: [`get_by_digest`](Self::get_by_digest) answers
/// "has this exact netlist + configuration been compiled before?" so the
/// system controller can skip place-and-route entirely on repeat deploys.
pub struct BitstreamDatabase {
    inner: RwLock<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for BitstreamDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitstreamDatabase")
            .field("entries", &self.inner.read().by_name.len())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

impl Default for BitstreamDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl BitstreamDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        BitstreamDatabase {
            inner: RwLock::new(Inner {
                by_name: HashMap::new(),
                by_digest: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Registers a compiled application.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::AppExists`] if the name is taken.
    pub fn insert(&self, bitstream: AppBitstream) -> Result<(), RuntimeError> {
        let mut inner = self.inner.write();
        let name = bitstream.name().to_string();
        if inner.by_name.contains_key(&name) {
            return Err(RuntimeError::AppExists(name));
        }
        inner
            .by_digest
            .entry(bitstream.digest())
            .or_insert_with(|| name.clone());
        inner.by_name.insert(name, bitstream);
        Ok(())
    }

    /// Idempotent registration: inserting a bitstream whose name is already
    /// taken by a **byte-identical** image succeeds and returns the stored
    /// entry, so replaying a deploy script is harmless. Only a *conflicting*
    /// image under the same name is an error.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::AppExists`] if the name is taken by a
    /// different image.
    pub fn insert_or_get(&self, bitstream: AppBitstream) -> Result<AppBitstream, RuntimeError> {
        let mut inner = self.inner.write();
        let name = bitstream.name().to_string();
        if let Some(existing) = inner.by_name.get(&name) {
            if *existing == bitstream {
                return Ok(existing.clone());
            }
            return Err(RuntimeError::AppExists(name));
        }
        inner
            .by_digest
            .entry(bitstream.digest())
            .or_insert_with(|| name.clone());
        inner.by_name.insert(name, bitstream.clone());
        Ok(bitstream)
    }

    /// Replaces (or inserts) an application image; returns the old image.
    pub fn replace(&self, bitstream: AppBitstream) -> Option<AppBitstream> {
        let mut inner = self.inner.write();
        let old = inner
            .by_name
            .insert(bitstream.name().to_string(), bitstream);
        inner.rebuild_digest_index();
        old
    }

    /// Fetches a clone of an application's image.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownApp`] if not registered.
    pub fn get(&self, name: &str) -> Result<AppBitstream, RuntimeError> {
        self.inner
            .read()
            .by_name
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownApp(name.to_string()))
    }

    /// Probes the compile cache: a registered image whose compile input had
    /// this digest, whatever name it was registered under. Counts a cache
    /// hit or miss (see [`cache_stats`](Self::cache_stats)).
    pub fn get_by_digest(&self, digest: NetlistDigest) -> Option<AppBitstream> {
        let inner = self.inner.read();
        let found = inner
            .by_digest
            .get(&digest)
            .and_then(|name| inner.by_name.get(name))
            .cloned();
        match found {
            Some(bs) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bs)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Digest probe that leaves the hit/miss counters untouched. The
    /// single-flight leader uses this to re-check the cache after winning
    /// the election (a previous leader may have published between the
    /// caller's probe and its join) without double-counting the probe.
    pub fn contains_digest(&self, digest: NetlistDigest) -> bool {
        self.inner.read().by_digest.contains_key(&digest)
    }

    /// Hit/miss counters accumulated by [`get_by_digest`](Self::get_by_digest).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Removes an application's image.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownApp`] if not registered.
    pub fn remove(&self, name: &str) -> Result<AppBitstream, RuntimeError> {
        let mut inner = self.inner.write();
        let removed = inner
            .by_name
            .remove(name)
            .ok_or_else(|| RuntimeError::UnknownApp(name.to_string()))?;
        // Another entry may share the digest; re-derive the index rather
        // than leaving it pointing at the removed name.
        inner.rebuild_digest_index();
        Ok(removed)
    }

    /// Registered application names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().by_name.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.inner.read().by_name.len()
    }

    /// `true` if no applications are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().by_name.is_empty()
    }

    /// Serializes the whole database to versioned JSON (for inspection or
    /// persistence).
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(&PersistEnvelope {
            format_version: FormatVersion::CURRENT,
            apps: self.inner.read().by_name.clone(),
        })
    }

    /// Restores a database from [`BitstreamDatabase::to_json`] output,
    /// checking the envelope's format version first. The digest index is
    /// rebuilt; cache counters start at zero.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on malformed input or a format
    /// version this build does not read; the controller wraps it in
    /// [`RuntimeError::InvalidConfig`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        let envelope: PersistEnvelope = serde_json::from_str(json)
            .map_err(|e| format!("bitstream database is corrupt: {e}"))?;
        envelope.format_version.check("bitstream database")?;
        let mut inner = Inner {
            by_name: envelope.apps,
            by_digest: HashMap::new(),
        };
        inner.rebuild_digest_index();
        Ok(BitstreamDatabase {
            inner: RwLock::new(inner),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_compiler::{Compiler, CompilerConfig};
    use vital_netlist::hls::{AppSpec, Operator};

    fn bitstream_sized(name: &str, pes: u32) -> AppBitstream {
        let mut spec = AppSpec::new(name);
        spec.add_operator("m", Operator::MacArray { pes });
        Compiler::new(CompilerConfig::default())
            .compile(&spec)
            .unwrap()
            .into_bitstream()
    }

    fn bitstream(name: &str) -> AppBitstream {
        bitstream_sized(name, 4)
    }

    #[test]
    fn insert_get_remove() {
        let db = BitstreamDatabase::new();
        assert!(db.is_empty());
        db.insert(bitstream("a")).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("a").unwrap().name(), "a");
        assert!(matches!(
            db.insert(bitstream("a")),
            Err(RuntimeError::AppExists(_))
        ));
        db.remove("a").unwrap();
        assert!(matches!(db.get("a"), Err(RuntimeError::UnknownApp(_))));
    }

    #[test]
    fn replace_returns_old() {
        let db = BitstreamDatabase::new();
        assert!(db.replace(bitstream("a")).is_none());
        assert!(db.replace(bitstream("a")).is_some());
    }

    #[test]
    fn insert_or_get_is_idempotent_for_identical_images() {
        let db = BitstreamDatabase::new();
        let bs = bitstream("a");
        let stored = db.insert_or_get(bs.clone()).unwrap();
        assert_eq!(stored, bs);
        // Replaying the exact same registration is a no-op, not an error.
        let again = db.insert_or_get(bs.clone()).unwrap();
        assert_eq!(again, bs);
        assert_eq!(db.len(), 1);
        // A *different* image under the same name still conflicts.
        let conflicting = bitstream_sized("a", 16);
        assert!(matches!(
            db.insert_or_get(conflicting),
            Err(RuntimeError::AppExists(_))
        ));
    }

    #[test]
    fn digest_lookup_hits_across_names_and_counts() {
        let db = BitstreamDatabase::new();
        let a = bitstream("a");
        let digest = a.digest();
        assert!(db.get_by_digest(digest).is_none()); // miss on empty
        db.insert(a).unwrap();
        // Same netlist registered under another name shares the digest.
        db.insert(bitstream("b").renamed("b2")).unwrap();
        let hit = db.get_by_digest(digest).expect("digest is registered");
        assert_eq!(hit.digest(), digest);
        let stats = db.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn remove_repoints_digest_index_to_surviving_entry() {
        let db = BitstreamDatabase::new();
        let a = bitstream("a");
        let digest = a.digest();
        db.insert(a.clone()).unwrap();
        db.insert(a.renamed("copy")).unwrap();
        db.remove("a").unwrap();
        let hit = db.get_by_digest(digest).expect("copy still carries it");
        assert_eq!(hit.name(), "copy");
        db.remove("copy").unwrap();
        assert!(db.get_by_digest(digest).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let db = BitstreamDatabase::new();
        db.insert(bitstream("a")).unwrap();
        db.insert(bitstream("b")).unwrap();
        let json = db.to_json().unwrap();
        let back = BitstreamDatabase::from_json(&json).unwrap();
        assert_eq!(back.names(), vec!["a", "b"]);
        assert_eq!(
            back.get("a").unwrap().block_count(),
            db.get("a").unwrap().block_count()
        );
        // The digest index survives the roundtrip.
        let digest = db.get("a").unwrap().digest();
        assert!(back.get_by_digest(digest).is_some());
    }

    #[test]
    fn json_carries_the_format_version() {
        let db = BitstreamDatabase::new();
        db.insert(bitstream("a")).unwrap();
        let json = db.to_json().unwrap();
        assert!(json.contains("\"format_version\":1"));
    }

    #[test]
    fn from_json_refuses_corrupt_and_wrong_version_input() {
        let err = BitstreamDatabase::from_json("{not json").unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        // A future version must be refused, not misread.
        let future = "{\"format_version\":99,\"apps\":{}}";
        let err = BitstreamDatabase::from_json(future).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        // The pre-versioning layout (a bare entry map) has no header and
        // reads as corrupt.
        let err = BitstreamDatabase::from_json("{}").unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
    }
}
