//! The system controller: ViTAL's API surface toward the higher-level
//! cloud stack (hypervisor), paper Fig. 6.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use std::collections::HashMap;
use vital_compiler::{
    AppBitstream, Compiler, NetlistDigest, PlacedBitstream, RelocationTarget, StageTimings,
    BLOCK_CONFIG_BITS,
};
use vital_netlist::hls::AppSpec;
use vital_periph::{BandwidthArbiter, MemoryManager, TenantId, VirtualNic, VirtualSwitch};

use crate::{allocate_blocks, BitstreamDatabase, ResourceDatabase, RuntimeError};

/// Configuration of the runtime: cluster shape plus peripheral capacities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// FPGAs in the cluster.
    pub fpgas: usize,
    /// Physical blocks per FPGA.
    pub blocks_per_fpga: usize,
    /// Board DRAM per FPGA in bytes.
    pub dram_bytes_per_fpga: u64,
    /// DRAM page size in bytes.
    pub dram_page_bytes: u64,
    /// DRAM channel bandwidth per FPGA in Gb/s.
    pub dram_gbps: f64,
    /// Default DRAM quota granted per deployment, in bytes.
    pub default_quota_bytes: u64,
    /// ICAP throughput used to model partial-reconfiguration time, in Gb/s.
    pub icap_gbps: f64,
}

impl RuntimeConfig {
    /// The paper's platform: 4 FPGAs × 15 blocks; two DIMM sites of up to
    /// 128 GB each per board (§5.2) — modelled as 64 GiB of usable DRAM.
    pub fn paper_cluster() -> Self {
        RuntimeConfig {
            fpgas: 4,
            blocks_per_fpga: 15,
            dram_bytes_per_fpga: 64 << 30,
            dram_page_bytes: 2 << 20,
            dram_gbps: 153.6, // DDR4-2400 x72, two channels
            default_quota_bytes: 1 << 30,
            icap_gbps: 6.4,
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

/// A live deployment returned by [`SystemController::deploy`].
#[derive(Debug, Clone)]
pub struct DeployHandle {
    tenant: TenantId,
    placed: PlacedBitstream,
    nic: VirtualNic,
    primary_fpga: usize,
    reconfig: Duration,
}

impl DeployHandle {
    /// The tenant id owning this deployment.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The bound bitstream (which physical blocks are used).
    pub fn placed(&self) -> &PlacedBitstream {
        &self.placed
    }

    /// The tenant's virtual NIC.
    pub fn nic(&self) -> VirtualNic {
        self.nic
    }

    /// The FPGA hosting the majority of the blocks (and the tenant's DRAM).
    pub fn primary_fpga(&self) -> usize {
        self.primary_fpga
    }

    /// Distinct FPGAs the deployment spans.
    pub fn fpga_count(&self) -> usize {
        self.placed.fpga_count()
    }

    /// Modelled partial-reconfiguration time for this deployment.
    pub fn reconfig_duration(&self) -> Duration {
        self.reconfig
    }
}

/// What [`SystemController::register_compiled`] did for a spec.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// Content digest of the spec's compile input.
    pub digest: NetlistDigest,
    /// `true` if a cached image was reused and no place-and-route ran.
    pub cache_hit: bool,
    /// Stage timings of the compile that ran; `None` on a cache hit.
    pub timings: Option<StageTimings>,
}

struct TenantState {
    handle: DeployHandle,
}

/// The ViTAL system controller.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct SystemController {
    config: RuntimeConfig,
    resources: ResourceDatabase,
    bitstreams: BitstreamDatabase,
    memory: Vec<MemoryManager>,
    arbiters: Vec<BandwidthArbiter>,
    switch: VirtualSwitch,
    tenants: Mutex<HashMap<TenantId, TenantState>>,
    next_tenant: AtomicU64,
}

impl fmt::Debug for SystemController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemController")
            .field("config", &self.config)
            .field("registered_apps", &self.bitstreams.len())
            .field("live_tenants", &self.tenants.lock().len())
            .finish()
    }
}

impl SystemController {
    /// Creates a controller over an idle homogeneous cluster.
    pub fn new(config: RuntimeConfig) -> Self {
        let layout = vec![config.blocks_per_fpga; config.fpgas];
        Self::with_layout(config, layout)
    }

    /// Creates a controller over a *heterogeneous* cluster: one entry per
    /// FPGA giving its block count. Because every block is identical, the
    /// same relocatable bitstreams deploy across mixed devices (paper §7).
    ///
    /// # Panics
    ///
    /// Panics if `layout` is empty or contains a zero.
    pub fn with_layout(config: RuntimeConfig, layout: Vec<usize>) -> Self {
        let fpgas = layout.len();
        SystemController {
            resources: ResourceDatabase::with_layout(layout),
            bitstreams: BitstreamDatabase::new(),
            memory: (0..fpgas)
                .map(|_| MemoryManager::new(config.dram_bytes_per_fpga, config.dram_page_bytes))
                .collect(),
            arbiters: (0..fpgas)
                .map(|_| BandwidthArbiter::new(config.dram_gbps))
                .collect(),
            switch: VirtualSwitch::new(),
            tenants: Mutex::new(HashMap::new()),
            next_tenant: AtomicU64::new(1),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The resource database (read access for monitoring).
    pub fn resources(&self) -> &ResourceDatabase {
        &self.resources
    }

    /// The bitstream database.
    pub fn bitstreams(&self) -> &BitstreamDatabase {
        &self.bitstreams
    }

    /// The DRAM manager of one FPGA.
    ///
    /// # Panics
    ///
    /// Panics if `fpga` is out of range.
    pub fn memory_of(&self, fpga: usize) -> &MemoryManager {
        &self.memory[fpga]
    }

    /// The DRAM bandwidth arbiter of one FPGA.
    ///
    /// # Panics
    ///
    /// Panics if `fpga` is out of range.
    pub fn arbiter_of(&self, fpga: usize) -> &BandwidthArbiter {
        &self.arbiters[fpga]
    }

    /// The cluster's virtual Ethernet switch.
    pub fn switch(&self) -> &VirtualSwitch {
        &self.switch
    }

    /// Registers a compiled application in the bitstream database.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::AppExists`] if the name is already taken.
    pub fn register(&self, bitstream: AppBitstream) -> Result<(), RuntimeError> {
        self.bitstreams.insert(bitstream)
    }

    /// Compiles and registers `spec` under its name — unless a registered
    /// bitstream already carries the same content digest, in which case the
    /// cached images are reused verbatim and **no place-and-route runs**
    /// (only the cheap synthesis needed to compute the digest). This is
    /// the compile-cache fast path: a repeat deploy of an identical netlist
    /// goes straight to allocation.
    ///
    /// Registration is idempotent for byte-identical images (see
    /// [`BitstreamDatabase::insert_or_get`]), so replaying the same spec is
    /// harmless.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Compile`] if synthesis or compilation fails.
    /// * [`RuntimeError::AppExists`] if the name is taken by a different
    ///   image.
    pub fn register_compiled(
        &self,
        compiler: &Compiler,
        spec: &AppSpec,
    ) -> Result<CompileOutcome, RuntimeError> {
        let digest = compiler.digest_of(spec).map_err(RuntimeError::Compile)?;
        if let Some(cached) = self.bitstreams.get_by_digest(digest) {
            self.bitstreams.insert_or_get(cached.renamed(spec.name()))?;
            return Ok(CompileOutcome {
                digest,
                cache_hit: true,
                timings: None,
            });
        }
        let compiled = compiler.compile(spec).map_err(RuntimeError::Compile)?;
        let timings = compiled.timings().clone();
        self.bitstreams.insert_or_get(compiled.into_bitstream())?;
        Ok(CompileOutcome {
            digest,
            cache_hit: false,
            timings: Some(timings),
        })
    }

    /// Deploys a registered application: allocates physical blocks with the
    /// communication-aware policy, binds the relocatable bitstream to them,
    /// provisions DRAM and a virtual NIC, and models the per-block partial
    /// reconfiguration.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownApp`] for unregistered names.
    /// * [`RuntimeError::InsufficientResources`] when the cluster is full.
    /// * [`RuntimeError::Periph`] if DRAM provisioning fails.
    pub fn deploy(&self, name: &str) -> Result<DeployHandle, RuntimeError> {
        self.deploy_with_quota(name, self.config.default_quota_bytes)
    }

    /// Like [`SystemController::deploy`] with an explicit DRAM quota.
    ///
    /// # Errors
    ///
    /// Same as [`SystemController::deploy`].
    pub fn deploy_with_quota(
        &self,
        name: &str,
        quota_bytes: u64,
    ) -> Result<DeployHandle, RuntimeError> {
        let bitstream = self.bitstreams.get(name)?;
        let needed = bitstream.block_count();

        let free_lists: Vec<_> = (0..self.resources.fpga_count())
            .map(|f| self.resources.free_blocks_of(f))
            .collect();
        let alloc =
            allocate_blocks(&free_lists, needed).ok_or(RuntimeError::InsufficientResources {
                needed,
                free: self.resources.total_free(),
            })?;

        let tenant = TenantId::new(self.next_tenant.fetch_add(1, Ordering::Relaxed));
        if !self.resources.claim(tenant, &alloc.blocks) {
            // Racy claim lost; report as pressure.
            return Err(RuntimeError::InsufficientResources {
                needed,
                free: self.resources.total_free(),
            });
        }

        let targets: Vec<RelocationTarget> = alloc
            .blocks
            .iter()
            .enumerate()
            .map(|(vb, &addr)| RelocationTarget {
                virtual_block: vb as u32,
                addr,
            })
            .collect();
        let placed = match bitstream.bind(&targets) {
            Ok(p) => p,
            Err(e) => {
                self.resources.release(tenant);
                return Err(RuntimeError::Relocation(e));
            }
        };

        // Primary FPGA = the one hosting the most blocks.
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for b in &alloc.blocks {
            *counts.entry(b.fpga.index() as usize).or_insert(0) += 1;
        }
        let primary_fpga = counts
            .into_iter()
            .max_by_key(|&(f, n)| (n, std::cmp::Reverse(f)))
            .map(|(f, _)| f)
            .unwrap_or(0);

        if let Err(e) = self.memory[primary_fpga].create_space(tenant, quota_bytes) {
            self.resources.release(tenant);
            return Err(RuntimeError::Periph(e));
        }
        self.arbiters[primary_fpga].request(tenant, self.config.dram_gbps / 4.0);
        let nic = self.switch.create_nic(tenant, 64);

        // Per-block partial reconfiguration over the FPGA-local ICAPs
        // (parallel across FPGAs, sequential within one).
        let per_block = BLOCK_CONFIG_BITS as f64 / (self.config.icap_gbps * 1.0e9);
        let mut per_fpga: HashMap<u32, u32> = HashMap::new();
        for b in &alloc.blocks {
            *per_fpga.entry(b.fpga.index()).or_insert(0) += 1;
        }
        let worst = per_fpga.values().copied().max().unwrap_or(0);
        let reconfig = Duration::from_secs_f64(per_block * f64::from(worst));

        let handle = DeployHandle {
            tenant,
            placed,
            nic,
            primary_fpga,
            reconfig,
        };
        self.tenants.lock().insert(
            tenant,
            TenantState {
                handle: handle.clone(),
            },
        );
        Ok(handle)
    }

    /// Tears down a deployment: frees its blocks, scrubs its DRAM, removes
    /// its NIC and bandwidth share.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] if no such deployment exists.
    pub fn undeploy(&self, tenant: TenantId) -> Result<(), RuntimeError> {
        let state = self
            .tenants
            .lock()
            .remove(&tenant)
            .ok_or(RuntimeError::UnknownTenant(tenant))?;
        self.resources.release(tenant);
        let fpga = state.handle.primary_fpga;
        self.memory[fpga].destroy_space(tenant)?;
        let _ = self.arbiters[fpga].release(tenant);
        self.switch.destroy_nic(state.handle.nic)?;
        Ok(())
    }

    /// Defragments the cluster by *migrating* spanning deployments onto
    /// fewer FPGAs when the current free space allows it — something only
    /// possible because bitstreams are relocatable: migration is a pause,
    /// a partial reconfiguration at the new location and a resume, never a
    /// recompilation. Returns the tenants that were migrated.
    ///
    /// Fragmentation is the failure mode of fine-grained sharing (small
    /// deployments pepper the cluster until large requests must span);
    /// periodic defragmentation keeps the spanning penalty in check.
    ///
    /// The tenant's DRAM stays on its original primary board (served over
    /// the ring if the logic moved away); handles returned by earlier
    /// `deploy` calls keep their original binding snapshot — query
    /// [`SystemController::resources`] for the live placement.
    pub fn defragment(&self) -> Vec<TenantId> {
        let mut migrated = Vec::new();
        loop {
            // Pick the most-spanning tenant that could do better.
            let candidates: Vec<(TenantId, usize, usize)> = {
                let tenants = self.tenants.lock();
                tenants
                    .iter()
                    .map(|(&t, state)| {
                        (
                            t,
                            state.handle.fpga_count(),
                            state.handle.placed().bindings.len(),
                        )
                    })
                    .filter(|&(_, fpgas, _)| fpgas > 1)
                    .collect()
            };
            let mut best_move: Option<(TenantId, crate::AllocationOutcome)> = None;
            for (tenant, current_fpgas, needed) in candidates {
                // What could this tenant get if its own blocks were free?
                let mut free_lists: Vec<_> = (0..self.resources.fpga_count())
                    .map(|f| self.resources.free_blocks_of(f))
                    .collect();
                for b in self.resources.holdings(tenant) {
                    free_lists[b.fpga.index() as usize].push(b);
                }
                for l in &mut free_lists {
                    l.sort();
                }
                if let Some(alloc) = allocate_blocks(&free_lists, needed) {
                    if alloc.fpgas_used < current_fpgas
                        && best_move
                            .as_ref()
                            .is_none_or(|(_, b)| alloc.fpgas_used < b.fpgas_used)
                    {
                        best_move = Some((tenant, alloc));
                    }
                }
            }
            let Some((tenant, alloc)) = best_move else {
                break;
            };
            // Migrate: release, re-claim, rebind.
            let old_blocks = self.resources.release(tenant);
            if !self.resources.claim(tenant, &alloc.blocks) {
                // Should not happen single-threaded; restore and stop.
                let restored = self.resources.claim(tenant, &old_blocks);
                debug_assert!(restored, "restoring a released claim cannot fail");
                break;
            }
            let mut tenants = self.tenants.lock();
            if let Some(state) = tenants.get_mut(&tenant) {
                let targets: Vec<RelocationTarget> = alloc
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(vb, &addr)| RelocationTarget {
                        virtual_block: vb as u32,
                        addr,
                    })
                    .collect();
                state.handle.placed.bindings = targets;
            }
            migrated.push(tenant);
        }
        migrated
    }

    /// Live tenant ids, sorted.
    pub fn live_tenants(&self) -> Vec<TenantId> {
        let mut v: Vec<TenantId> = self.tenants.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_compiler::{Compiler, CompilerConfig};
    use vital_netlist::hls::{AppSpec, Operator};

    fn controller_with(names_and_pes: &[(&str, u32)]) -> SystemController {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        for &(name, pes) in names_and_pes {
            let mut spec = AppSpec::new(name);
            spec.add_operator("m", Operator::MacArray { pes });
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        c
    }

    #[test]
    fn deploy_and_undeploy_lifecycle() {
        let c = controller_with(&[("a", 8)]);
        let free_before = c.resources().total_free();
        let h = c.deploy("a").unwrap();
        assert!(c.resources().total_free() < free_before);
        assert_eq!(c.live_tenants(), vec![h.tenant()]);
        assert!(h.reconfig_duration() > Duration::ZERO);
        c.undeploy(h.tenant()).unwrap();
        assert_eq!(c.resources().total_free(), free_before);
        assert!(c.live_tenants().is_empty());
    }

    #[test]
    fn unknown_app_and_tenant_errors() {
        let c = controller_with(&[]);
        assert!(matches!(c.deploy("nope"), Err(RuntimeError::UnknownApp(_))));
        assert!(matches!(
            c.undeploy(TenantId::new(42)),
            Err(RuntimeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn tenants_get_isolated_memory_and_nics() {
        let c = controller_with(&[("a", 8), ("b", 8)]);
        let ha = c.deploy("a").unwrap();
        let hb = c.deploy("b").unwrap();
        assert_ne!(ha.tenant(), hb.tenant());
        assert_ne!(ha.nic().mac, hb.nic().mac);
        // No block is shared.
        let blocks_a: Vec<_> = ha.placed().addresses().collect();
        let blocks_b: Vec<_> = hb.placed().addresses().collect();
        assert!(blocks_a.iter().all(|b| !blocks_b.contains(b)));
        // Memory writes do not interfere (same primary FPGA or not).
        let mm_a = c.memory_of(ha.primary_fpga());
        mm_a.write(ha.tenant(), 0, b"aaaa").unwrap();
        let mm_b = c.memory_of(hb.primary_fpga());
        let mut buf = [0u8; 4];
        mm_b.read(hb.tenant(), 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn cluster_exhaustion_is_reported() {
        let c = controller_with(&[("big", 500)]); // ~9+ blocks each
        let mut handles = Vec::new();
        loop {
            match c.deploy("big") {
                Ok(h) => handles.push(h),
                Err(RuntimeError::InsufficientResources { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(handles.len() < 100, "runaway deployment loop");
        }
        assert!(!handles.is_empty());
        // Free one and retry: should fit again.
        c.undeploy(handles.pop().unwrap().tenant()).unwrap();
        assert!(c.deploy("big").is_ok());
    }

    #[test]
    fn defragment_consolidates_spanning_tenants() {
        // DSP-bound designs: 8 blocks (3700 DSPs) and 10 blocks (4700).
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        for (name, dsps) in [("eight", 3_700u32), ("ten", 4_700u32)] {
            let mut spec = AppSpec::new(name);
            spec.add_operator(
                "x",
                Operator::Custom {
                    slices: 200,
                    dsps,
                    brams: 0,
                },
            );
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        // One 8-block app per FPGA leaves 7 free everywhere.
        let fillers: Vec<_> = (0..4).map(|_| c.deploy("eight").unwrap()).collect();
        // The 10-block app must span (no FPGA has 10 free).
        let spanner = c.deploy("ten").unwrap();
        assert!(spanner.fpga_count() > 1);
        // Free one filler: a whole board opens up.
        c.undeploy(fillers[0].tenant()).unwrap();
        let migrated = c.defragment();
        assert_eq!(migrated, vec![spanner.tenant()]);
        // The live placement now sits on a single FPGA.
        let holdings = c.resources().holdings(spanner.tenant());
        let mut fpgas: Vec<_> = holdings.iter().map(|b| b.fpga).collect();
        fpgas.sort_unstable();
        fpgas.dedup();
        assert_eq!(fpgas.len(), 1, "migrated onto one FPGA");
        // Idempotent: nothing left to do.
        assert!(c.defragment().is_empty());
        // Teardown still releases everything.
        c.undeploy(spanner.tenant()).unwrap();
        for f in fillers.into_iter().skip(1) {
            c.undeploy(f.tenant()).unwrap();
        }
    }

    #[test]
    fn heterogeneous_cluster_deploys_across_mixed_devices() {
        // Two big boards and one small one; the same bitstreams deploy
        // everywhere because blocks are identical.
        let c = SystemController::with_layout(RuntimeConfig::paper_cluster(), vec![15, 15, 4]);
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("het");
        spec.add_operator("m", Operator::MacArray { pes: 100 }); // ~2 blocks
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let mut handles = Vec::new();
        while let Ok(h) = c.deploy("het") {
            handles.push(h);
        }
        // 34 blocks / 2 per deployment -> 17 instances, some on the small
        // board.
        assert!(handles.len() >= 16, "deployed {}", handles.len());
        let used_small = handles
            .iter()
            .any(|h| h.placed().addresses().any(|a| a.fpga.index() == 2));
        assert!(used_small, "the small board must participate");
    }

    #[test]
    fn register_compiled_reuses_cached_images() {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        let spec_named = |name: &str| {
            let mut spec = AppSpec::new(name);
            spec.add_operator("m", Operator::MacArray { pes: 8 });
            spec
        };
        let cold = c.register_compiled(&compiler, &spec_named("orig")).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.timings.is_some());
        // Identical netlist under another name: cached images, zero P&R.
        let warm = c.register_compiled(&compiler, &spec_named("copy")).unwrap();
        assert!(warm.cache_hit);
        assert!(warm.timings.is_none());
        assert_eq!(warm.digest, cold.digest);
        assert_eq!(c.bitstreams().get("copy").unwrap().digest(), cold.digest);
        // Replaying a spec is idempotent, and both names deploy.
        let replay = c.register_compiled(&compiler, &spec_named("copy")).unwrap();
        assert!(replay.cache_hit);
        let h = c.deploy("copy").unwrap();
        c.undeploy(h.tenant()).unwrap();
        let stats = c.bitstreams().cache_stats();
        assert!(stats.hits >= 2 && stats.misses >= 1, "stats {stats:?}");
    }

    #[test]
    fn deployments_can_span_fpgas_under_pressure() {
        let c = controller_with(&[("big", 560)]); // 10 blocks (DSP-bound)
        let mut spanned = false;
        let mut handles = Vec::new();
        while let Ok(h) = c.deploy("big") {
            spanned |= h.fpga_count() > 1;
            handles.push(h);
        }
        assert!(
            spanned,
            "10-block apps on 15-block FPGAs must eventually span"
        );
    }
}
