//! The system controller: ViTAL's API surface toward the higher-level
//! cloud stack (hypervisor), paper Fig. 6.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use std::collections::HashMap;
use vital_compiler::{
    AppBitstream, Compiler, NetlistDigest, PlacedBitstream, RelocationTarget, StageTimings,
    BLOCK_CONFIG_BITS,
};
use vital_netlist::hls::AppSpec;
use vital_periph::{
    BandwidthArbiter, MemoryManager, ShareGrant, TenantId, VirtualNic, VirtualSwitch,
};
use vital_telemetry::Telemetry;

use crate::{allocate_blocks, BitstreamDatabase, FpgaHealth, ResourceDatabase, RuntimeError};

/// Configuration of the runtime: cluster shape plus peripheral capacities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// FPGAs in the cluster.
    pub fpgas: usize,
    /// Physical blocks per FPGA.
    pub blocks_per_fpga: usize,
    /// Board DRAM per FPGA in bytes.
    pub dram_bytes_per_fpga: u64,
    /// DRAM page size in bytes.
    pub dram_page_bytes: u64,
    /// DRAM channel bandwidth per FPGA in Gb/s.
    pub dram_gbps: f64,
    /// Default DRAM quota granted per deployment, in bytes.
    pub default_quota_bytes: u64,
    /// ICAP throughput used to model partial-reconfiguration time, in Gb/s.
    pub icap_gbps: f64,
    /// Admission floor for the DRAM bandwidth share, as a fraction of the
    /// share a deployment requests (`dram_gbps / 4`). A deploy whose
    /// granted share falls below the floor is rolled back with
    /// [`RuntimeError::BandwidthUnavailable`]; `0.0` (the default) merely
    /// records the grant without gating admission.
    pub min_bandwidth_fraction: f64,
}

impl RuntimeConfig {
    /// The paper's platform: 4 FPGAs × 15 blocks; two DIMM sites of up to
    /// 128 GB each per board (§5.2) — modelled as 64 GiB of usable DRAM.
    pub fn paper_cluster() -> Self {
        RuntimeConfig {
            fpgas: 4,
            blocks_per_fpga: 15,
            dram_bytes_per_fpga: 64 << 30,
            dram_page_bytes: 2 << 20,
            dram_gbps: 153.6, // DDR4-2400 x72, two channels
            default_quota_bytes: 1 << 30,
            icap_gbps: 6.4,
            min_bandwidth_fraction: 0.0,
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

/// A live deployment returned by [`SystemController::deploy`].
#[derive(Debug, Clone)]
pub struct DeployHandle {
    tenant: TenantId,
    placed: PlacedBitstream,
    nic: VirtualNic,
    primary_fpga: usize,
    reconfig: Duration,
    bandwidth: ShareGrant,
}

impl DeployHandle {
    /// The tenant id owning this deployment.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The bound bitstream (which physical blocks are used).
    pub fn placed(&self) -> &PlacedBitstream {
        &self.placed
    }

    /// The tenant's virtual NIC.
    pub fn nic(&self) -> VirtualNic {
        self.nic
    }

    /// The FPGA hosting the majority of the blocks (and the tenant's DRAM).
    pub fn primary_fpga(&self) -> usize {
        self.primary_fpga
    }

    /// Distinct FPGAs the deployment spans.
    pub fn fpga_count(&self) -> usize {
        self.placed.fpga_count()
    }

    /// Modelled partial-reconfiguration time for this deployment.
    pub fn reconfig_duration(&self) -> Duration {
        self.reconfig
    }

    /// The DRAM bandwidth share granted at admission time. The live grant
    /// shifts as tenants come and go — query
    /// [`SystemController::arbiter_of`] for the current value.
    pub fn bandwidth(&self) -> ShareGrant {
        self.bandwidth
    }
}

/// What [`SystemController::register_compiled`] did for a spec.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// Content digest of the spec's compile input.
    pub digest: NetlistDigest,
    /// `true` if a cached image was reused and no place-and-route ran.
    pub cache_hit: bool,
    /// Stage timings of the compile that ran; `None` on a cache hit.
    pub timings: Option<StageTimings>,
}

/// One completed tenant relocation: the tenant's logic moved to a new set
/// of physical blocks by partial reconfiguration — never recompilation —
/// whether triggered by [`SystemController::defragment`],
/// [`SystemController::evacuate`], or [`SystemController::fail_fpga`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// The migrated tenant.
    pub tenant: TenantId,
    /// Distinct FPGAs spanned before the move.
    pub fpgas_before: usize,
    /// Distinct FPGAs spanned after the move.
    pub fpgas_after: usize,
    /// Modelled partial-reconfiguration time to program the new blocks —
    /// the downtime the move charges the tenant.
    pub reconfig: Duration,
}

/// What [`SystemController::fail_fpga`] did to the affected tenants.
#[derive(Debug, Clone, Default)]
pub struct FailureReport {
    /// Tenants relocated onto surviving devices. A tenant whose DRAM
    /// lived on the failed board gets a fresh (zeroed) space on its new
    /// primary — the contents died with the board.
    pub migrated: Vec<Migration>,
    /// Tenants torn down because no surviving placement could hold them.
    pub torn_down: Vec<TenantId>,
}

/// What [`SystemController::evacuate`] managed to move.
#[derive(Debug, Clone, Default)]
pub struct EvacuationReport {
    /// Tenants relocated off the draining device. Their DRAM stays on its
    /// original board (still powered), so no tenant loses its contents.
    pub migrated: Vec<Migration>,
    /// Tenants left in place because no other placement currently fits;
    /// retry after capacity frees up.
    pub unmoved: Vec<TenantId>,
}

/// Monotonic failure/recovery counters of one controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    /// Devices declared failed via [`SystemController::fail_fpga`].
    pub fpga_failures: u64,
    /// Devices brought back via [`SystemController::recover_fpga`].
    pub fpga_recoveries: u64,
    /// Evacuations started via [`SystemController::evacuate`].
    pub evacuations: u64,
    /// Tenants successfully relocated by failure handling or evacuation.
    pub tenants_migrated: u64,
    /// Tenants torn down because they could not be re-placed.
    pub tenants_torn_down: u64,
}

struct TenantState {
    handle: DeployHandle,
}

/// RAII rollback for a half-built deployment: every resource acquired so
/// far — claimed blocks, DRAM space, bandwidth share, vNIC — is released
/// on drop unless [`TeardownGuard::commit`] disarms the guard. `deploy` is
/// transactional because every early return runs through this drop.
struct TeardownGuard<'a> {
    ctl: &'a SystemController,
    tenant: TenantId,
    blocks_claimed: bool,
    memory_fpga: Option<usize>,
    arbiter_fpga: Option<usize>,
    nic: Option<VirtualNic>,
    armed: bool,
}

impl<'a> TeardownGuard<'a> {
    fn new(ctl: &'a SystemController, tenant: TenantId) -> Self {
        TeardownGuard {
            ctl,
            tenant,
            blocks_claimed: false,
            memory_fpga: None,
            arbiter_fpga: None,
            nic: None,
            armed: true,
        }
    }

    fn commit(mut self) {
        self.armed = false;
    }
}

impl Drop for TeardownGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Unwind in reverse acquisition order; each step is independent so
        // one failing never skips the rest.
        if let Some(nic) = self.nic.take() {
            let _ = self.ctl.switch.destroy_nic(nic);
        }
        if let Some(f) = self.arbiter_fpga.take() {
            let _ = self.ctl.arbiters[f].release(self.tenant);
        }
        if let Some(f) = self.memory_fpga.take() {
            let _ = self.ctl.memory[f].destroy_space(self.tenant);
        }
        if self.blocks_claimed {
            self.ctl.resources.release(self.tenant);
        }
    }
}

/// The ViTAL system controller.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct SystemController {
    config: RuntimeConfig,
    resources: ResourceDatabase,
    bitstreams: BitstreamDatabase,
    memory: Vec<MemoryManager>,
    arbiters: Vec<BandwidthArbiter>,
    switch: VirtualSwitch,
    tenants: Mutex<HashMap<TenantId, TenantState>>,
    next_tenant: AtomicU64,
    failure_stats: Mutex<FailureStats>,
    telemetry: Telemetry,
}

impl fmt::Debug for SystemController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemController")
            .field("config", &self.config)
            .field("registered_apps", &self.bitstreams.len())
            .field("live_tenants", &self.tenants.lock().len())
            .finish()
    }
}

impl SystemController {
    /// Creates a controller over an idle homogeneous cluster.
    pub fn new(config: RuntimeConfig) -> Self {
        let layout = vec![config.blocks_per_fpga; config.fpgas];
        Self::with_layout(config, layout)
    }

    /// Creates a controller over a *heterogeneous* cluster: one entry per
    /// FPGA giving its block count. Because every block is identical, the
    /// same relocatable bitstreams deploy across mixed devices (paper §7).
    ///
    /// # Panics
    ///
    /// Panics if `layout` is empty or contains a zero.
    pub fn with_layout(config: RuntimeConfig, layout: Vec<usize>) -> Self {
        let fpgas = layout.len();
        SystemController {
            resources: ResourceDatabase::with_layout(layout),
            bitstreams: BitstreamDatabase::new(),
            memory: (0..fpgas)
                .map(|_| MemoryManager::new(config.dram_bytes_per_fpga, config.dram_page_bytes))
                .collect(),
            arbiters: (0..fpgas)
                .map(|_| BandwidthArbiter::new(config.dram_gbps))
                .collect(),
            switch: VirtualSwitch::new(),
            tenants: Mutex::new(HashMap::new()),
            next_tenant: AtomicU64::new(1),
            failure_stats: Mutex::new(FailureStats::default()),
            telemetry: Telemetry::disabled(),
            config,
        }
    }

    /// Non-panicking variant of [`SystemController::with_layout`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `layout` is empty or
    /// contains a zero-block FPGA.
    pub fn try_with_layout(
        config: RuntimeConfig,
        layout: Vec<usize>,
    ) -> Result<Self, RuntimeError> {
        if layout.is_empty() {
            return Err(RuntimeError::InvalidConfig(
                "cluster layout is empty".to_string(),
            ));
        }
        if let Some(f) = layout.iter().position(|&n| n == 0) {
            return Err(RuntimeError::InvalidConfig(format!(
                "FPGA {f} has zero blocks"
            )));
        }
        Ok(Self::with_layout(config, layout))
    }

    /// Attaches a telemetry handle: `deploy`/`undeploy`/`fail_fpga`/
    /// `evacuate`/`defragment` then emit spans carrying allocation round,
    /// fpgas-used and ring-hop-cost fields. The default handle is disabled
    /// and costs nothing.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The resource database (read access for monitoring).
    pub fn resources(&self) -> &ResourceDatabase {
        &self.resources
    }

    /// The bitstream database.
    pub fn bitstreams(&self) -> &BitstreamDatabase {
        &self.bitstreams
    }

    /// The DRAM manager of one FPGA.
    ///
    /// # Panics
    ///
    /// Panics if `fpga` is out of range.
    pub fn memory_of(&self, fpga: usize) -> &MemoryManager {
        &self.memory[fpga]
    }

    /// The DRAM bandwidth arbiter of one FPGA.
    ///
    /// # Panics
    ///
    /// Panics if `fpga` is out of range.
    pub fn arbiter_of(&self, fpga: usize) -> &BandwidthArbiter {
        &self.arbiters[fpga]
    }

    /// The cluster's virtual Ethernet switch.
    pub fn switch(&self) -> &VirtualSwitch {
        &self.switch
    }

    /// Registers a compiled application in the bitstream database.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::AppExists`] if the name is already taken.
    pub fn register(&self, bitstream: AppBitstream) -> Result<(), RuntimeError> {
        self.bitstreams.insert(bitstream)
    }

    /// Compiles and registers `spec` under its name — unless a registered
    /// bitstream already carries the same content digest, in which case the
    /// cached images are reused verbatim and **no place-and-route runs**
    /// (only the cheap synthesis needed to compute the digest). This is
    /// the compile-cache fast path: a repeat deploy of an identical netlist
    /// goes straight to allocation.
    ///
    /// Registration is idempotent for byte-identical images (see
    /// [`BitstreamDatabase::insert_or_get`]), so replaying the same spec is
    /// harmless.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Compile`] if synthesis or compilation fails.
    /// * [`RuntimeError::AppExists`] if the name is taken by a different
    ///   image.
    pub fn register_compiled(
        &self,
        compiler: &Compiler,
        spec: &AppSpec,
    ) -> Result<CompileOutcome, RuntimeError> {
        let digest = compiler.digest_of(spec).map_err(RuntimeError::Compile)?;
        if let Some(cached) = self.bitstreams.get_by_digest(digest) {
            self.bitstreams.insert_or_get(cached.renamed(spec.name()))?;
            return Ok(CompileOutcome {
                digest,
                cache_hit: true,
                timings: None,
            });
        }
        let compiled = compiler.compile(spec).map_err(RuntimeError::Compile)?;
        let timings = compiled.timings().clone();
        self.bitstreams.insert_or_get(compiled.into_bitstream())?;
        Ok(CompileOutcome {
            digest,
            cache_hit: false,
            timings: Some(timings),
        })
    }

    /// Deploys a registered application: allocates physical blocks with the
    /// communication-aware policy, binds the relocatable bitstream to them,
    /// provisions DRAM and a virtual NIC, and models the per-block partial
    /// reconfiguration.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownApp`] for unregistered names.
    /// * [`RuntimeError::InsufficientResources`] when the cluster is full.
    /// * [`RuntimeError::Periph`] if DRAM provisioning fails.
    pub fn deploy(&self, name: &str) -> Result<DeployHandle, RuntimeError> {
        self.deploy_with_quota(name, self.config.default_quota_bytes)
    }

    /// Like [`SystemController::deploy`] with an explicit DRAM quota.
    ///
    /// The deployment is **transactional**: an RAII guard unwinds every
    /// resource acquired so far (claimed blocks, DRAM space, bandwidth
    /// share, vNIC) on any failure path, so a failed deploy leaves no
    /// trace.
    ///
    /// # Errors
    ///
    /// Same as [`SystemController::deploy`], plus
    /// [`RuntimeError::BandwidthUnavailable`] when
    /// [`RuntimeConfig::min_bandwidth_fraction`] gates admission and the
    /// arbiter cannot grant the floor.
    pub fn deploy_with_quota(
        &self,
        name: &str,
        quota_bytes: u64,
    ) -> Result<DeployHandle, RuntimeError> {
        let mut span = self.telemetry.span("runtime.deploy");
        span.field("app", name);
        let bitstream = self.bitstreams.get(name)?;
        let needed = bitstream.block_count();
        span.field("needed", needed);

        let free_lists: Vec<_> = (0..self.resources.fpga_count())
            .map(|f| self.resources.free_blocks_of(f))
            .collect();
        let alloc =
            allocate_blocks(&free_lists, needed).ok_or(RuntimeError::InsufficientResources {
                needed,
                free: self.resources.total_free(),
            })?;
        // The §3.4 policy's round number equals the FPGAs admitted.
        span.field("round", alloc.fpgas_used);
        span.field("fpgas_used", alloc.fpgas_used);
        span.field("hop_cost", alloc.hop_cost);

        let tenant = TenantId::new(self.next_tenant.fetch_add(1, Ordering::Relaxed));
        let mut guard = TeardownGuard::new(self, tenant);
        if !self.resources.claim(tenant, &alloc.blocks) {
            // Racy claim lost; report as pressure.
            return Err(RuntimeError::InsufficientResources {
                needed,
                free: self.resources.total_free(),
            });
        }
        guard.blocks_claimed = true;

        let targets: Vec<RelocationTarget> = alloc
            .blocks
            .iter()
            .enumerate()
            .map(|(vb, &addr)| RelocationTarget {
                virtual_block: vb as u32,
                addr,
            })
            .collect();
        let placed = bitstream.bind(&targets).map_err(RuntimeError::Relocation)?;

        let primary_fpga = Self::primary_of(&alloc.blocks);
        self.memory[primary_fpga]
            .create_space(tenant, quota_bytes)
            .map_err(RuntimeError::Periph)?;
        guard.memory_fpga = Some(primary_fpga);

        // Request a quarter of the channel (four blocks share one DIMM in
        // the paper's service region) and gate on the configured floor.
        let share = self.config.dram_gbps / 4.0;
        let grant = self.arbiters[primary_fpga].request(tenant, share);
        guard.arbiter_fpga = Some(primary_fpga);
        let floor = self.config.min_bandwidth_fraction * share;
        if grant.granted_gbps + 1e-9 < floor {
            return Err(RuntimeError::BandwidthUnavailable {
                fpga: primary_fpga,
                requested_gbps: share,
                granted_gbps: grant.granted_gbps,
            });
        }

        let nic = self.switch.create_nic(tenant, 64);
        guard.nic = Some(nic);

        let reconfig = self.reconfig_of(&alloc.blocks);
        let handle = DeployHandle {
            tenant,
            placed,
            nic,
            primary_fpga,
            reconfig,
            bandwidth: grant,
        };
        self.tenants.lock().insert(
            tenant,
            TenantState {
                handle: handle.clone(),
            },
        );
        guard.commit();
        span.field("tenant", tenant.raw());
        self.telemetry.inc_counter("runtime.deploys", 1);
        self.telemetry
            .record_hist("runtime.deploy_hop_cost", alloc.hop_cost as f64);
        Ok(handle)
    }

    /// Primary FPGA = the one hosting the most blocks (lowest index wins
    /// ties).
    fn primary_of(blocks: &[vital_fabric::BlockAddr]) -> usize {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for b in blocks {
            *counts.entry(b.fpga.index() as usize).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(f, n)| (n, std::cmp::Reverse(f)))
            .map(|(f, _)| f)
            .unwrap_or(0)
    }

    /// Per-block partial reconfiguration over the FPGA-local ICAPs
    /// (parallel across FPGAs, sequential within one).
    fn reconfig_of(&self, blocks: &[vital_fabric::BlockAddr]) -> Duration {
        let per_block = BLOCK_CONFIG_BITS as f64 / (self.config.icap_gbps * 1.0e9);
        let mut per_fpga: HashMap<u32, u32> = HashMap::new();
        for b in blocks {
            *per_fpga.entry(b.fpga.index()).or_insert(0) += 1;
        }
        let worst = per_fpga.values().copied().max().unwrap_or(0);
        Duration::from_secs_f64(per_block * f64::from(worst))
    }

    /// Tears down a deployment: frees its blocks, scrubs its DRAM, removes
    /// its NIC and bandwidth share.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] if no such deployment
    /// exists (nothing is touched in that case). Any other error is
    /// reported only **after** the teardown has run to completion: every
    /// step — block release, DRAM scrub, bandwidth share, vNIC — is
    /// attempted regardless of earlier failures, so a failing step never
    /// leaks the later ones. The first failure encountered is returned;
    /// the tenant is gone either way.
    pub fn undeploy(&self, tenant: TenantId) -> Result<(), RuntimeError> {
        let mut span = self.telemetry.span("runtime.undeploy");
        span.field("tenant", tenant.raw());
        let state = self
            .tenants
            .lock()
            .remove(&tenant)
            .ok_or(RuntimeError::UnknownTenant(tenant))?;
        self.telemetry.inc_counter("runtime.undeploys", 1);
        self.teardown(&state.handle)
    }

    /// Best-effort-complete teardown of a removed tenant's resources:
    /// every step runs; the first error is returned.
    fn teardown(&self, handle: &DeployHandle) -> Result<(), RuntimeError> {
        let tenant = handle.tenant;
        self.resources.release(tenant);
        let fpga = handle.primary_fpga;
        let mem = self.memory[fpga]
            .destroy_space(tenant)
            .map_err(RuntimeError::Periph);
        let arb = self.arbiters[fpga]
            .release(tenant)
            .map_err(RuntimeError::Periph);
        let nic = self
            .switch
            .destroy_nic(handle.nic)
            .map_err(RuntimeError::Periph);
        mem.and(arb).and(nic)
    }

    /// Defragments the cluster by *migrating* spanning deployments onto
    /// fewer FPGAs when the current free space allows it — something only
    /// possible because bitstreams are relocatable: migration is a pause,
    /// a partial reconfiguration at the new location and a resume, never a
    /// recompilation. Returns one [`Migration`] per moved tenant, carrying
    /// the recomputed per-block partial-reconfiguration cost of the move;
    /// the stored handle's [`DeployHandle::reconfig_duration`] is updated
    /// to match the new placement.
    ///
    /// Fragmentation is the failure mode of fine-grained sharing (small
    /// deployments pepper the cluster until large requests must span);
    /// periodic defragmentation keeps the spanning penalty in check.
    ///
    /// The tenant's DRAM stays on its original primary board (served over
    /// the ring if the logic moved away); handles returned by earlier
    /// `deploy` calls keep their original binding snapshot — query
    /// [`SystemController::resources`] for the live placement.
    pub fn defragment(&self) -> Vec<Migration> {
        let mut span = self.telemetry.span("runtime.defragment");
        let mut migrated = Vec::new();
        loop {
            // Pick the most-spanning tenant that could do better.
            let candidates: Vec<(TenantId, usize, usize)> = {
                let tenants = self.tenants.lock();
                tenants
                    .iter()
                    .map(|(&t, state)| {
                        (
                            t,
                            state.handle.fpga_count(),
                            state.handle.placed().bindings.len(),
                        )
                    })
                    .filter(|&(_, fpgas, _)| fpgas > 1)
                    .collect()
            };
            let mut best_move: Option<(TenantId, usize, crate::AllocationOutcome)> = None;
            for (tenant, current_fpgas, needed) in candidates {
                // What could this tenant get if its own blocks were free?
                // Only blocks on Online devices participate.
                let mut free_lists: Vec<_> = (0..self.resources.fpga_count())
                    .map(|f| self.resources.free_blocks_of(f))
                    .collect();
                for b in self.resources.holdings(tenant) {
                    let f = b.fpga.index() as usize;
                    if self.resources.health_of(f) == FpgaHealth::Online {
                        free_lists[f].push(b);
                    }
                }
                for l in &mut free_lists {
                    l.sort();
                }
                if let Some(alloc) = allocate_blocks(&free_lists, needed) {
                    if alloc.fpgas_used < current_fpgas
                        && best_move
                            .as_ref()
                            .is_none_or(|(_, _, b)| alloc.fpgas_used < b.fpgas_used)
                    {
                        best_move = Some((tenant, current_fpgas, alloc));
                    }
                }
            }
            let Some((tenant, fpgas_before, alloc)) = best_move else {
                break;
            };
            // Migrate: release, re-claim, rebind.
            let old_blocks = self.resources.release(tenant);
            if !self.resources.claim(tenant, &alloc.blocks) {
                // Should not happen single-threaded; restore and stop.
                let restored = self.resources.claim(tenant, &old_blocks);
                debug_assert!(restored, "restoring a released claim cannot fail");
                break;
            }
            let reconfig = self.reconfig_of(&alloc.blocks);
            let fpgas_after = alloc.fpgas_used;
            let mut tenants = self.tenants.lock();
            if let Some(state) = tenants.get_mut(&tenant) {
                let targets: Vec<RelocationTarget> = alloc
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(vb, &addr)| RelocationTarget {
                        virtual_block: vb as u32,
                        addr,
                    })
                    .collect();
                state.handle.placed.bindings = targets;
                state.handle.reconfig = reconfig;
            }
            migrated.push(Migration {
                tenant,
                fpgas_before,
                fpgas_after,
                reconfig,
            });
        }
        span.field("migrations", migrated.len());
        migrated
    }

    /// Declares an FPGA failed: the device goes
    /// [`Offline`](FpgaHealth::Offline) and every affected tenant is
    /// either *migrated* onto the surviving devices — relocatable
    /// bitstreams make this a partial reconfiguration, never a
    /// recompilation — or, when no surviving placement fits, torn down
    /// completely (blocks, DRAM, bandwidth share, vNIC).
    ///
    /// A migrated tenant whose DRAM lived on the failed board gets a
    /// fresh zeroed space of the same quota on its new primary FPGA: the
    /// contents died with the board. Tenants whose DRAM lives elsewhere
    /// keep it untouched.
    ///
    /// Idempotent: failing an already-offline device affects no one.
    pub fn fail_fpga(&self, fpga: usize) -> FailureReport {
        let mut span = self.telemetry.span("runtime.fail_fpga");
        span.field("fpga", fpga);
        self.resources.set_health(fpga, FpgaHealth::Offline);
        let mut report = FailureReport::default();
        for tenant in self.affected_tenants(fpga) {
            match self.relocate_tenant(tenant, true) {
                Some(m) => report.migrated.push(m),
                None => {
                    let state = self.tenants.lock().remove(&tenant);
                    if let Some(state) = state {
                        // Best-effort: the board is gone, some steps may
                        // already be moot.
                        let _ = self.teardown(&state.handle);
                        report.torn_down.push(tenant);
                    }
                }
            }
        }
        let mut stats = self.failure_stats.lock();
        stats.fpga_failures += 1;
        stats.tenants_migrated += report.migrated.len() as u64;
        stats.tenants_torn_down += report.torn_down.len() as u64;
        span.field("migrated", report.migrated.len());
        span.field("torn_down", report.torn_down.len());
        self.telemetry.inc_counter("runtime.fpga_failures", 1);
        report
    }

    /// Returns a failed or draining FPGA to service
    /// ([`Online`](FpgaHealth::Online)): its blocks become allocatable
    /// again. Nothing is migrated back — the next deployments simply see
    /// the capacity.
    pub fn recover_fpga(&self, fpga: usize) {
        self.resources.set_health(fpga, FpgaHealth::Online);
        self.failure_stats.lock().fpga_recoveries += 1;
    }

    /// Drains an FPGA for maintenance: the device goes
    /// [`Draining`](FpgaHealth::Draining) (no new allocations) and every
    /// tenant with blocks on it is migrated off by relocation. The board
    /// stays powered, so **no tenant loses its DRAM contents** — a
    /// tenant whose DRAM home is the draining board keeps it there,
    /// served over the ring. Tenants that cannot currently be re-placed
    /// stay put and are listed in [`EvacuationReport::unmoved`]; call
    /// again once capacity frees up, or [`SystemController::recover_fpga`]
    /// to cancel the drain.
    pub fn evacuate(&self, fpga: usize) -> EvacuationReport {
        let mut span = self.telemetry.span("runtime.evacuate");
        span.field("fpga", fpga);
        self.resources.set_health(fpga, FpgaHealth::Draining);
        let mut report = EvacuationReport::default();
        for tenant in self.resources.tenants_on(fpga) {
            match self.relocate_tenant(tenant, false) {
                Some(m) => report.migrated.push(m),
                None => report.unmoved.push(tenant),
            }
        }
        let mut stats = self.failure_stats.lock();
        stats.evacuations += 1;
        stats.tenants_migrated += report.migrated.len() as u64;
        span.field("migrated", report.migrated.len());
        span.field("unmoved", report.unmoved.len());
        report
    }

    /// The failure/recovery counters accumulated so far.
    pub fn failure_stats(&self) -> FailureStats {
        *self.failure_stats.lock()
    }

    /// Tenants touched by the failure of `fpga`: blocks on it, or DRAM
    /// homed on it.
    fn affected_tenants(&self, fpga: usize) -> Vec<TenantId> {
        let mut v = self.resources.tenants_on(fpga);
        let tenants = self.tenants.lock();
        for (&t, state) in tenants.iter() {
            if state.handle.primary_fpga == fpga && !v.contains(&t) {
                v.push(t);
            }
        }
        v.sort_unstable();
        v
    }

    /// Re-places one tenant using only Online devices (free blocks plus
    /// the tenant's own still-online blocks) and commits the move. With
    /// `board_dead`, a DRAM space homed on a non-Online board is moved to
    /// the new primary (contents lost — the board crashed); otherwise the
    /// DRAM stays where it is. Returns `None` if no placement fits (the
    /// caller decides between tearing down and leaving the tenant put).
    fn relocate_tenant(&self, tenant: TenantId, board_dead: bool) -> Option<Migration> {
        let (needed, fpgas_before, old_primary) = {
            let tenants = self.tenants.lock();
            let state = tenants.get(&tenant)?;
            (
                state.handle.placed.bindings.len(),
                state.handle.fpga_count(),
                state.handle.primary_fpga,
            )
        };
        let mut free_lists: Vec<_> = (0..self.resources.fpga_count())
            .map(|f| self.resources.free_blocks_of(f))
            .collect();
        for b in self.resources.holdings(tenant) {
            let f = b.fpga.index() as usize;
            if self.resources.health_of(f) == FpgaHealth::Online {
                free_lists[f].push(b);
            }
        }
        for l in &mut free_lists {
            l.sort();
        }
        let alloc = allocate_blocks(&free_lists, needed)?;
        let new_primary = Self::primary_of(&alloc.blocks);

        // Move the DRAM home first if its board died: quota carries over,
        // contents cannot.
        let dram_moves = board_dead && self.resources.health_of(old_primary) != FpgaHealth::Online;
        let mut grant = None;
        if dram_moves {
            let quota = self.memory[old_primary]
                .stats(tenant)
                .map(|s| s.quota_bytes)
                .unwrap_or(self.config.default_quota_bytes);
            let _ = self.memory[old_primary].destroy_space(tenant);
            if let Err(e) = self.memory[new_primary].create_space(tenant, quota) {
                // No room for the space: restore the old record so the
                // caller's teardown finds a consistent tenant.
                debug_assert!(matches!(e, vital_periph::PeriphError::OutOfMemory { .. }));
                let _ = self.memory[old_primary].create_space(tenant, quota);
                return None;
            }
            let _ = self.arbiters[old_primary].release(tenant);
            grant = Some(self.arbiters[new_primary].request(tenant, self.config.dram_gbps / 4.0));
        }

        // Commit the block move: release, re-claim, rebind.
        let old_blocks = self.resources.release(tenant);
        if !self.resources.claim(tenant, &alloc.blocks) {
            // Cannot happen single-threaded; salvage what is claimable.
            let salvage: Vec<_> = old_blocks
                .iter()
                .copied()
                .filter(|b| self.resources.health_of(b.fpga.index() as usize) == FpgaHealth::Online)
                .collect();
            let _ = self.resources.claim(tenant, &salvage);
            return None;
        }
        let reconfig = self.reconfig_of(&alloc.blocks);
        let mut tenants = self.tenants.lock();
        let state = tenants.get_mut(&tenant)?;
        state.handle.placed.bindings = alloc
            .blocks
            .iter()
            .enumerate()
            .map(|(vb, &addr)| RelocationTarget {
                virtual_block: vb as u32,
                addr,
            })
            .collect();
        state.handle.reconfig = reconfig;
        if dram_moves {
            state.handle.primary_fpga = new_primary;
            if let Some(g) = grant {
                state.handle.bandwidth = g;
            }
        }
        Some(Migration {
            tenant,
            fpgas_before,
            fpgas_after: alloc.fpgas_used,
            reconfig,
        })
    }

    /// Live tenant ids, sorted.
    pub fn live_tenants(&self) -> Vec<TenantId> {
        let mut v: Vec<TenantId> = self.tenants.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_compiler::{Compiler, CompilerConfig};
    use vital_netlist::hls::{AppSpec, Operator};

    fn controller_with(names_and_pes: &[(&str, u32)]) -> SystemController {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        for &(name, pes) in names_and_pes {
            let mut spec = AppSpec::new(name);
            spec.add_operator("m", Operator::MacArray { pes });
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        c
    }

    #[test]
    fn deploy_and_undeploy_lifecycle() {
        let c = controller_with(&[("a", 8)]);
        let free_before = c.resources().total_free();
        let h = c.deploy("a").unwrap();
        assert!(c.resources().total_free() < free_before);
        assert_eq!(c.live_tenants(), vec![h.tenant()]);
        assert!(h.reconfig_duration() > Duration::ZERO);
        c.undeploy(h.tenant()).unwrap();
        assert_eq!(c.resources().total_free(), free_before);
        assert!(c.live_tenants().is_empty());
    }

    #[test]
    fn unknown_app_and_tenant_errors() {
        let c = controller_with(&[]);
        assert!(matches!(c.deploy("nope"), Err(RuntimeError::UnknownApp(_))));
        assert!(matches!(
            c.undeploy(TenantId::new(42)),
            Err(RuntimeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn tenants_get_isolated_memory_and_nics() {
        let c = controller_with(&[("a", 8), ("b", 8)]);
        let ha = c.deploy("a").unwrap();
        let hb = c.deploy("b").unwrap();
        assert_ne!(ha.tenant(), hb.tenant());
        assert_ne!(ha.nic().mac, hb.nic().mac);
        // No block is shared.
        let blocks_a: Vec<_> = ha.placed().addresses().collect();
        let blocks_b: Vec<_> = hb.placed().addresses().collect();
        assert!(blocks_a.iter().all(|b| !blocks_b.contains(b)));
        // Memory writes do not interfere (same primary FPGA or not).
        let mm_a = c.memory_of(ha.primary_fpga());
        mm_a.write(ha.tenant(), 0, b"aaaa").unwrap();
        let mm_b = c.memory_of(hb.primary_fpga());
        let mut buf = [0u8; 4];
        mm_b.read(hb.tenant(), 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn cluster_exhaustion_is_reported() {
        let c = controller_with(&[("big", 500)]); // ~9+ blocks each
        let mut handles = Vec::new();
        loop {
            match c.deploy("big") {
                Ok(h) => handles.push(h),
                Err(RuntimeError::InsufficientResources { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(handles.len() < 100, "runaway deployment loop");
        }
        assert!(!handles.is_empty());
        // Free one and retry: should fit again.
        c.undeploy(handles.pop().unwrap().tenant()).unwrap();
        assert!(c.deploy("big").is_ok());
    }

    #[test]
    fn defragment_consolidates_spanning_tenants() {
        // DSP-bound designs: 8 blocks (3700 DSPs) and 10 blocks (4700).
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        for (name, dsps) in [("eight", 3_700u32), ("ten", 4_700u32)] {
            let mut spec = AppSpec::new(name);
            spec.add_operator(
                "x",
                Operator::Custom {
                    slices: 200,
                    dsps,
                    brams: 0,
                },
            );
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        // One 8-block app per FPGA leaves 7 free everywhere.
        let fillers: Vec<_> = (0..4).map(|_| c.deploy("eight").unwrap()).collect();
        // The 10-block app must span (no FPGA has 10 free).
        let spanner = c.deploy("ten").unwrap();
        assert!(spanner.fpga_count() > 1);
        // Free one filler: a whole board opens up.
        c.undeploy(fillers[0].tenant()).unwrap();
        let migrated = c.defragment();
        assert_eq!(migrated.len(), 1);
        let m = &migrated[0];
        assert_eq!(m.tenant, spanner.tenant());
        assert!(m.fpgas_before > m.fpgas_after);
        assert_eq!(m.fpgas_after, 1);
        // The move charges 10 sequential per-block reconfigurations on the
        // target board, and the stored handle reflects the new cost.
        assert!(m.reconfig > Duration::ZERO);
        let live = c.tenants.lock().get(&m.tenant).unwrap().handle.clone();
        assert_eq!(live.reconfig_duration(), m.reconfig);
        assert!(
            live.reconfig_duration() > spanner.reconfig_duration(),
            "10 blocks on one ICAP take longer than the spanning split"
        );
        // The live placement now sits on a single FPGA.
        let holdings = c.resources().holdings(spanner.tenant());
        let mut fpgas: Vec<_> = holdings.iter().map(|b| b.fpga).collect();
        fpgas.sort_unstable();
        fpgas.dedup();
        assert_eq!(fpgas.len(), 1, "migrated onto one FPGA");
        // Idempotent: nothing left to do.
        assert!(c.defragment().is_empty());
        // Teardown still releases everything.
        c.undeploy(spanner.tenant()).unwrap();
        for f in fillers.into_iter().skip(1) {
            c.undeploy(f.tenant()).unwrap();
        }
    }

    #[test]
    fn heterogeneous_cluster_deploys_across_mixed_devices() {
        // Two big boards and one small one; the same bitstreams deploy
        // everywhere because blocks are identical.
        let c = SystemController::with_layout(RuntimeConfig::paper_cluster(), vec![15, 15, 4]);
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("het");
        spec.add_operator("m", Operator::MacArray { pes: 100 }); // ~2 blocks
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let mut handles = Vec::new();
        while let Ok(h) = c.deploy("het") {
            handles.push(h);
        }
        // 34 blocks / 2 per deployment -> 17 instances, some on the small
        // board.
        assert!(handles.len() >= 16, "deployed {}", handles.len());
        let used_small = handles
            .iter()
            .any(|h| h.placed().addresses().any(|a| a.fpga.index() == 2));
        assert!(used_small, "the small board must participate");
    }

    #[test]
    fn register_compiled_reuses_cached_images() {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        let spec_named = |name: &str| {
            let mut spec = AppSpec::new(name);
            spec.add_operator("m", Operator::MacArray { pes: 8 });
            spec
        };
        let cold = c.register_compiled(&compiler, &spec_named("orig")).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.timings.is_some());
        // Identical netlist under another name: cached images, zero P&R.
        let warm = c.register_compiled(&compiler, &spec_named("copy")).unwrap();
        assert!(warm.cache_hit);
        assert!(warm.timings.is_none());
        assert_eq!(warm.digest, cold.digest);
        assert_eq!(c.bitstreams().get("copy").unwrap().digest(), cold.digest);
        // Replaying a spec is idempotent, and both names deploy.
        let replay = c.register_compiled(&compiler, &spec_named("copy")).unwrap();
        assert!(replay.cache_hit);
        let h = c.deploy("copy").unwrap();
        c.undeploy(h.tenant()).unwrap();
        let stats = c.bitstreams().cache_stats();
        assert!(stats.hits >= 2 && stats.misses >= 1, "stats {stats:?}");
    }

    #[test]
    fn undeploy_completes_teardown_when_memory_errors() {
        // Force the destroy_space failure by removing the space out of
        // band: undeploy must still release blocks, the bandwidth share
        // and the vNIC, then report the memory error.
        let c = controller_with(&[("a", 8)]);
        let free_before = c.resources().total_free();
        let h = c.deploy("a").unwrap();
        c.memory_of(h.primary_fpga())
            .destroy_space(h.tenant())
            .unwrap();
        let err = c.undeploy(h.tenant()).unwrap_err();
        assert!(matches!(err, RuntimeError::Periph(_)), "got {err}");
        // Nothing leaked despite the error.
        assert_eq!(c.resources().total_free(), free_before);
        assert_eq!(c.switch().nic_count(), 0);
        assert_eq!(c.arbiter_of(h.primary_fpga()).total_demand_gbps(), 0.0);
        assert!(c.live_tenants().is_empty());
        // The tenant is gone: a second undeploy is UnknownTenant.
        assert!(matches!(
            c.undeploy(h.tenant()),
            Err(RuntimeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn deploy_rolls_back_when_bandwidth_floor_unmet() {
        // One 15-block FPGA; each deploy asks for a quarter of the
        // channel, so the fifth oversubscribes it and must be rejected
        // with nothing left behind.
        let mut config = RuntimeConfig::paper_cluster();
        config.min_bandwidth_fraction = 1.0;
        let c = SystemController::with_layout(config, vec![15]);
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("one");
        spec.add_operator("m", Operator::MacArray { pes: 8 }); // 1 block
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let handles: Vec<_> = (0..4).map(|_| c.deploy("one").unwrap()).collect();
        for h in &handles {
            assert!(
                (h.bandwidth().granted_gbps - h.bandwidth().requested_gbps).abs() < 1e-6,
                "undersubscribed grants meet demand: {:?}",
                h.bandwidth()
            );
        }
        let free = c.resources().total_free();
        let spaces = c.memory_of(0).tenant_count();
        let demand = c.arbiter_of(0).total_demand_gbps();
        let err = c.deploy("one").unwrap_err();
        assert!(
            matches!(err, RuntimeError::BandwidthUnavailable { fpga: 0, .. }),
            "got {err}"
        );
        // The rejected deploy left no trace.
        assert_eq!(c.resources().total_free(), free);
        assert_eq!(c.memory_of(0).tenant_count(), spaces);
        assert_eq!(c.arbiter_of(0).total_demand_gbps(), demand);
        assert_eq!(c.switch().nic_count(), 4);
        assert_eq!(c.live_tenants().len(), 4);
        // Freeing one tenant clears the floor again.
        c.undeploy(handles[0].tenant()).unwrap();
        assert!(c.deploy("one").is_ok());
    }

    #[test]
    fn fail_fpga_migrates_tenants_to_survivors() {
        let c = controller_with(&[("a", 8)]);
        let h = c.deploy("a").unwrap();
        let home = h.primary_fpga();
        let block_count = c.resources().holdings(h.tenant()).len();
        // DRAM contents on the board that will crash.
        c.memory_of(home).write(h.tenant(), 0, b"gone").unwrap();
        let report = c.fail_fpga(home);
        assert_eq!(report.migrated.len(), 1);
        assert!(report.torn_down.is_empty());
        let m = &report.migrated[0];
        assert_eq!(m.tenant, h.tenant());
        assert!(m.reconfig > Duration::ZERO);
        // The live placement avoids the failed board entirely.
        let holdings = c.resources().holdings(h.tenant());
        assert_eq!(holdings.len(), block_count);
        assert!(holdings.iter().all(|b| b.fpga.index() as usize != home));
        // DRAM moved to the new primary with the same quota, zeroed.
        let live = c.tenants.lock().get(&h.tenant()).unwrap().handle.clone();
        assert_ne!(live.primary_fpga(), home);
        let stats = c.memory_of(live.primary_fpga()).stats(h.tenant()).unwrap();
        assert_eq!(stats.quota_bytes, c.config().default_quota_bytes);
        let mut buf = [0u8; 4];
        c.memory_of(live.primary_fpga())
            .read(h.tenant(), 0, &mut buf)
            .unwrap();
        assert_eq!(buf, [0u8; 4], "crashed board's contents are lost");
        assert_eq!(c.failure_stats().fpga_failures, 1);
        assert_eq!(c.failure_stats().tenants_migrated, 1);
        // Undeploy still tears everything down cleanly.
        c.undeploy(h.tenant()).unwrap();
        assert_eq!(c.switch().nic_count(), 0);
        // Recovery restores the board's capacity.
        assert_eq!(c.resources().health_of(home), FpgaHealth::Offline);
        c.recover_fpga(home);
        assert_eq!(c.resources().health_of(home), FpgaHealth::Online);
        assert_eq!(c.resources().total_free(), 60);
    }

    #[test]
    fn fail_fpga_tears_down_unplaceable_tenants() {
        // A 10-block tenant on the only board big enough: when that board
        // dies there is nowhere to go.
        let c = SystemController::with_layout(RuntimeConfig::paper_cluster(), vec![15, 4]);
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("big");
        spec.add_operator(
            "x",
            Operator::Custom {
                slices: 200,
                dsps: 4_700,
                brams: 0,
            },
        );
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let h = c.deploy("big").unwrap();
        assert_eq!(h.primary_fpga(), 0);
        let report = c.fail_fpga(0);
        assert!(report.migrated.is_empty());
        assert_eq!(report.torn_down, vec![h.tenant()]);
        assert!(c.live_tenants().is_empty());
        assert_eq!(c.switch().nic_count(), 0);
        assert_eq!(c.memory_of(0).tenant_count(), 0);
        assert_eq!(c.arbiter_of(0).total_demand_gbps(), 0.0);
        assert_eq!(c.failure_stats().tenants_torn_down, 1);
    }

    #[test]
    fn evacuate_drains_by_migration_without_dram_loss() {
        let c = controller_with(&[("a", 8)]);
        let h = c.deploy("a").unwrap();
        let home = h.primary_fpga();
        c.memory_of(home).write(h.tenant(), 0, b"kept").unwrap();
        let report = c.evacuate(home);
        assert_eq!(report.migrated.len(), 1);
        assert!(report.unmoved.is_empty());
        // Logic moved off, the board is empty and draining.
        assert!(c
            .resources()
            .holdings(h.tenant())
            .iter()
            .all(|b| b.fpga.index() as usize != home));
        assert!(c.resources().tenants_on(home).is_empty());
        assert_eq!(c.resources().health_of(home), FpgaHealth::Draining);
        // The board stayed powered: DRAM home and contents are intact.
        let mut buf = [0u8; 4];
        c.memory_of(home).read(h.tenant(), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"kept");
        // No new deployment lands on the draining board.
        let h2 = c.deploy("a").unwrap();
        assert!(c
            .resources()
            .holdings(h2.tenant())
            .iter()
            .all(|b| b.fpga.index() as usize != home));
        assert_eq!(c.failure_stats().evacuations, 1);
        c.undeploy(h.tenant()).unwrap();
        c.undeploy(h2.tenant()).unwrap();
        assert_eq!(c.switch().nic_count(), 0);
    }

    #[test]
    fn evacuate_reports_unmovable_tenants() {
        // Both boards nearly full: the tenant on the draining board has
        // nowhere to go and must stay, unharmed.
        let c = SystemController::with_layout(RuntimeConfig::paper_cluster(), vec![15, 15]);
        let compiler = Compiler::new(CompilerConfig::default());
        for (name, dsps) in [("twelve", 5_600u32), ("eight", 3_700u32)] {
            let mut spec = AppSpec::new(name);
            spec.add_operator(
                "x",
                Operator::Custom {
                    slices: 200,
                    dsps,
                    brams: 0,
                },
            );
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        let a = c.deploy("twelve").unwrap(); // 12 blocks on board 0
        let b = c.deploy("twelve").unwrap(); // 12 blocks on board 1
        assert_ne!(a.primary_fpga(), b.primary_fpga());
        let report = c.evacuate(a.primary_fpga());
        assert!(report.migrated.is_empty());
        assert_eq!(report.unmoved, vec![a.tenant()]);
        // The tenant still runs where it was.
        assert_eq!(c.resources().holdings(a.tenant()).len(), 12);
        // Freeing the other board lets a retry finish the drain.
        c.undeploy(b.tenant()).unwrap();
        let retry = c.evacuate(a.primary_fpga());
        assert_eq!(retry.migrated.len(), 1);
        assert!(retry.unmoved.is_empty());
        c.undeploy(a.tenant()).unwrap();
    }

    #[test]
    fn try_with_layout_rejects_degenerate_clusters() {
        let cfg = RuntimeConfig::paper_cluster();
        assert!(matches!(
            SystemController::try_with_layout(cfg, vec![]),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(matches!(
            SystemController::try_with_layout(cfg, vec![15, 0, 15]),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(SystemController::try_with_layout(cfg, vec![15, 15]).is_ok());
    }

    #[test]
    fn controller_ops_emit_spans_with_allocation_fields() {
        use vital_telemetry::{FieldValue, Telemetry};
        let tel = Telemetry::recording();
        let c = SystemController::new(RuntimeConfig::paper_cluster()).with_telemetry(tel.clone());
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("a");
        spec.add_operator("m", Operator::MacArray { pes: 8 });
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let h = c.deploy("a").unwrap();
        c.evacuate(h.primary_fpga());
        c.defragment();
        c.fail_fpga(h.primary_fpga());
        c.undeploy(h.tenant()).ok();

        let recs = tel.records();
        let deploy = recs.iter().find(|r| r.name == "runtime.deploy").unwrap();
        let keys: Vec<&str> = deploy.fields.iter().map(|(k, _)| *k).collect();
        for key in ["app", "needed", "round", "fpgas_used", "hop_cost", "tenant"] {
            assert!(keys.contains(&key), "deploy span missing {key}: {keys:?}");
        }
        assert_eq!(
            deploy
                .fields
                .iter()
                .find(|(k, _)| *k == "hop_cost")
                .unwrap()
                .1,
            FieldValue::U64(0),
            "single-FPGA deploy has zero hop cost"
        );
        for op in [
            "runtime.evacuate",
            "runtime.defragment",
            "runtime.fail_fpga",
            "runtime.undeploy",
        ] {
            assert!(recs.iter().any(|r| r.name == op), "missing span {op}");
        }
        assert_eq!(tel.metrics().counters["runtime.deploys"], 1);
    }

    #[test]
    fn deployments_can_span_fpgas_under_pressure() {
        let c = controller_with(&[("big", 560)]); // 10 blocks (DSP-bound)
        let mut spanned = false;
        let mut handles = Vec::new();
        while let Ok(h) = c.deploy("big") {
            spanned |= h.fpga_count() > 1;
            handles.push(h);
        }
        assert!(
            spanned,
            "10-block apps on 15-block FPGAs must eventually span"
        );
    }
}
