//! The system controller: ViTAL's API surface toward the higher-level
//! cloud stack (hypervisor), paper Fig. 6.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use std::collections::HashMap;
use vital_checkpoint::{
    quiesce_all, ChannelCheckpoint, PlacementMeta, PortableCheckpoint, ScanState, TenantCheckpoint,
};
use vital_cluster::Topology;
use vital_compiler::{
    AppBitstream, Compiler, NetlistDigest, PlacedBitstream, RelocationTarget, StageTimings,
    BLOCK_CONFIG_BITS,
};
use vital_fabric::FpgaId;
use vital_interface::{ApiError, Channel, ChannelPlan, ChannelSpec, LinkClass};
use vital_isa::{IsaProgram, IsaTemplate, TilePool, TILE_SWITCH_S};
use vital_netlist::hls::AppSpec;
use vital_periph::{
    BandwidthArbiter, MemoryManager, ShareGrant, TenantId, VirtualNic, VirtualSwitch,
};
use vital_telemetry::Telemetry;

use crate::api::{
    ControlRequest, ControlResponse, DeployBackend, DeployRequest, DeploySummary,
    EvacuationSummary, FailureSummary, FpgaStatus, MigratePolicy, MigrationSummary, ScaleSummary,
    StatusSummary, SuspendSummary,
};
use crate::farm::{BuildFarm, FlightResult, FlightRole};
use crate::{
    allocate_blocks_on, AllocationOutcome, BitstreamDatabase, FarmStats, FpgaHealth,
    ResourceDatabase, RuntimeError,
};

/// A pluggable compiler hook for [`ControlRequest::Prepare`]: given an
/// application name the controller has never seen, produce (usually
/// compile) its bitstream. Installed with
/// [`SystemController::set_app_resolver`]; a controller without one
/// answers `Prepare` for unknown names with [`RuntimeError::UnknownApp`].
pub type AppResolver = Box<dyn Fn(&str) -> Result<AppBitstream, RuntimeError> + Send + Sync>;

/// Configuration of the runtime: cluster shape plus peripheral capacities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// FPGAs in the cluster.
    pub fpgas: usize,
    /// Physical blocks per FPGA.
    pub blocks_per_fpga: usize,
    /// Board DRAM per FPGA in bytes.
    pub dram_bytes_per_fpga: u64,
    /// DRAM page size in bytes.
    pub dram_page_bytes: u64,
    /// DRAM channel bandwidth per FPGA in Gb/s.
    pub dram_gbps: f64,
    /// Default DRAM quota granted per deployment, in bytes.
    pub default_quota_bytes: u64,
    /// ICAP throughput used to model partial-reconfiguration time, in Gb/s.
    pub icap_gbps: f64,
    /// Admission floor for the DRAM bandwidth share, as a fraction of the
    /// share a deployment requests (`dram_gbps / 4`). A deploy whose
    /// granted share falls below the floor is rolled back with
    /// [`RuntimeError::BandwidthUnavailable`]; `0.0` (the default) merely
    /// records the grant without gating admission.
    pub min_bandwidth_fraction: f64,
}

impl RuntimeConfig {
    /// The paper's platform: 4 FPGAs × 15 blocks; two DIMM sites of up to
    /// 128 GB each per board (§5.2) — modelled as 64 GiB of usable DRAM.
    pub fn paper_cluster() -> Self {
        RuntimeConfig {
            fpgas: 4,
            blocks_per_fpga: 15,
            dram_bytes_per_fpga: 64 << 30,
            dram_page_bytes: 2 << 20,
            dram_gbps: 153.6, // DDR4-2400 x72, two channels
            default_quota_bytes: 1 << 30,
            icap_gbps: 6.4,
            min_bandwidth_fraction: 0.0,
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

/// A live deployment returned by [`SystemController::deploy`].
#[derive(Debug, Clone)]
pub struct DeployHandle {
    tenant: TenantId,
    placed: PlacedBitstream,
    nic: VirtualNic,
    primary_fpga: usize,
    reconfig: Duration,
    bandwidth: ShareGrant,
}

impl DeployHandle {
    /// The tenant id owning this deployment.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The bound bitstream (which physical blocks are used).
    pub fn placed(&self) -> &PlacedBitstream {
        &self.placed
    }

    /// The tenant's virtual NIC.
    pub fn nic(&self) -> VirtualNic {
        self.nic
    }

    /// The FPGA hosting the majority of the blocks (and the tenant's DRAM).
    pub fn primary_fpga(&self) -> usize {
        self.primary_fpga
    }

    /// Distinct FPGAs the deployment spans.
    pub fn fpga_count(&self) -> usize {
        self.placed.fpga_count()
    }

    /// Modelled partial-reconfiguration time for this deployment.
    pub fn reconfig_duration(&self) -> Duration {
        self.reconfig
    }

    /// The DRAM bandwidth share granted at admission time. The live grant
    /// shifts as tenants come and go — query
    /// [`SystemController::arbiter_of`] for the current value.
    pub fn bandwidth(&self) -> ShareGrant {
        self.bandwidth
    }
}

/// What [`SystemController::register_compiled`] did for a spec.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// Content digest of the spec's compile input.
    pub digest: NetlistDigest,
    /// `true` if a cached image was reused and no place-and-route ran.
    pub cache_hit: bool,
    /// `true` if this request blocked on another request's in-flight
    /// compile of the same digest (single-flight follower) instead of
    /// compiling itself; such outcomes are also cache hits.
    pub shared: bool,
    /// Stage timings of the compile that ran; `None` on a cache hit.
    pub timings: Option<StageTimings>,
}

/// One completed tenant relocation: the tenant's logic moved to a new set
/// of physical blocks by partial reconfiguration — never recompilation —
/// whether triggered by [`SystemController::defragment`],
/// [`SystemController::evacuate`], or [`SystemController::fail_fpga`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// The migrated tenant.
    pub tenant: TenantId,
    /// Distinct FPGAs spanned before the move.
    pub fpgas_before: usize,
    /// Distinct FPGAs spanned after the move.
    pub fpgas_after: usize,
    /// Modelled partial-reconfiguration time to program the new blocks —
    /// the downtime the move charges the tenant.
    pub reconfig: Duration,
    /// Total ring-hop cost of the placement before the move.
    pub hop_cost_before: usize,
    /// Total ring-hop cost of the placement after the move. Defragmentation
    /// never lets this exceed `hop_cost_before`.
    pub hop_cost_after: usize,
}

/// What [`SystemController::fail_fpga`] did to the affected tenants.
#[derive(Debug, Clone, Default)]
pub struct FailureReport {
    /// Tenants relocated onto surviving devices. A tenant whose DRAM
    /// lived on the failed board gets a fresh (zeroed) space on its new
    /// primary — the contents died with the board.
    pub migrated: Vec<Migration>,
    /// Tenants torn down because no surviving placement could hold them.
    pub torn_down: Vec<TenantId>,
}

/// What [`SystemController::evacuate`] managed to move.
#[derive(Debug, Clone, Default)]
pub struct EvacuationReport {
    /// Tenants live-migrated off the draining device. Their DRAM contents
    /// and channel state move with them byte-for-byte, so the drained
    /// board can be powered down afterwards.
    pub migrated: Vec<Migration>,
    /// Tenants left in place because no other placement currently fits;
    /// retry after capacity frees up.
    pub unmoved: Vec<TenantId>,
}

/// Monotonic failure/recovery counters of one controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    /// Devices declared failed via [`SystemController::fail_fpga`].
    pub fpga_failures: u64,
    /// Devices brought back via [`SystemController::recover_fpga`].
    pub fpga_recoveries: u64,
    /// Evacuations started via [`SystemController::evacuate`].
    pub evacuations: u64,
    /// Tenants successfully relocated by failure handling or evacuation.
    pub tenants_migrated: u64,
    /// Tenants torn down because they could not be re-placed.
    pub tenants_torn_down: u64,
}

struct TenantState {
    handle: DeployHandle,
    /// Live latency-insensitive channels of the tenant's interface, one
    /// per planned channel, with link classes derived from the current
    /// placement. This is the state a suspend must not lose.
    channels: Vec<Channel>,
    /// The tenant's interface clock in cycles; advances via
    /// [`SystemController::run_tenant`] / [`SystemController::settle_tenant`].
    clock: u64,
}

/// RAII rollback for a half-built deployment: every resource acquired so
/// far — claimed blocks, DRAM space, bandwidth share, vNIC — is released
/// on drop unless [`TeardownGuard::commit`] disarms the guard. `deploy` is
/// transactional because every early return runs through this drop.
struct TeardownGuard<'a> {
    ctl: &'a SystemController,
    tenant: TenantId,
    blocks_claimed: bool,
    memory_fpga: Option<usize>,
    arbiter_fpga: Option<usize>,
    nic: Option<VirtualNic>,
    armed: bool,
}

impl<'a> TeardownGuard<'a> {
    fn new(ctl: &'a SystemController, tenant: TenantId) -> Self {
        TeardownGuard {
            ctl,
            tenant,
            blocks_claimed: false,
            memory_fpga: None,
            arbiter_fpga: None,
            nic: None,
            armed: true,
        }
    }

    fn commit(mut self) {
        self.armed = false;
    }
}

impl Drop for TeardownGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Unwind in reverse acquisition order; each step is independent so
        // one failing never skips the rest.
        if let Some(nic) = self.nic.take() {
            let _ = self.ctl.switch.destroy_nic(nic);
        }
        if let Some(f) = self.arbiter_fpga.take() {
            let _ = self.ctl.arbiters[f].release(self.tenant);
        }
        if let Some(f) = self.memory_fpga.take() {
            let _ = self.ctl.memory[f].destroy_space(self.tenant);
        }
        if self.blocks_claimed {
            self.ctl.resources.release(self.tenant);
        }
    }
}

/// The ViTAL system controller.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct SystemController {
    config: RuntimeConfig,
    resources: ResourceDatabase,
    bitstreams: BitstreamDatabase,
    /// Interconnect shape the allocator and hop-cost accounting consult.
    /// Defaults to the paper's single ring over the cluster's FPGAs;
    /// [`SystemController::with_topology`] swaps in a pod graph.
    topology: Arc<Topology>,
    memory: Vec<MemoryManager>,
    arbiters: Vec<BandwidthArbiter>,
    switch: VirtualSwitch,
    tenants: Mutex<HashMap<TenantId, TenantState>>,
    /// Parked checkpoints of suspended tenants, keyed by tenant id.
    suspended: Mutex<HashMap<TenantId, TenantCheckpoint>>,
    next_tenant: AtomicU64,
    failure_stats: Mutex<FailureStats>,
    telemetry: Telemetry,
    /// Optional compile hook for [`ControlRequest::Prepare`]. Stored
    /// behind an `Arc` so a prepare can run the resolver *outside* the
    /// lock — concurrent prepares of different apps compile in parallel,
    /// and same-app prepares dedupe through the farm's single-flight
    /// table instead of serializing on this mutex.
    resolver: Mutex<Option<Arc<AppResolver>>>,
    /// The build-farm layer: single-flight tables, demand profile,
    /// persistence path, and counters (DESIGN.md §14).
    farm: BuildFarm,
    /// Bumped at the *end* of every mutation that feeds
    /// [`SystemController::status_summary`] (via [`StatusDirty`] drop
    /// guards, so early error returns bump too).
    status_gen: AtomicU64,
    /// Memoized snapshot keyed by the generation it was built at. The
    /// control plane is read-mostly — thousands of `Status` polls per
    /// mutation — so serving a clone of the cached summary instead of
    /// re-walking every block turns `Status` from the most expensive
    /// read into the cheapest.
    status_cache: Mutex<Option<(u64, StatusSummary)>>,
    /// The ISA deployment backend (DESIGN.md §16): a static accelerator
    /// template whose compute tiles are granted to tenants as elastic
    /// shares. `None` until [`SystemController::enable_isa`] runs; ISA
    /// requests against a disabled backend answer
    /// [`RuntimeError::IsaBackendDisabled`].
    isa: Mutex<Option<IsaBackendState>>,
    /// Name of the device model this controller's fabric is built from,
    /// recorded in portable checkpoints as the source geometry. Purely
    /// descriptive — restore never branches on it (DESIGN.md §17).
    geometry: String,
}

/// Live state of the ISA backend: the template, who owns which tiles,
/// and each tenant's compiled instruction stream.
struct IsaBackendState {
    template: IsaTemplate,
    pool: TilePool,
    tenants: HashMap<TenantId, IsaTenantState>,
}

struct IsaTenantState {
    app: String,
    program: IsaProgram,
}

/// Drop guard that marks the status snapshot stale. Bumping on drop —
/// after the mutation finished — means a concurrent `status_summary`
/// that observed partial state can never be served past this point: its
/// cache entry is keyed to the pre-bump generation.
struct StatusDirty<'a>(&'a AtomicU64);

impl Drop for StatusDirty<'_> {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Release);
    }
}

impl fmt::Debug for SystemController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemController")
            .field("config", &self.config)
            .field("registered_apps", &self.bitstreams.len())
            .field("live_tenants", &self.tenants.lock().len())
            .finish()
    }
}

impl SystemController {
    /// Creates a controller over an idle homogeneous cluster.
    pub fn new(config: RuntimeConfig) -> Self {
        let layout = vec![config.blocks_per_fpga; config.fpgas];
        Self::with_layout(config, layout)
    }

    /// Creates a controller over a *heterogeneous* cluster: one entry per
    /// FPGA giving its block count. Because every block is identical, the
    /// same relocatable bitstreams deploy across mixed devices (paper §7).
    ///
    /// # Panics
    ///
    /// Panics if `layout` is empty or contains a zero.
    pub fn with_layout(config: RuntimeConfig, layout: Vec<usize>) -> Self {
        let fpgas = layout.len();
        SystemController {
            resources: ResourceDatabase::with_layout(layout),
            bitstreams: BitstreamDatabase::new(),
            topology: Arc::new(Topology::ring(fpgas)),
            memory: (0..fpgas)
                .map(|_| MemoryManager::new(config.dram_bytes_per_fpga, config.dram_page_bytes))
                .collect(),
            arbiters: (0..fpgas)
                .map(|_| BandwidthArbiter::new(config.dram_gbps))
                .collect(),
            switch: VirtualSwitch::new(),
            tenants: Mutex::new(HashMap::new()),
            suspended: Mutex::new(HashMap::new()),
            next_tenant: AtomicU64::new(1),
            failure_stats: Mutex::new(FailureStats::default()),
            telemetry: Telemetry::disabled(),
            resolver: Mutex::new(None),
            farm: BuildFarm::default(),
            status_gen: AtomicU64::new(0),
            status_cache: Mutex::new(None),
            isa: Mutex::new(None),
            geometry: "XCVU37P".to_string(),
            config,
        }
    }

    /// Non-panicking variant of [`SystemController::with_layout`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `layout` is empty or
    /// contains a zero-block FPGA.
    pub fn try_with_layout(
        config: RuntimeConfig,
        layout: Vec<usize>,
    ) -> Result<Self, RuntimeError> {
        if layout.is_empty() {
            return Err(RuntimeError::InvalidConfig(
                "cluster layout is empty".to_string(),
            ));
        }
        if let Some(f) = layout.iter().position(|&n| n == 0) {
            return Err(RuntimeError::InvalidConfig(format!(
                "FPGA {f} has zero blocks"
            )));
        }
        Ok(Self::with_layout(config, layout))
    }

    /// Attaches a telemetry handle: `deploy`/`undeploy`/`fail_fpga`/
    /// `evacuate`/`defragment` then emit spans carrying allocation round,
    /// fpgas-used and ring-hop-cost fields. The default handle is disabled
    /// and costs nothing.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Names the device model behind this controller's fabric (default
    /// `"XCVU37P"`). The name is stamped into portable checkpoints as
    /// their source geometry; it does not change block counts — pass a
    /// matching layout for that.
    #[must_use]
    pub fn with_geometry(mut self, name: &str) -> Self {
        self.geometry = name.to_string();
        self
    }

    /// The device-model name stamped into portable checkpoints.
    pub fn geometry(&self) -> &str {
        &self.geometry
    }

    /// Enables the ISA deployment backend with a template of `tiles`
    /// compute tiles (builder form of [`SystemController::enable_isa`]).
    #[must_use]
    pub fn with_isa_backend(self, tiles: usize) -> Self {
        self.enable_isa(tiles);
        self
    }

    /// Enables (or resizes an empty) ISA backend: a static accelerator
    /// template of `tiles` compute tiles, shared elastically between
    /// ISA tenants. Idempotent while no ISA tenants are live; with live
    /// tenants the existing pool is kept.
    pub fn enable_isa(&self, tiles: usize) {
        let _dirty = self.mark_status_dirty();
        let mut isa = self.isa.lock();
        match isa.as_ref() {
            Some(state) if !state.tenants.is_empty() => {}
            _ => {
                *isa = Some(IsaBackendState {
                    template: IsaTemplate::new(tiles),
                    pool: TilePool::new(tiles),
                    tenants: HashMap::new(),
                });
            }
        }
    }

    /// `true` once [`SystemController::enable_isa`] has run.
    pub fn isa_enabled(&self) -> bool {
        self.isa.lock().is_some()
    }

    /// Swaps the default single-ring interconnect for an explicit
    /// [`Topology`] (e.g. [`Topology::pods`]): the §3.4 allocator and all
    /// hop-cost accounting then follow the graph's distances, so spans
    /// prefer nearby devices in the *actual* interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if the topology's FPGA
    /// count differs from the cluster layout's.
    pub fn with_topology(mut self, topology: Topology) -> Result<Self, RuntimeError> {
        if topology.len() != self.resources.fpga_count() {
            return Err(RuntimeError::InvalidConfig(format!(
                "topology covers {} FPGAs but the cluster has {}",
                topology.len(),
                self.resources.fpga_count()
            )));
        }
        self.topology = Arc::new(topology);
        Ok(self)
    }

    /// The interconnect topology the allocator consults.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The resource database (read access for monitoring).
    pub fn resources(&self) -> &ResourceDatabase {
        &self.resources
    }

    /// The bitstream database.
    pub fn bitstreams(&self) -> &BitstreamDatabase {
        &self.bitstreams
    }

    /// The DRAM manager of one FPGA.
    ///
    /// # Panics
    ///
    /// Panics if `fpga` is out of range.
    pub fn memory_of(&self, fpga: usize) -> &MemoryManager {
        &self.memory[fpga]
    }

    /// The DRAM bandwidth arbiter of one FPGA.
    ///
    /// # Panics
    ///
    /// Panics if `fpga` is out of range.
    pub fn arbiter_of(&self, fpga: usize) -> &BandwidthArbiter {
        &self.arbiters[fpga]
    }

    /// The cluster's virtual Ethernet switch.
    pub fn switch(&self) -> &VirtualSwitch {
        &self.switch
    }

    /// Registers a compiled application in the bitstream database.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::AppExists`] if the name is already taken.
    pub fn register(&self, bitstream: AppBitstream) -> Result<(), RuntimeError> {
        self.bitstreams.insert(bitstream)?;
        self.persist_bitstreams();
        Ok(())
    }

    /// Arms bitstream-database persistence on `path` (the build farm's
    /// across-restart cache, DESIGN.md §14). If the file exists its
    /// contents are loaded immediately — a restarted daemon then serves
    /// deploys of previously compiled apps with **zero** place-and-route —
    /// and every subsequent mutation of the database re-saves it
    /// atomically (temp file + rename). Save failures are counted in
    /// [`FarmStats::persist_errors`] but never fail the mutation that
    /// triggered them.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if the file exists but
    /// cannot be read or parsed — a corrupt cache should be surfaced (and
    /// deleted by the operator), not silently rebuilt from scratch.
    pub fn with_persistence(
        mut self,
        path: impl Into<std::path::PathBuf>,
    ) -> Result<Self, RuntimeError> {
        let path = path.into();
        match std::fs::read_to_string(&path) {
            Ok(json) => {
                let db = BitstreamDatabase::from_json(&json).map_err(|e| {
                    RuntimeError::InvalidConfig(format!("persisted {}: {e}", path.display()))
                })?;
                self.farm
                    .counters
                    .persist_loaded
                    .store(db.len() as u64, Ordering::Relaxed);
                self.bitstreams = db;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(RuntimeError::InvalidConfig(format!(
                    "cannot read persisted bitstream database {}: {e}",
                    path.display()
                )));
            }
        }
        let sidecar = Self::demand_sidecar(&path);
        match std::fs::read_to_string(&sidecar) {
            Ok(json) => {
                let snapshot: crate::farm::DemandSnapshot =
                    serde_json::from_str(&json).map_err(|e| {
                        RuntimeError::InvalidConfig(format!(
                            "persisted demand profile {} is corrupt: {e}",
                            sidecar.display()
                        ))
                    })?;
                snapshot
                    .format_version
                    .check("demand profile")
                    .map_err(|e| {
                        RuntimeError::InvalidConfig(format!("persisted {}: {e}", sidecar.display()))
                    })?;
                let apps = self.farm.demand.restore(snapshot);
                self.farm
                    .counters
                    .demand_loaded
                    .store(apps as u64, Ordering::Relaxed);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(RuntimeError::InvalidConfig(format!(
                    "cannot read persisted demand profile {}: {e}",
                    sidecar.display()
                )));
            }
        }
        self.farm.persist_path = Some(path);
        Ok(self)
    }

    /// The demand profile's sidecar file: the persistence path with
    /// `.demand` appended (not substituted), so `cache.json` pairs with
    /// `cache.json.demand`.
    fn demand_sidecar(path: &std::path::Path) -> std::path::PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".demand");
        std::path::PathBuf::from(os)
    }

    /// Best-effort save of the demand profile to its sidecar (no-op when
    /// persistence is off). Same discipline as the bitstream database:
    /// temp file + rename under the shared persist lock. Without this a
    /// restarted `vitald --persist --speculate-ms` came up with a warm
    /// bitstream cache but a **cold** demand ranking, so speculation sat
    /// idle until traffic re-taught it what was hot.
    fn persist_demand(&self) {
        let Some(path) = self.farm.persist_path.as_ref() else {
            return;
        };
        let sidecar = Self::demand_sidecar(path);
        let _serialized = self
            .farm
            .persist_lock
            .lock()
            .expect("persist mutex poisoned");
        let saved = serde_json::to_string(&self.farm.demand.snapshot())
            .ok()
            .and_then(|json| {
                let tmp = sidecar.with_extension("tmp");
                std::fs::write(&tmp, json).ok()?;
                std::fs::rename(&tmp, &sidecar).ok()
            });
        match saved {
            Some(()) => {
                self.farm
                    .counters
                    .demand_saves
                    .fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.farm
                    .counters
                    .persist_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A snapshot of the build-farm counters.
    pub fn farm_stats(&self) -> FarmStats {
        self.farm.counters.snapshot()
    }

    /// Best-effort save of the bitstream database to the persistence path
    /// (no-op when persistence is off). Writes a sibling temp file and
    /// renames it over the target so readers never observe a torn file.
    /// Saves are serialized: the snapshot, the temp write, and the rename
    /// all happen under one lock, so concurrent mutators can neither tear
    /// the shared temp file nor publish an older snapshot over a newer one.
    fn persist_bitstreams(&self) {
        let Some(path) = self.farm.persist_path.as_ref() else {
            return;
        };
        let _serialized = self
            .farm
            .persist_lock
            .lock()
            .expect("persist mutex poisoned");
        let saved = self.bitstreams.to_json().ok().and_then(|json| {
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, json).ok()?;
            std::fs::rename(&tmp, path).ok()
        });
        match saved {
            Some(()) => {
                self.farm
                    .counters
                    .persist_saves
                    .fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.farm
                    .counters
                    .persist_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Compiles and registers `spec` under its name — unless a registered
    /// bitstream already carries the same content digest, in which case the
    /// cached images are reused verbatim and **no place-and-route runs**
    /// (only the cheap synthesis needed to compute the digest). This is
    /// the compile-cache fast path: a repeat deploy of an identical netlist
    /// goes straight to allocation.
    ///
    /// Concurrent calls for the same digest are **single-flight**: one
    /// caller leads the compile, the others block until it publishes and
    /// then serve the freshly cached image ([`CompileOutcome::shared`]).
    /// N identical requests cost exactly one place-and-route. If the
    /// leader's compile fails, the followers receive the same error; if
    /// the leader panics, the next waiter elects itself leader and
    /// retries.
    ///
    /// Registration is idempotent for byte-identical images (see
    /// [`BitstreamDatabase::insert_or_get`]), so replaying the same spec is
    /// harmless.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Compile`] if synthesis or compilation fails.
    /// * [`RuntimeError::AppExists`] if the name is taken by a different
    ///   image.
    pub fn register_compiled(
        &self,
        compiler: &Compiler,
        spec: &AppSpec,
    ) -> Result<CompileOutcome, RuntimeError> {
        let digest = compiler.digest_of(spec).map_err(RuntimeError::Compile)?;
        let mut shared = false;
        loop {
            if let Some(cached) = self.bitstreams.get_by_digest(digest) {
                self.bitstreams.insert_or_get(cached.renamed(spec.name()))?;
                self.persist_bitstreams();
                return Ok(CompileOutcome {
                    digest,
                    cache_hit: true,
                    shared,
                    timings: None,
                });
            }
            match self.farm.by_digest.join(digest) {
                FlightRole::Leader(flight) => {
                    // A previous leader may have cached the digest between
                    // this caller's probe and its election; re-check before
                    // paying for a compile.
                    if self.bitstreams.contains_digest(digest) {
                        flight.publish(Ok(()));
                        continue;
                    }
                    self.farm.counters.compiles.fetch_add(1, Ordering::Relaxed);
                    let compiled = match compiler.compile(spec) {
                        Ok(c) => c,
                        Err(e) => {
                            let err = RuntimeError::Compile(e);
                            flight.publish(Err(err.clone()));
                            return Err(err);
                        }
                    };
                    let timings = compiled.timings().clone();
                    if let Err(e) = self.bitstreams.insert_or_get(compiled.into_bitstream()) {
                        flight.publish(Err(e.clone()));
                        return Err(e);
                    }
                    flight.publish(Ok(()));
                    self.persist_bitstreams();
                    return Ok(CompileOutcome {
                        digest,
                        cache_hit: false,
                        shared,
                        timings: Some(timings),
                    });
                }
                FlightRole::Follower(flight) => {
                    self.farm
                        .counters
                        .single_flight_waits
                        .fetch_add(1, Ordering::Relaxed);
                    shared = true;
                    match flight.wait() {
                        // Leader cached the image: loop and serve the hit.
                        FlightResult::Done(Ok(())) => {}
                        FlightResult::Done(Err(e)) => return Err(e),
                        // Leader unwound; loop to elect a new leader.
                        FlightResult::Aborted => {}
                    }
                }
            }
        }
    }

    /// Deploys a registered application: allocates physical blocks with the
    /// communication-aware policy, binds the relocatable bitstream to them,
    /// provisions DRAM and a virtual NIC, and models the per-block partial
    /// reconfiguration.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownApp`] for unregistered names.
    /// * [`RuntimeError::InsufficientResources`] when the cluster is full.
    /// * [`RuntimeError::Periph`] if DRAM provisioning fails.
    pub fn deploy(&self, name: &str) -> Result<DeployHandle, RuntimeError> {
        self.deploy_with_quota(name, self.config.default_quota_bytes)
    }

    /// Like [`SystemController::deploy`] with an explicit DRAM quota.
    ///
    /// The deployment is **transactional**: an RAII guard unwinds every
    /// resource acquired so far (claimed blocks, DRAM space, bandwidth
    /// share, vNIC) on any failure path, so a failed deploy leaves no
    /// trace.
    ///
    /// # Errors
    ///
    /// Same as [`SystemController::deploy`], plus
    /// [`RuntimeError::BandwidthUnavailable`] when
    /// [`RuntimeConfig::min_bandwidth_fraction`] gates admission and the
    /// arbiter cannot grant the floor.
    ///
    /// This is a thin shim over the unified entry point
    /// ([`SystemController::try_execute`] with a
    /// [`ControlRequest::Deploy`]); prefer building a [`DeployRequest`]
    /// when you already speak the request API.
    pub fn deploy_with_quota(
        &self,
        name: &str,
        quota_bytes: u64,
    ) -> Result<DeployHandle, RuntimeError> {
        let req = DeployRequest::app(name).with_quota_bytes(quota_bytes);
        match self.try_execute(ControlRequest::Deploy(req))? {
            ControlResponse::Deployed(s) => Ok(self
                .handle_of(TenantId::new(s.tenant))
                .expect("freshly deployed tenant has a live handle")),
            other => unreachable!("deploy answered with {other:?}"),
        }
    }

    /// The deploy implementation behind [`ControlRequest::Deploy`] (fresh
    /// placements; restores go through
    /// [`SystemController::do_resume_from`]).
    fn do_deploy(&self, name: &str, quota_bytes: u64) -> Result<DeployHandle, RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let quota_bytes = if quota_bytes == 0 {
            self.config.default_quota_bytes
        } else {
            quota_bytes
        };
        let mut span = self.telemetry.span("runtime.deploy");
        span.field("app", name);
        // Every deploy attempt feeds the build farm's demand profile, so
        // speculative compiles chase what traffic actually asks for —
        // including apps that are not registered yet.
        if self.farm.demand.record(name) {
            self.persist_demand();
        }
        let bitstream = self.bitstreams.get(name)?;
        let needed = bitstream.block_count();
        span.field("needed", needed);

        let alloc = self.allocate_or_explain(needed)?;
        // The §3.4 policy's round number equals the FPGAs admitted.
        span.field("round", alloc.fpgas_used);
        span.field("fpgas_used", alloc.fpgas_used);
        span.field("hop_cost", alloc.hop_cost);

        let tenant = TenantId::new(self.next_tenant.fetch_add(1, Ordering::Relaxed));
        let mut guard = TeardownGuard::new(self, tenant);
        if !self.resources.claim(tenant, &alloc.blocks) {
            // Racy claim lost; report as pressure.
            return Err(RuntimeError::InsufficientResources {
                needed,
                free: self.resources.total_free(),
            });
        }
        guard.blocks_claimed = true;

        let targets: Vec<RelocationTarget> = alloc
            .blocks
            .iter()
            .enumerate()
            .map(|(vb, &addr)| RelocationTarget {
                virtual_block: vb as u32,
                addr,
            })
            .collect();
        let placed = bitstream.bind(&targets).map_err(RuntimeError::Relocation)?;

        let primary_fpga = Self::primary_of(&alloc.blocks);
        self.memory[primary_fpga]
            .create_space(tenant, quota_bytes)
            .map_err(RuntimeError::Periph)?;
        guard.memory_fpga = Some(primary_fpga);

        // Request a quarter of the channel (four blocks share one DIMM in
        // the paper's service region) and gate on the configured floor.
        let share = self.config.dram_gbps / 4.0;
        let grant = self.arbiters[primary_fpga].request(tenant, share);
        guard.arbiter_fpga = Some(primary_fpga);
        let floor = self.config.min_bandwidth_fraction * share;
        if grant.granted_gbps + 1e-9 < floor {
            return Err(RuntimeError::BandwidthUnavailable {
                fpga: primary_fpga,
                requested_gbps: share,
                granted_gbps: grant.granted_gbps,
            });
        }

        let nic = self.switch.create_nic(tenant, 64);
        guard.nic = Some(nic);

        let reconfig = self.reconfig_of(&alloc.blocks);
        let handle = DeployHandle {
            tenant,
            placed,
            nic,
            primary_fpga,
            reconfig,
            bandwidth: grant,
        };
        let channels = Self::channels_for(bitstream.channel_plan(), &alloc.blocks);
        self.tenants.lock().insert(
            tenant,
            TenantState {
                handle: handle.clone(),
                channels,
                clock: 0,
            },
        );
        guard.commit();
        span.field("tenant", tenant.raw());
        self.telemetry.inc_counter("runtime.deploys", 1);
        self.telemetry
            .record_hist("runtime.deploy_hop_cost", alloc.hop_cost as f64);
        Ok(handle)
    }

    /// Runs the §3.4 allocator over the current free lists. On failure,
    /// tells a genuinely full cluster ([`RuntimeError::InsufficientResources`])
    /// apart from capacity parked on a [`Draining`](FpgaHealth::Draining)
    /// device ([`RuntimeError::Draining`], a typed retry-after rejection).
    fn allocate_or_explain(&self, needed: usize) -> Result<AllocationOutcome, RuntimeError> {
        let free_lists: Vec<_> = (0..self.resources.fpga_count())
            .map(|f| self.resources.free_blocks_of(f))
            .collect();
        if let Some(alloc) = allocate_blocks_on(&self.topology, &free_lists, needed) {
            return Ok(alloc);
        }
        let draining = (0..self.resources.fpga_count()).find(|&f| {
            self.resources.health_of(f) == FpgaHealth::Draining
                && self.resources.idle_count_of(f) >= needed
        });
        Err(match draining {
            Some(fpga) => RuntimeError::Draining { fpga, needed },
            None => RuntimeError::InsufficientResources {
                needed,
                free: self.resources.total_free(),
            },
        })
    }

    /// Primary FPGA = the one hosting the most blocks (lowest index wins
    /// ties).
    fn primary_of(blocks: &[vital_fabric::BlockAddr]) -> usize {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for b in blocks {
            *counts.entry(b.fpga.index() as usize).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(f, n)| (n, std::cmp::Reverse(f)))
            .map(|(f, _)| f)
            .unwrap_or(0)
    }

    /// Per-block partial reconfiguration over the FPGA-local ICAPs
    /// (parallel across FPGAs, sequential within one).
    fn reconfig_of(&self, blocks: &[vital_fabric::BlockAddr]) -> Duration {
        let per_block = BLOCK_CONFIG_BITS as f64 / (self.config.icap_gbps * 1.0e9);
        let mut per_fpga: HashMap<u32, u32> = HashMap::new();
        for b in blocks {
            *per_fpga.entry(b.fpga.index()).or_insert(0) += 1;
        }
        let worst = per_fpga.values().copied().max().unwrap_or(0);
        Duration::from_secs_f64(per_block * f64::from(worst))
    }

    /// The link class a channel between two virtual blocks rides on under
    /// a placement: same FPGA → on-chip, different FPGAs → the ring. (The
    /// finer intra/inter-die distinction is the interface planner's
    /// concern; the runtime channel model keys on the FPGA boundary, which
    /// is what changes under migration.)
    fn link_class_of(blocks: &[vital_fabric::BlockAddr], from: u32, to: u32) -> LinkClass {
        match (blocks.get(from as usize), blocks.get(to as usize)) {
            (Some(a), Some(b)) if a.fpga != b.fpga => LinkClass::InterFpga,
            _ => LinkClass::IntraDie,
        }
    }

    /// Builds idle live channels for a placement from the application's
    /// channel plan.
    fn channels_for(plan: &ChannelPlan, blocks: &[vital_fabric::BlockAddr]) -> Vec<Channel> {
        plan.channels()
            .iter()
            .map(|pc| {
                let link = Self::link_class_of(blocks, pc.from_block, pc.to_block);
                Channel::new(ChannelSpec::for_link(link, pc.width_bits.max(1)))
            })
            .collect()
    }

    /// Total ring-hop distance from every spanned FPGA to the placement's
    /// primary (0 for single-FPGA placements).
    fn placement_hop_cost(&self, blocks: &[vital_fabric::BlockAddr]) -> usize {
        if blocks.is_empty() {
            return 0;
        }
        let primary = Self::primary_of(blocks) as u32;
        let mut fpgas: Vec<u32> = blocks.iter().map(|b| b.fpga.index()).collect();
        fpgas.sort_unstable();
        fpgas.dedup();
        fpgas
            .into_iter()
            .filter(|&f| f != primary)
            .map(|f| self.topology.hops(FpgaId::new(primary), FpgaId::new(f)))
            .sum()
    }

    /// Tears down a deployment: frees its blocks, scrubs its DRAM, removes
    /// its NIC and bandwidth share.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] if no such deployment
    /// exists (nothing is touched in that case). Any other error is
    /// reported only **after** the teardown has run to completion: every
    /// step — block release, DRAM scrub, bandwidth share, vNIC — is
    /// attempted regardless of earlier failures, so a failing step never
    /// leaks the later ones. The first failure encountered is returned;
    /// the tenant is gone either way.
    pub fn undeploy(&self, tenant: TenantId) -> Result<(), RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let mut span = self.telemetry.span("runtime.undeploy");
        span.field("tenant", tenant.raw());
        // ISA tenants hold template tiles, not blocks/DRAM/vNICs: release
        // the share back to the pool and the teardown is complete.
        {
            let mut isa = self.isa.lock();
            if let Some(state) = isa.as_mut() {
                if state.tenants.remove(&tenant).is_some() {
                    state.pool.release(tenant.raw());
                    self.telemetry.inc_counter("runtime.undeploys", 1);
                    return Ok(());
                }
            }
        }
        let state = self
            .tenants
            .lock()
            .remove(&tenant)
            .ok_or(RuntimeError::UnknownTenant(tenant))?;
        self.telemetry.inc_counter("runtime.undeploys", 1);
        self.teardown(&state.handle)
    }

    /// The deploy implementation behind an ISA-backend
    /// [`ControlRequest::Deploy`]: compile the app name to an instruction
    /// stream and grant tiles from the shared pool — no bitstream, no
    /// reconfiguration, no per-tenant DRAM/vNIC plumbing (the template
    /// owns the memory system).
    ///
    /// Admission is elastic: the tenant asks for its variant's natural
    /// tile count but accepts any non-zero share; later `Scale` requests
    /// (or co-tenant departures) grow it. Only an empty pool refuses,
    /// with the retryable [`RuntimeError::IsaTilesUnavailable`].
    fn do_deploy_isa(&self, name: &str) -> Result<DeploySummary, RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let mut span = self.telemetry.span("runtime.isa_deploy");
        span.field("app", name);
        let program =
            IsaProgram::for_app(name).map_err(|_| RuntimeError::UnknownApp(name.to_string()))?;
        let mut isa = self.isa.lock();
        let state = isa.as_mut().ok_or(RuntimeError::IsaBackendDisabled)?;
        let want = program.natural_tiles().max(1);
        let free = state.pool.free_count();
        let grant = want.min(free);
        if grant == 0 {
            return Err(RuntimeError::IsaTilesUnavailable {
                requested: want,
                free,
            });
        }
        let tenant = TenantId::new(self.next_tenant.fetch_add(1, Ordering::Relaxed));
        state
            .pool
            .grow(tenant.raw(), grant)
            .expect("grant is bounded by the free count");
        state.tenants.insert(
            tenant,
            IsaTenantState {
                app: name.to_string(),
                program,
            },
        );
        span.field("tenant", tenant.raw());
        span.field("tiles", grant);
        self.telemetry.inc_counter("runtime.isa_deploys", 1);
        Ok(DeploySummary {
            tenant: tenant.raw(),
            app: name.to_string(),
            blocks: grant,
            fpgas: 1,
            primary_fpga: 0,
            // Stream-pointer switches, not partial reconfiguration:
            // micro-seconds for the whole share.
            reconfig_us: switch_us(grant),
            granted_gbps: 0.0,
        })
    }

    /// The ISA template in force, if the backend is enabled.
    pub fn isa_template(&self) -> Option<IsaTemplate> {
        self.isa.lock().as_ref().map(|s| s.template)
    }

    /// App name and current tile share of an ISA tenant, if one exists.
    pub fn isa_tenant(&self, tenant: TenantId) -> Option<(String, usize)> {
        let isa = self.isa.lock();
        let s = isa.as_ref()?;
        let t = s.tenants.get(&tenant)?;
        Some((t.app.clone(), s.pool.assignment(tenant.raw()).len()))
    }

    /// The compiled instruction stream of an ISA tenant.
    pub fn isa_program(&self, tenant: TenantId) -> Option<IsaProgram> {
        self.isa
            .lock()
            .as_ref()?
            .tenants
            .get(&tenant)
            .map(|t| t.program.clone())
    }

    /// The [`ControlRequest::Scale`] implementation: move an ISA tenant
    /// to exactly `tiles` tiles. Growth beyond the free supply answers
    /// the retryable [`RuntimeError::IsaTilesUnavailable`]; scaling to
    /// zero parks the tenant (still deployed, no tiles) until a later
    /// scale-up.
    fn scale_isa(&self, tenant_raw: u64, tiles: u32) -> Result<ScaleSummary, RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let tenant = TenantId::new(tenant_raw);
        let mut span = self.telemetry.span("runtime.isa_scale");
        span.field("tenant", tenant_raw);
        span.field("tiles", tiles as usize);
        let mut isa = self.isa.lock();
        let state = isa.as_mut().ok_or(RuntimeError::IsaBackendDisabled)?;
        if !state.tenants.contains_key(&tenant) {
            return Err(RuntimeError::UnknownTenant(tenant));
        }
        let before = state.pool.assignment(tenant_raw).len();
        let change = state
            .pool
            .set_share(tenant_raw, tiles as usize)
            .map_err(|e| RuntimeError::IsaTilesUnavailable {
                requested: e.requested,
                free: e.free,
            })?;
        self.telemetry.inc_counter("runtime.isa_scales", 1);
        Ok(ScaleSummary {
            tenant: tenant_raw,
            tiles_before: before as u32,
            tiles_after: tiles,
            realloc_us: switch_us(change.moved()),
        })
    }

    /// Best-effort-complete teardown of a removed tenant's resources:
    /// every step runs; the first error is returned.
    fn teardown(&self, handle: &DeployHandle) -> Result<(), RuntimeError> {
        let tenant = handle.tenant;
        self.resources.release(tenant);
        let fpga = handle.primary_fpga;
        let mem = self.memory[fpga]
            .destroy_space(tenant)
            .map_err(RuntimeError::Periph);
        let arb = self.arbiters[fpga]
            .release(tenant)
            .map_err(RuntimeError::Periph);
        let nic = self
            .switch
            .destroy_nic(handle.nic)
            .map_err(RuntimeError::Periph);
        mem.and(arb).and(nic)
    }

    /// Defragments the cluster by *live-migrating* spanning deployments
    /// onto fewer FPGAs when the current free space allows it — something
    /// only possible because bitstreams are relocatable: each move is a
    /// [`SystemController::migrate_live`] (quiesce, checkpoint, partial
    /// reconfiguration at the new location, restore), never a
    /// recompilation. Channel contents and DRAM bytes survive every move.
    /// Returns one [`Migration`] per moved tenant, carrying the recomputed
    /// per-block partial-reconfiguration cost of the move.
    ///
    /// Fragmentation is the failure mode of fine-grained sharing (small
    /// deployments pepper the cluster until large requests must span);
    /// periodic defragmentation keeps the spanning penalty in check.
    ///
    /// A move is accepted only if it reduces the FPGAs spanned *and* does
    /// not increase the placement's ring-hop cost
    /// ([`Migration::hop_cost_after`] ≤ [`Migration::hop_cost_before`]).
    /// The tenant's DRAM moves with it to the new primary board, contents
    /// intact; handles returned by earlier `deploy` calls keep their
    /// original binding snapshot — query [`SystemController::resources`]
    /// for the live placement.
    pub fn defragment(&self) -> Vec<Migration> {
        let _dirty = self.mark_status_dirty();
        let mut span = self.telemetry.span("runtime.defragment");
        let mut migrated = Vec::new();
        loop {
            // Pick the most-spanning tenant that could use fewer FPGAs
            // *without paying more ring hops* — consolidation that spreads
            // a tenant's traffic further around the ring is a regression,
            // not an improvement.
            let candidates: Vec<(TenantId, usize, usize)> = {
                let tenants = self.tenants.lock();
                tenants
                    .iter()
                    .map(|(&t, state)| {
                        (
                            t,
                            state.handle.fpga_count(),
                            state.handle.placed().bindings.len(),
                        )
                    })
                    .filter(|&(_, fpgas, _)| fpgas > 1)
                    .collect()
            };
            let mut best_move: Option<(TenantId, usize, usize)> = None;
            for (tenant, current_fpgas, needed) in candidates {
                let current_hop = self.placement_hop_cost(&self.resources.holdings(tenant));
                // What could this tenant get if its own blocks were free?
                // Only blocks on Online devices participate.
                let mut free_lists: Vec<_> = (0..self.resources.fpga_count())
                    .map(|f| self.resources.free_blocks_of(f))
                    .collect();
                for b in self.resources.holdings(tenant) {
                    let f = b.fpga.index() as usize;
                    if self.resources.health_of(f) == FpgaHealth::Online {
                        free_lists[f].push(b);
                    }
                }
                for l in &mut free_lists {
                    l.sort();
                }
                if let Some(alloc) = allocate_blocks_on(&self.topology, &free_lists, needed) {
                    if alloc.fpgas_used < current_fpgas
                        && alloc.hop_cost <= current_hop
                        && best_move
                            .is_none_or(|(_, bf, bh)| (alloc.fpgas_used, alloc.hop_cost) < (bf, bh))
                    {
                        best_move = Some((tenant, alloc.fpgas_used, alloc.hop_cost));
                    }
                }
            }
            let Some((tenant, _, _)) = best_move else {
                break;
            };
            // Suspending frees the tenant's own blocks, so the resume half
            // of the live migration sees exactly the hypothetical free
            // lists evaluated above and lands on the same allocation.
            match self.migrate_live(tenant) {
                Ok(m) => migrated.push(m),
                // A failed resume parks the tenant as suspended rather
                // than losing it; stop consolidating and let the operator
                // resume it explicitly.
                Err(_) => break,
            }
        }
        span.field("migrations", migrated.len());
        migrated
    }

    /// Declares an FPGA failed: the device goes
    /// [`Offline`](FpgaHealth::Offline) and every affected tenant is
    /// either *migrated* onto the surviving devices — relocatable
    /// bitstreams make this a partial reconfiguration, never a
    /// recompilation — or, when no surviving placement fits, torn down
    /// completely (blocks, DRAM, bandwidth share, vNIC).
    ///
    /// A migrated tenant whose DRAM lived on the failed board gets a
    /// fresh zeroed space of the same quota on its new primary FPGA: the
    /// contents died with the board. Tenants whose DRAM lives elsewhere
    /// keep it untouched.
    ///
    /// Idempotent: failing an already-offline device affects no one.
    pub fn fail_fpga(&self, fpga: usize) -> FailureReport {
        let _dirty = self.mark_status_dirty();
        let mut span = self.telemetry.span("runtime.fail_fpga");
        span.field("fpga", fpga);
        self.resources.set_health(fpga, FpgaHealth::Offline);
        let mut report = FailureReport::default();
        for tenant in self.affected_tenants(fpga) {
            match self.relocate_tenant(tenant, true) {
                Some(m) => report.migrated.push(m),
                None => {
                    let state = self.tenants.lock().remove(&tenant);
                    if let Some(state) = state {
                        // Best-effort: the board is gone, some steps may
                        // already be moot.
                        let _ = self.teardown(&state.handle);
                        report.torn_down.push(tenant);
                    }
                }
            }
        }
        let mut stats = self.failure_stats.lock();
        stats.fpga_failures += 1;
        stats.tenants_migrated += report.migrated.len() as u64;
        stats.tenants_torn_down += report.torn_down.len() as u64;
        span.field("migrated", report.migrated.len());
        span.field("torn_down", report.torn_down.len());
        self.telemetry.inc_counter("runtime.fpga_failures", 1);
        report
    }

    /// Returns a failed or draining FPGA to service
    /// ([`Online`](FpgaHealth::Online)): its blocks become allocatable
    /// again. Nothing is migrated back — the next deployments simply see
    /// the capacity.
    pub fn recover_fpga(&self, fpga: usize) {
        let _dirty = self.mark_status_dirty();
        self.resources.set_health(fpga, FpgaHealth::Online);
        self.failure_stats.lock().fpga_recoveries += 1;
    }

    /// Drains an FPGA for maintenance: the device goes
    /// [`Draining`](FpgaHealth::Draining) (no new allocations) and every
    /// tenant with blocks on it is **live-migrated** off
    /// ([`SystemController::migrate_live`]): channels are quiesced, DRAM
    /// pages are exported, and everything is restored byte-for-byte on the
    /// surviving devices — the tenant's DRAM home moves *off* the draining
    /// board, so the board can subsequently be powered down without data
    /// loss. Tenants that cannot currently be re-placed stay put, fully
    /// running, and are listed in [`EvacuationReport::unmoved`]; call
    /// again once capacity frees up, or [`SystemController::recover_fpga`]
    /// to cancel the drain.
    pub fn evacuate(&self, fpga: usize) -> EvacuationReport {
        let _dirty = self.mark_status_dirty();
        let mut span = self.telemetry.span("runtime.evacuate");
        span.field("fpga", fpga);
        self.resources.set_health(fpga, FpgaHealth::Draining);
        let mut report = EvacuationReport::default();
        for tenant in self.resources.tenants_on(fpga) {
            // Pre-check that a placement on the surviving devices exists:
            // a live migration whose resume half cannot fit would park the
            // tenant suspended, and an evacuation must leave unmovable
            // tenants *running*.
            let needed = {
                let tenants = self.tenants.lock();
                match tenants.get(&tenant) {
                    Some(state) => state.handle.placed.bindings.len(),
                    None => continue,
                }
            };
            let mut free_lists: Vec<_> = (0..self.resources.fpga_count())
                .map(|f| self.resources.free_blocks_of(f))
                .collect();
            for b in self.resources.holdings(tenant) {
                let f = b.fpga.index() as usize;
                if self.resources.health_of(f) == FpgaHealth::Online {
                    free_lists[f].push(b);
                }
            }
            for l in &mut free_lists {
                l.sort();
            }
            if allocate_blocks_on(&self.topology, &free_lists, needed).is_none() {
                report.unmoved.push(tenant);
                continue;
            }
            match self.migrate_live(tenant) {
                Ok(m) => report.migrated.push(m),
                Err(_) => report.unmoved.push(tenant),
            }
        }
        let mut stats = self.failure_stats.lock();
        stats.evacuations += 1;
        stats.tenants_migrated += report.migrated.len() as u64;
        span.field("migrated", report.migrated.len());
        span.field("unmoved", report.unmoved.len());
        report
    }

    /// The failure/recovery counters accumulated so far.
    pub fn failure_stats(&self) -> FailureStats {
        *self.failure_stats.lock()
    }

    /// Tenants touched by the failure of `fpga`: blocks on it, or DRAM
    /// homed on it.
    fn affected_tenants(&self, fpga: usize) -> Vec<TenantId> {
        let mut v = self.resources.tenants_on(fpga);
        let tenants = self.tenants.lock();
        for (&t, state) in tenants.iter() {
            if state.handle.primary_fpga == fpga && !v.contains(&t) {
                v.push(t);
            }
        }
        v.sort_unstable();
        v
    }

    /// Re-places one tenant using only Online devices (free blocks plus
    /// the tenant's own still-online blocks) and commits the move. With
    /// `board_dead`, a DRAM space homed on a non-Online board is moved to
    /// the new primary (contents lost — the board crashed); otherwise the
    /// DRAM stays where it is. Returns `None` if no placement fits (the
    /// caller decides between tearing down and leaving the tenant put).
    fn relocate_tenant(&self, tenant: TenantId, board_dead: bool) -> Option<Migration> {
        let (needed, fpgas_before, old_primary) = {
            let tenants = self.tenants.lock();
            let state = tenants.get(&tenant)?;
            (
                state.handle.placed.bindings.len(),
                state.handle.fpga_count(),
                state.handle.primary_fpga,
            )
        };
        let hop_cost_before = self.placement_hop_cost(&self.resources.holdings(tenant));
        let mut free_lists: Vec<_> = (0..self.resources.fpga_count())
            .map(|f| self.resources.free_blocks_of(f))
            .collect();
        for b in self.resources.holdings(tenant) {
            let f = b.fpga.index() as usize;
            if self.resources.health_of(f) == FpgaHealth::Online {
                free_lists[f].push(b);
            }
        }
        for l in &mut free_lists {
            l.sort();
        }
        let alloc = allocate_blocks_on(&self.topology, &free_lists, needed)?;
        let new_primary = Self::primary_of(&alloc.blocks);

        // Move the DRAM home first if its board died: quota carries over,
        // contents cannot.
        let dram_moves = board_dead && self.resources.health_of(old_primary) != FpgaHealth::Online;
        let mut grant = None;
        if dram_moves {
            let quota = self.memory[old_primary]
                .stats(tenant)
                .map(|s| s.quota_bytes)
                .unwrap_or(self.config.default_quota_bytes);
            let _ = self.memory[old_primary].destroy_space(tenant);
            if let Err(e) = self.memory[new_primary].create_space(tenant, quota) {
                // No room for the space: restore the old record so the
                // caller's teardown finds a consistent tenant.
                debug_assert!(matches!(e, vital_periph::PeriphError::OutOfMemory { .. }));
                let _ = self.memory[old_primary].create_space(tenant, quota);
                return None;
            }
            let _ = self.arbiters[old_primary].release(tenant);
            grant = Some(self.arbiters[new_primary].request(tenant, self.config.dram_gbps / 4.0));
        }

        // Commit the block move: release, re-claim, rebind.
        let old_blocks = self.resources.release(tenant);
        if !self.resources.claim(tenant, &alloc.blocks) {
            // Cannot happen single-threaded; salvage what is claimable.
            let salvage: Vec<_> = old_blocks
                .iter()
                .copied()
                .filter(|b| self.resources.health_of(b.fpga.index() as usize) == FpgaHealth::Online)
                .collect();
            let _ = self.resources.claim(tenant, &salvage);
            return None;
        }
        let reconfig = self.reconfig_of(&alloc.blocks);
        let mut tenants = self.tenants.lock();
        let state = tenants.get_mut(&tenant)?;
        state.handle.placed.bindings = alloc
            .blocks
            .iter()
            .enumerate()
            .map(|(vb, &addr)| RelocationTarget {
                virtual_block: vb as u32,
                addr,
            })
            .collect();
        state.handle.reconfig = reconfig;
        if dram_moves {
            state.handle.primary_fpga = new_primary;
            if let Some(g) = grant {
                state.handle.bandwidth = g;
            }
        }
        // The crash path gives the tenant fresh, empty channels on the new
        // placement: in-flight interface state died with the board (use
        // suspend/migrate_live for the state-preserving path).
        if let Ok(bitstream) = self.bitstreams.get(&state.handle.placed.app) {
            state.channels = Self::channels_for(bitstream.channel_plan(), &alloc.blocks);
        }
        Some(Migration {
            tenant,
            fpgas_before,
            fpgas_after: alloc.fpgas_used,
            reconfig,
            hop_cost_before,
            hop_cost_after: self.placement_hop_cost(&alloc.blocks),
        })
    }

    /// Live tenant ids, sorted.
    pub fn live_tenants(&self) -> Vec<TenantId> {
        let mut v: Vec<TenantId> = self.tenants.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Advances a tenant's interface clock by `cycles` of *activity*: the
    /// producer of every channel injects whenever it holds a credit, flits
    /// propagate, and the consumer drains at a third of the producer rate
    /// (so FIFOs accumulate real occupancy). This is the software model's
    /// stand-in for the user logic running.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for undeployed tenants.
    pub fn run_tenant(&self, tenant: TenantId, cycles: u64) -> Result<(), RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let mut tenants = self.tenants.lock();
        let state = tenants
            .get_mut(&tenant)
            .ok_or(RuntimeError::UnknownTenant(tenant))?;
        let start = state.clock;
        for now in start..start.saturating_add(cycles) {
            for ch in &mut state.channels {
                if ch.can_push(now) {
                    ch.push(now);
                }
                ch.advance(now);
                if now % 3 == 0 {
                    ch.pop(now);
                }
            }
        }
        state.clock = start.saturating_add(cycles);
        Ok(())
    }

    /// Advances a tenant's interface clock by `cycles` with the producers
    /// clock-gated: no flit is injected, in-flight flits keep propagating.
    /// This is how the quiesce protocol waits out an open serialization
    /// window before a retrying [`SystemController::suspend`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for undeployed tenants.
    pub fn settle_tenant(&self, tenant: TenantId, cycles: u64) -> Result<(), RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let mut tenants = self.tenants.lock();
        let state = tenants
            .get_mut(&tenant)
            .ok_or(RuntimeError::UnknownTenant(tenant))?;
        state.clock = state.clock.saturating_add(cycles);
        let now = state.clock;
        for ch in &mut state.channels {
            ch.advance(now);
        }
        Ok(())
    }

    /// Receiver-FIFO occupancy of each live channel of a tenant, in plan
    /// order (monitoring; also what the round-trip tests compare).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for undeployed tenants.
    pub fn channel_occupancy(&self, tenant: TenantId) -> Result<Vec<usize>, RuntimeError> {
        let tenants = self.tenants.lock();
        let state = tenants
            .get(&tenant)
            .ok_or(RuntimeError::UnknownTenant(tenant))?;
        Ok(state
            .channels
            .iter()
            .map(|c| c.occupancy() + c.in_flight())
            .collect())
    }

    /// Suspends a deployed tenant: quiesces every channel at the tenant's
    /// current clock (refusing — with nothing touched — if any channel is
    /// still mid-serialization-window), exports its DRAM pages, captures
    /// placement and bandwidth metadata, frees every physical resource,
    /// and parks the resulting [`TenantCheckpoint`] for a later
    /// [`SystemController::resume`]. The capsule is also returned for
    /// inspection or external storage.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownTenant`] for undeployed tenants.
    /// * [`RuntimeError::Quiesce`] if a serialization window is open; call
    ///   [`SystemController::settle_tenant`] past the reported cycle and
    ///   retry — the failed attempt has no side effects.
    /// * [`RuntimeError::UnknownApp`] / [`RuntimeError::Periph`] if the
    ///   bitstream or DRAM space vanished out from under the tenant.
    pub fn suspend(&self, tenant: TenantId) -> Result<TenantCheckpoint, RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let mut span = self.telemetry.span("runtime.suspend");
        span.field("tenant", tenant.raw());
        let mut tenants = self.tenants.lock();
        let state = tenants
            .get_mut(&tenant)
            .ok_or(RuntimeError::UnknownTenant(tenant))?;
        let bitstream = self.bitstreams.get(&state.handle.placed.app)?;
        let plan = bitstream.channel_plan();
        let clock = state.clock;
        // Atomic: either every channel drains or none is touched.
        let snapshots = quiesce_all(&mut state.channels, clock).map_err(RuntimeError::Quiesce)?;
        let handle = state.handle.clone();
        let blocks: Vec<_> = handle.placed.addresses().collect();
        let memory = self.memory[handle.primary_fpga]
            .export_space(tenant)
            .map_err(RuntimeError::Periph)?;
        let channels = plan
            .channels()
            .iter()
            .zip(snapshots)
            .map(|(pc, snapshot)| ChannelCheckpoint {
                from_block: pc.from_block,
                to_block: pc.to_block,
                snapshot,
            })
            .collect();
        let checkpoint = TenantCheckpoint {
            tenant,
            placement: PlacementMeta {
                app: handle.placed.app.clone(),
                needed_blocks: handle.placed.bindings.len(),
                clock,
                primary_fpga: handle.primary_fpga,
                fpgas_spanned: handle.fpga_count(),
                hop_cost: self.placement_hop_cost(&blocks),
                requested_gbps: handle.bandwidth.requested_gbps,
            },
            channels,
            memory,
        };
        tenants.remove(&tenant);
        drop(tenants);
        // Free every physical resource; the capsule now holds the truth,
        // so each step is best-effort (the DRAM bytes were exported above).
        self.resources.release(tenant);
        let _ = self.memory[handle.primary_fpga].destroy_space(tenant);
        let _ = self.arbiters[handle.primary_fpga].release(tenant);
        let _ = self.switch.destroy_nic(handle.nic);
        span.field("flits", checkpoint.total_flits());
        span.field("dram_bytes", checkpoint.dram_bytes());
        self.telemetry.inc_counter("runtime.suspends", 1);
        self.suspended.lock().insert(tenant, checkpoint.clone());
        Ok(checkpoint)
    }

    /// Resumes a tenant from its parked checkpoint (see
    /// [`SystemController::suspend`]). On failure the capsule stays
    /// parked, so the resume can be retried once capacity frees up.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::NotSuspended`] if no checkpoint is parked.
    /// * Everything [`SystemController::resume_from`] can return.
    pub fn resume(&self, tenant: TenantId) -> Result<DeployHandle, RuntimeError> {
        let checkpoint = self
            .suspended
            .lock()
            .get(&tenant)
            .cloned()
            .ok_or(RuntimeError::NotSuspended(tenant))?;
        self.resume_from(&checkpoint)
    }

    /// Restores a tenant from a checkpoint capsule: re-places it with the
    /// communication-aware allocator (possibly on different blocks, FPGAs,
    /// or even a different compatible controller), restores its DRAM pages
    /// byte-for-byte, re-requests its bandwidth share, provisions a fresh
    /// vNIC, and rebuilds its channels — carrying over FIFO contents and
    /// delivery statistics, with link classes re-derived from the new
    /// placement. The tenant keeps its original [`TenantId`].
    ///
    /// Transactional like deploy: any failure unwinds every resource
    /// acquired so far. On success a checkpoint parked under the same id
    /// is discharged.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::TenantActive`] if the tenant is currently
    ///   deployed.
    /// * [`RuntimeError::UnknownApp`] if the capsule's application is not
    ///   registered here.
    /// * [`RuntimeError::InsufficientResources`] when no placement fits.
    /// * [`RuntimeError::Periph`] / [`RuntimeError::BandwidthUnavailable`]
    ///   for DRAM or bandwidth admission failures.
    ///
    /// This is a thin shim over the unified entry point
    /// ([`SystemController::try_execute`] with a
    /// [`ControlRequest::Deploy`] whose [`DeployRequest::restore`] is
    /// set); prefer the request API when you already hold a capsule as a
    /// value.
    pub fn resume_from(&self, checkpoint: &TenantCheckpoint) -> Result<DeployHandle, RuntimeError> {
        let req = DeployRequest::restore(checkpoint.clone());
        match self.try_execute(ControlRequest::Deploy(req))? {
            ControlResponse::Resumed(s) => Ok(self
                .handle_of(TenantId::new(s.tenant))
                .expect("freshly resumed tenant has a live handle")),
            other => unreachable!("restore answered with {other:?}"),
        }
    }

    /// The restore implementation behind a [`ControlRequest::Deploy`]
    /// carrying a checkpoint capsule.
    fn do_resume_from(&self, checkpoint: &TenantCheckpoint) -> Result<DeployHandle, RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let tenant = checkpoint.tenant;
        if self.tenants.lock().contains_key(&tenant) {
            return Err(RuntimeError::TenantActive(tenant));
        }
        let mut span = self.telemetry.span("runtime.resume");
        span.field("tenant", tenant.raw());
        span.field("app", checkpoint.placement.app.as_str());
        let bitstream = self.bitstreams.get(&checkpoint.placement.app)?;
        let needed = bitstream.block_count();

        let alloc = self.allocate_or_explain(needed)?;
        span.field("fpgas_used", alloc.fpgas_used);
        span.field("hop_cost", alloc.hop_cost);

        let mut guard = TeardownGuard::new(self, tenant);
        if !self.resources.claim(tenant, &alloc.blocks) {
            return Err(RuntimeError::InsufficientResources {
                needed,
                free: self.resources.total_free(),
            });
        }
        guard.blocks_claimed = true;

        let targets: Vec<RelocationTarget> = alloc
            .blocks
            .iter()
            .enumerate()
            .map(|(vb, &addr)| RelocationTarget {
                virtual_block: vb as u32,
                addr,
            })
            .collect();
        let placed = bitstream.bind(&targets).map_err(RuntimeError::Relocation)?;

        let primary_fpga = Self::primary_of(&alloc.blocks);
        self.memory[primary_fpga]
            .restore_space(tenant, &checkpoint.memory)
            .map_err(RuntimeError::Periph)?;
        guard.memory_fpga = Some(primary_fpga);

        let share = checkpoint.placement.requested_gbps;
        let grant = self.arbiters[primary_fpga].request(tenant, share);
        guard.arbiter_fpga = Some(primary_fpga);
        let floor = self.config.min_bandwidth_fraction * share;
        if grant.granted_gbps + 1e-9 < floor {
            return Err(RuntimeError::BandwidthUnavailable {
                fpga: primary_fpga,
                requested_gbps: share,
                granted_gbps: grant.granted_gbps,
            });
        }

        let nic = self.switch.create_nic(tenant, 64);
        guard.nic = Some(nic);

        // Continue the interface timeline past the longest drain so every
        // restored flit keeps its age.
        let clock = checkpoint.placement.clock
            + checkpoint
                .channels
                .iter()
                .map(|c| c.snapshot.drain_cycles)
                .max()
                .unwrap_or(0);
        let channels: Vec<Channel> = checkpoint
            .channels
            .iter()
            .map(|cc| {
                let link = Self::link_class_of(&alloc.blocks, cc.from_block, cc.to_block);
                if link == cc.snapshot.spec.link {
                    Channel::restore(&cc.snapshot, clock)
                } else {
                    // The placement changed the boundary the channel
                    // crosses: re-derive the spec, transplant the state.
                    let mut snap = cc.snapshot.clone();
                    snap.spec = ChannelSpec::for_link(link, snap.spec.width_bits.max(1));
                    Channel::restore(&snap, clock)
                }
            })
            .collect();

        let reconfig = self.reconfig_of(&alloc.blocks);
        let handle = DeployHandle {
            tenant,
            placed,
            nic,
            primary_fpga,
            reconfig,
            bandwidth: grant,
        };
        self.tenants.lock().insert(
            tenant,
            TenantState {
                handle: handle.clone(),
                channels,
                clock,
            },
        );
        guard.commit();
        // The id is back in circulation: future deploys must not collide.
        self.next_tenant
            .fetch_max(tenant.raw() + 1, Ordering::Relaxed);
        self.suspended.lock().remove(&tenant);
        self.telemetry.inc_counter("runtime.resumes", 1);
        Ok(handle)
    }

    /// Live migration: suspend + resume in one step. The tenant's channel
    /// contents and DRAM bytes survive; the blocks (and possibly the
    /// primary FPGA) change. An open serialization window is waited out
    /// automatically — the migration machinery may stall the producer,
    /// unlike an explicit [`SystemController::suspend`], which reports it.
    ///
    /// Because the tenant's own blocks are freed before re-placement, the
    /// allocator sees them as candidates — a migration can therefore both
    /// consolidate (fewer FPGAs) and stay put (same blocks re-chosen).
    ///
    /// # Errors
    ///
    /// Everything suspend and resume can return. If the resume half fails
    /// (e.g. the cluster shrank mid-flight), the checkpoint stays parked:
    /// the tenant is suspended, not lost — resume it once capacity
    /// returns.
    pub fn migrate_live(&self, tenant: TenantId) -> Result<Migration, RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let mut span = self.telemetry.span("runtime.migrate_live");
        span.field("tenant", tenant.raw());
        // Wait out any open serialization window.
        let (ready, clock) = {
            let tenants = self.tenants.lock();
            let state = tenants
                .get(&tenant)
                .ok_or(RuntimeError::UnknownTenant(tenant))?;
            (
                state
                    .channels
                    .iter()
                    .map(Channel::quiesce_ready_at)
                    .max()
                    .unwrap_or(0),
                state.clock,
            )
        };
        if clock < ready {
            self.settle_tenant(tenant, ready - clock)?;
        }
        let checkpoint = self.suspend(tenant)?;
        let handle = self.resume_from(&checkpoint)?;
        let blocks: Vec<_> = handle.placed.addresses().collect();
        let migration = Migration {
            tenant,
            fpgas_before: checkpoint.placement.fpgas_spanned,
            fpgas_after: handle.fpga_count(),
            reconfig: handle.reconfig,
            hop_cost_before: checkpoint.placement.hop_cost,
            hop_cost_after: self.placement_hop_cost(&blocks),
        };
        span.field("fpgas_before", migration.fpgas_before);
        span.field("fpgas_after", migration.fpgas_after);
        self.telemetry.inc_counter("runtime.live_migrations", 1);
        Ok(migration)
    }

    /// Lifts the parked capsule of a suspended tenant into the versioned,
    /// geometry-independent [`PortableCheckpoint`] format (DESIGN.md §17):
    /// the logical state keyed by netlist digest plus the compiled image's
    /// scan-chain footprint. The tenant stays parked — exporting is
    /// read-only.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NotSuspended`] if the tenant has no parked
    /// checkpoint; [`RuntimeError::UnknownApp`] if its bitstream was
    /// removed while parked.
    pub fn portable_of(&self, tenant: TenantId) -> Result<PortableCheckpoint, RuntimeError> {
        let capsule = self
            .checkpoint_of(tenant)
            .ok_or(RuntimeError::NotSuspended(tenant))?;
        self.lift_portable(&capsule)
    }

    /// Builds the portable form of a capsule: netlist digest and scan
    /// footprint come from the registered image, the geometry stamp from
    /// this controller.
    fn lift_portable(
        &self,
        capsule: &TenantCheckpoint,
    ) -> Result<PortableCheckpoint, RuntimeError> {
        let bitstream = self.bitstreams.get(&capsule.placement.app)?;
        let scan: Vec<ScanState> = bitstream
            .scan()
            .chains
            .iter()
            .map(|c| ScanState {
                virtual_block: c.virtual_block,
                ff_bits: c.ff_bits,
                bram_bits: c.bram_bits,
            })
            .collect();
        Ok(PortableCheckpoint::from_capsule(
            capsule,
            bitstream.digest().as_u64(),
            self.geometry.clone(),
            scan,
        ))
    }

    /// Restores a tenant from a [`PortableCheckpoint`], possibly exported
    /// on a controller with a *different* fabric geometry. The capsule's
    /// netlist digest is resolved against the local build farm —
    /// registered image, digest index, or a full recompile through the
    /// [`AppResolver`] (cache-hit-or-recompile, DESIGN.md §17) — and the
    /// resolved image's scan interface must match the capsule chain for
    /// chain before any state moves.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] on a version or scan-interface
    /// mismatch, [`RuntimeError::UnknownApp`] if the digest cannot be
    /// resolved, plus everything resume can return. On failure the
    /// caller's capsule is untouched — restoring is idempotent-safe.
    pub fn restore_portable(
        &self,
        portable: &PortableCheckpoint,
    ) -> Result<DeployHandle, RuntimeError> {
        portable
            .version
            .check("portable checkpoint")
            .map_err(RuntimeError::InvalidConfig)?;
        let mut span = self.telemetry.span("runtime.restore_portable");
        span.field("tenant", portable.tenant.raw());
        span.field("app", portable.placement.app.as_str());
        span.field("source_geometry", portable.source_geometry.as_str());
        let bitstream = self.bitstream_for_digest(&portable.placement.app, portable.app_digest)?;
        let chains = &bitstream.scan().chains;
        let matches = chains.len() == portable.scan.len()
            && chains.iter().zip(&portable.scan).all(|(c, s)| {
                c.virtual_block == s.virtual_block
                    && c.ff_bits == s.ff_bits
                    && c.bram_bits == s.bram_bits
            });
        if !matches {
            return Err(RuntimeError::InvalidConfig(format!(
                "portable checkpoint of {:?} does not match the compiled image's scan interface",
                portable.placement.app
            )));
        }
        let capsule = portable.to_capsule();
        let handle = self.do_resume_from(&capsule)?;
        self.telemetry.inc_counter("runtime.portable_restores", 1);
        Ok(handle)
    }

    /// Resolves an app image whose netlist digest must equal `digest`:
    /// by name, by the digest index (re-registering under the capsule's
    /// name), or by recompiling through [`SystemController::prepare`]'s
    /// single-flight path.
    fn bitstream_for_digest(&self, app: &str, digest: u64) -> Result<AppBitstream, RuntimeError> {
        let verify = |bs: AppBitstream| {
            if bs.digest().as_u64() == digest {
                Ok(bs)
            } else {
                Err(RuntimeError::InvalidConfig(format!(
                    "app {app:?} resolves to netlist digest {:016x}, capsule expects {digest:016x}",
                    bs.digest().as_u64()
                )))
            }
        };
        if let Ok(bs) = self.bitstreams.get(app) {
            return verify(bs);
        }
        if let Some(bs) = self
            .bitstreams
            .get_by_digest(NetlistDigest::from_raw(digest))
        {
            let bs = self.bitstreams.insert_or_get(bs.renamed(app))?;
            self.persist_bitstreams();
            return Ok(bs);
        }
        self.prepare(app)?;
        verify(self.bitstreams.get(app)?)
    }

    /// Suspends, lifts, and restores `tenant` through the portable format
    /// on this controller — the slow-path half of
    /// [`ControlRequest::Migrate`] with [`MigratePolicy::Portable`].
    /// Identical observable behaviour to [`SystemController::migrate_live`]
    /// on the same geometry; unlike it, the capsule survives a geometry
    /// change because only logical state crosses.
    ///
    /// # Errors
    ///
    /// Everything suspend and [`SystemController::restore_portable`] can
    /// return; on a restore failure the checkpoint stays parked.
    pub fn migrate_portable(&self, tenant: TenantId) -> Result<Migration, RuntimeError> {
        let _dirty = self.mark_status_dirty();
        let mut span = self.telemetry.span("runtime.migrate_portable");
        span.field("tenant", tenant.raw());
        let (ready, clock) = {
            let tenants = self.tenants.lock();
            let state = tenants
                .get(&tenant)
                .ok_or(RuntimeError::UnknownTenant(tenant))?;
            (
                state
                    .channels
                    .iter()
                    .map(Channel::quiesce_ready_at)
                    .max()
                    .unwrap_or(0),
                state.clock,
            )
        };
        if clock < ready {
            self.settle_tenant(tenant, ready - clock)?;
        }
        let checkpoint = self.suspend(tenant)?;
        let migration = self.finish_portable_restore(&checkpoint)?;
        span.field("fpgas_before", migration.fpgas_before);
        span.field("fpgas_after", migration.fpgas_after);
        self.telemetry.inc_counter("runtime.portable_migrations", 1);
        Ok(migration)
    }

    /// The restore half of a portable migration, also used as the
    /// [`MigratePolicy::Auto`] fallback when the fast path parked a
    /// capsule and then failed to re-admit it.
    fn finish_portable_restore(
        &self,
        checkpoint: &TenantCheckpoint,
    ) -> Result<Migration, RuntimeError> {
        let portable = self.lift_portable(checkpoint)?;
        let handle = self.restore_portable(&portable)?;
        let blocks: Vec<_> = handle.placed.addresses().collect();
        Ok(Migration {
            tenant: checkpoint.tenant,
            fpgas_before: checkpoint.placement.fpgas_spanned,
            fpgas_after: handle.fpga_count(),
            reconfig: handle.reconfig,
            hop_cost_before: checkpoint.placement.hop_cost,
            hop_cost_after: self.placement_hop_cost(&blocks),
        })
    }

    /// Dispatches a migration by [`MigratePolicy`], returning the
    /// migration record together with the policy that actually ran
    /// (`Auto` resolves to the winner, never itself).
    ///
    /// # Errors
    ///
    /// Whatever the selected path returns; under `Auto` the fast path's
    /// error is reported if the portable fallback cannot help either.
    pub fn migrate_with_policy(
        &self,
        tenant: TenantId,
        policy: MigratePolicy,
    ) -> Result<(Migration, MigratePolicy), RuntimeError> {
        match policy {
            MigratePolicy::SameGeometry => self
                .migrate_live(tenant)
                .map(|m| (m, MigratePolicy::SameGeometry)),
            MigratePolicy::Portable => self
                .migrate_portable(tenant)
                .map(|m| (m, MigratePolicy::Portable)),
            MigratePolicy::Auto => match self.migrate_live(tenant) {
                Ok(m) => Ok((m, MigratePolicy::SameGeometry)),
                Err(first) => {
                    // The fast path parks the capsule before re-admitting;
                    // if it died after that point, retry the restore half
                    // through the portable format. If it died earlier the
                    // tenant is still live and the full portable migration
                    // runs. The fallback's own error is less informative
                    // than the fast path's, so `first` wins on a double
                    // failure.
                    let fallback = match self.checkpoint_of(tenant) {
                        Some(cp) => self.finish_portable_restore(&cp),
                        None => self.migrate_portable(tenant),
                    };
                    fallback
                        .map(|m| (m, MigratePolicy::Portable))
                        .map_err(|_| first)
                }
            },
        }
    }

    /// Tenants currently parked in suspended state, sorted.
    pub fn suspended_tenants(&self) -> Vec<TenantId> {
        let mut v: Vec<TenantId> = self.suspended.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The parked checkpoint of a suspended tenant, if any.
    pub fn checkpoint_of(&self, tenant: TenantId) -> Option<TenantCheckpoint> {
        self.suspended.lock().get(&tenant).cloned()
    }

    /// A clone of the live [`DeployHandle`] of `tenant`, or `None` if the
    /// tenant is not currently deployed. The snapshot reflects the
    /// placement at admission time; query
    /// [`SystemController::resources`] for the live one.
    pub fn handle_of(&self, tenant: TenantId) -> Option<DeployHandle> {
        self.tenants.lock().get(&tenant).map(|s| s.handle.clone())
    }

    /// Installs the compile hook behind [`ControlRequest::Prepare`]: asked
    /// to prepare an unregistered application, the controller calls the
    /// resolver to produce its bitstream (the `vitald` daemon installs one
    /// that compiles the named benchmark workload). Without a resolver,
    /// preparing an unknown name fails with [`RuntimeError::UnknownApp`].
    pub fn set_app_resolver(&self, resolver: AppResolver) {
        *self.resolver.lock() = Some(Arc::new(resolver));
    }

    /// [`ControlRequest::Prepare`]: ensure the named app is registered,
    /// resolving (compiling) it if needed.
    ///
    /// The resolver runs *outside* the resolver lock, so prepares of
    /// different apps compile in parallel; prepares of the **same** app
    /// dedupe through the farm's name-keyed single-flight table — the
    /// followers report `cache_hit: true` once the leader publishes.
    fn prepare(&self, app: &str) -> Result<ControlResponse, RuntimeError> {
        if self.farm.demand.record(app) {
            self.persist_demand();
        }
        loop {
            if self.bitstreams.get(app).is_ok() {
                return Ok(ControlResponse::Prepared {
                    app: app.to_string(),
                    cache_hit: true,
                });
            }
            match self.farm.by_name.join(app.to_string()) {
                FlightRole::Leader(flight) => {
                    if self.bitstreams.get(app).is_ok() {
                        flight.publish(Ok(()));
                        continue;
                    }
                    let mut span = self.telemetry.span("runtime.prepare");
                    span.field("app", app);
                    let resolve = self.resolver.lock().clone();
                    let Some(resolve) = resolve else {
                        let err = RuntimeError::UnknownApp(app.to_string());
                        flight.publish(Err(err.clone()));
                        return Err(err);
                    };
                    self.farm.counters.compiles.fetch_add(1, Ordering::Relaxed);
                    let registered = resolve(app).and_then(|bitstream| {
                        self.bitstreams.insert_or_get(bitstream.renamed(app))
                    });
                    match registered {
                        Ok(_) => {
                            flight.publish(Ok(()));
                            self.persist_bitstreams();
                            return Ok(ControlResponse::Prepared {
                                app: app.to_string(),
                                cache_hit: false,
                            });
                        }
                        Err(e) => {
                            flight.publish(Err(e.clone()));
                            return Err(e);
                        }
                    }
                }
                FlightRole::Follower(flight) => {
                    self.farm
                        .counters
                        .single_flight_waits
                        .fetch_add(1, Ordering::Relaxed);
                    match flight.wait() {
                        FlightResult::Done(Ok(())) => {}
                        FlightResult::Done(Err(e)) => return Err(e),
                        FlightResult::Aborted => {}
                    }
                }
            }
        }
    }

    /// The speculative-compile hook (DESIGN.md §14): resolves and caches
    /// up to `limit` of the *most-demanded* applications that are not yet
    /// registered, ranked by the farm's exponentially decayed deploy and
    /// prepare counters. Call it from a maintenance loop (or after a warm
    /// restart) to pre-compile the footprints traffic will most likely ask
    /// for next; by the time the deploy arrives, its bitstream is a cache
    /// hit.
    ///
    /// Best-effort: names whose resolution fails — or that a concurrent
    /// [`ControlRequest::Prepare`] is already compiling — are skipped.
    /// Returns the names actually compiled and registered. A controller
    /// without a resolver compiles nothing.
    pub fn speculate_compile(&self, limit: usize) -> Vec<String> {
        let resolve = self.resolver.lock().clone();
        let Some(resolve) = resolve else {
            // Still checkpoint the demand ranking: a daemon ticking
            // without a resolver should not lose demand history across a
            // restart.
            self.persist_demand();
            return Vec::new();
        };
        let candidates = self
            .farm
            .demand
            .top(limit, |name| self.bitstreams.get(name).is_err());
        let mut compiled = Vec::new();
        for name in candidates {
            // Speculation shares the prepare path's name-keyed flights:
            // if a demand-driven prepare (or another speculation round)
            // already leads a compile of this app, don't duplicate the
            // P&R — the leader's publish caches it just the same.
            let FlightRole::Leader(flight) = self.farm.by_name.join(name.clone()) else {
                continue;
            };
            if self.bitstreams.get(&name).is_ok() {
                flight.publish(Ok(()));
                continue;
            }
            let mut span = self.telemetry.span("runtime.speculate");
            span.field("app", name.as_str());
            self.farm.counters.compiles.fetch_add(1, Ordering::Relaxed);
            let registered = resolve(&name)
                .and_then(|bitstream| self.bitstreams.insert_or_get(bitstream.renamed(&name)));
            let ok = registered.is_ok();
            span.field("ok", ok);
            flight.publish(registered.map(|_| ()));
            if ok {
                self.farm
                    .counters
                    .speculative_compiles
                    .fetch_add(1, Ordering::Relaxed);
                compiled.push(name);
            }
        }
        if !compiled.is_empty() {
            self.persist_bitstreams();
        }
        // The speculation tick doubles as the demand profile's checkpoint:
        // even a round that compiled nothing persists the ranking, so a
        // restart never loses more than one tick of demand history.
        self.persist_demand();
        compiled
    }

    fn check_fpga(&self, fpga: usize) -> Result<(), RuntimeError> {
        if fpga < self.resources.fpga_count() {
            Ok(())
        } else {
            Err(RuntimeError::InvalidConfig(format!(
                "FPGA {fpga} is out of range (cluster has {})",
                self.resources.fpga_count()
            )))
        }
    }

    /// The unified control-plane entry point: every management operation
    /// the controller offers, dispatched from one typed
    /// [`ControlRequest`]. The legacy methods (`deploy`,
    /// `deploy_with_quota`, `resume_from`, …) are thin shims over this.
    ///
    /// # Errors
    ///
    /// The union of what the individual operations return, as a typed
    /// [`RuntimeError`]. Use [`SystemController::execute`] to get failures
    /// as a [`ControlResponse::Err`] value instead (the wire shape).
    pub fn try_execute(&self, req: ControlRequest) -> Result<ControlResponse, RuntimeError> {
        match req {
            ControlRequest::Deploy(r) => match (r.restore, r.backend) {
                (Some(cp), _) => {
                    let handle = self.do_resume_from(&cp)?;
                    Ok(ControlResponse::Resumed(DeploySummary::from(&handle)))
                }
                (None, DeployBackend::Isa) => {
                    Ok(ControlResponse::Deployed(self.do_deploy_isa(&r.app)?))
                }
                (None, DeployBackend::Fabric) => {
                    let handle = self.do_deploy(&r.app, r.quota_bytes)?;
                    Ok(ControlResponse::Deployed(DeploySummary::from(&handle)))
                }
            },
            ControlRequest::Undeploy { tenant } => {
                self.undeploy(TenantId::new(tenant))?;
                Ok(ControlResponse::Undeployed { tenant })
            }
            ControlRequest::Checkpoint { tenant } => {
                let cp = self.suspend(TenantId::new(tenant))?;
                let mut summary = SuspendSummary::from(&cp);
                // The capsule is portable whenever its image (and thus
                // scan interface) is still registered; advertise that.
                if let Ok(portable) = self.lift_portable(&cp) {
                    summary = summary.with_portability(portable.scan_bits());
                }
                Ok(ControlResponse::Suspended(summary))
            }
            ControlRequest::Restore { tenant } => {
                let handle = self.resume(TenantId::new(tenant))?;
                Ok(ControlResponse::Resumed(DeploySummary::from(&handle)))
            }
            ControlRequest::Migrate { tenant, policy } => {
                let (m, ran) = self.migrate_with_policy(TenantId::new(tenant), policy)?;
                Ok(ControlResponse::Migrated(
                    MigrationSummary::from(&m).with_policy(ran),
                ))
            }
            ControlRequest::Evacuate { fpga } => {
                self.check_fpga(fpga)?;
                let report = self.evacuate(fpga);
                Ok(ControlResponse::Evacuated(EvacuationSummary::from_report(
                    fpga, &report,
                )))
            }
            ControlRequest::Fail { fpga } => {
                self.check_fpga(fpga)?;
                let report = self.fail_fpga(fpga);
                Ok(ControlResponse::FpgaFailed(FailureSummary::from_report(
                    fpga, &report,
                )))
            }
            ControlRequest::Recover { fpga } => {
                self.check_fpga(fpga)?;
                self.recover_fpga(fpga);
                Ok(ControlResponse::Recovered { fpga })
            }
            ControlRequest::Defragment => {
                let migrations = self
                    .defragment()
                    .iter()
                    .map(MigrationSummary::from)
                    .collect();
                Ok(ControlResponse::Defragmented { migrations })
            }
            ControlRequest::Status => Ok(ControlResponse::Status(self.status_summary())),
            ControlRequest::Prepare { app } => self.prepare(&app),
            ControlRequest::Scale { tenant, tiles } => {
                Ok(ControlResponse::Scaled(self.scale_isa(tenant, tiles)?))
            }
        }
    }

    /// Like [`SystemController::try_execute`], but failures come back as a
    /// [`ControlResponse::Err`] carrying the shared [`ApiError`] taxonomy
    /// — the exact value a remote `vitald` client would receive, so
    /// in-process and networked callers behave identically.
    pub fn execute(&self, req: ControlRequest) -> ControlResponse {
        self.try_execute(req)
            .unwrap_or_else(|e| ControlResponse::Err(ApiError::from(&e)))
    }

    /// Executes a batch admitted as **one allocator round**: the requests
    /// run back-to-back under a single `runtime.admission_round` telemetry
    /// span (the `vitald` service batches compatible deploys this way).
    /// Each request still answers individually — one response per request,
    /// in order.
    pub fn execute_many(&self, reqs: Vec<ControlRequest>) -> Vec<ControlResponse> {
        self.execute_round(reqs, 1)
    }

    /// Like [`SystemController::execute_many`], annotated with how many
    /// admission-queue shards contributed requests to the round. A
    /// sharded `vitald` sweeps compatible deploys from every shard into
    /// one allocator round so sharding does not fragment batching; the
    /// `shards_spanned` field makes those cross-shard rounds visible in
    /// telemetry (`runtime.cross_shard_rounds`).
    pub fn execute_round(
        &self,
        reqs: Vec<ControlRequest>,
        shards_spanned: usize,
    ) -> Vec<ControlResponse> {
        let mut span = self.telemetry.span("runtime.admission_round");
        span.field("batch", reqs.len());
        span.field("shards", shards_spanned);
        self.telemetry.inc_counter("runtime.admission_rounds", 1);
        if shards_spanned > 1 {
            self.telemetry.inc_counter("runtime.cross_shard_rounds", 1);
        }
        reqs.into_iter().map(|r| self.execute(r)).collect()
    }

    /// Arms a [`StatusDirty`] guard; hold it across any mutation the
    /// status snapshot must observe.
    fn mark_status_dirty(&self) -> StatusDirty<'_> {
        StatusDirty(&self.status_gen)
    }

    /// The [`ControlRequest::Status`] snapshot: per-device health and
    /// block occupancy plus tenancy and failure counters. Served from a
    /// generation-stamped cache — rebuilding the snapshot walks every
    /// block in the cluster, which a `Status`-polling control plane does
    /// thousands of times between mutations.
    pub fn status_summary(&self) -> StatusSummary {
        let generation = self.status_gen.load(Ordering::Acquire);
        {
            let cache = self.status_cache.lock();
            if let Some((cached_gen, cached)) = cache.as_ref() {
                if *cached_gen == generation {
                    return cached.clone();
                }
            }
        }
        let summary = self.build_status_summary();
        *self.status_cache.lock() = Some((generation, summary.clone()));
        summary
    }

    fn build_status_summary(&self) -> StatusSummary {
        let free_counts = self.resources.free_counts();
        let fpgas = (0..self.resources.fpga_count())
            .map(|f| {
                let health = match self.resources.health_of(f) {
                    FpgaHealth::Online => "Online",
                    FpgaHealth::Draining => "Draining",
                    FpgaHealth::Offline => "Offline",
                };
                let blocks = (0..self.resources.blocks_of(f))
                    .map(|b| {
                        let addr = vital_fabric::BlockAddr::new(
                            FpgaId::new(f as u32),
                            vital_fabric::PhysicalBlockId::new(b as u32),
                        );
                        match self.resources.state(addr) {
                            Some(crate::BlockState::Active(t)) => t.raw(),
                            _ => 0,
                        }
                    })
                    .collect();
                FpgaStatus {
                    fpga: f,
                    health: health.to_string(),
                    blocks,
                    free: free_counts[f],
                }
            })
            .collect();
        let stats = self.failure_stats();
        // Tenants scaled to zero tiles are still deployed, so list from
        // the tenant table, not the pool's owners.
        let (isa_tenants, isa_tiles_total, isa_tiles_free) = {
            let isa = self.isa.lock();
            match isa.as_ref() {
                Some(s) => {
                    let mut ids: Vec<u64> = s.tenants.keys().map(|t| t.raw()).collect();
                    ids.sort_unstable();
                    (ids, s.pool.total(), s.pool.free_count())
                }
                None => (Vec::new(), 0, 0),
            }
        };
        StatusSummary {
            fpgas,
            total_free: self.resources.total_free(),
            live_tenants: self.live_tenants().iter().map(|t| t.raw()).collect(),
            suspended_tenants: self.suspended_tenants().iter().map(|t| t.raw()).collect(),
            fpga_failures: stats.fpga_failures,
            fpga_recoveries: stats.fpga_recoveries,
            evacuations: stats.evacuations,
            tenants_migrated: stats.tenants_migrated,
            tenants_torn_down: stats.tenants_torn_down,
            isa_tenants,
            isa_tiles_total,
            isa_tiles_free,
        }
    }
}

/// Modelled time to switch `tiles` tiles to a new instruction stream, in
/// whole microseconds.
fn switch_us(tiles: usize) -> u64 {
    (tiles as f64 * TILE_SWITCH_S * 1.0e6).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_compiler::{Compiler, CompilerConfig};
    use vital_netlist::hls::{AppSpec, Operator};

    fn controller_with(names_and_pes: &[(&str, u32)]) -> SystemController {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        for &(name, pes) in names_and_pes {
            let mut spec = AppSpec::new(name);
            spec.add_operator("m", Operator::MacArray { pes });
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        c
    }

    #[test]
    fn topology_must_match_cluster_size() {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let fpgas = c.resources().fpga_count();
        let err = SystemController::new(RuntimeConfig::paper_cluster())
            .with_topology(Topology::ring(fpgas + 1))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig(_)));
        let c = c.with_topology(Topology::ring(fpgas)).unwrap();
        assert_eq!(c.topology().len(), fpgas);
    }

    #[test]
    fn pod_topology_controller_deploys_and_accounts_hops() {
        // 2 pods x 2 FPGAs, 4 blocks each. A 6-block app must span two
        // FPGAs; the allocator should keep the span inside one pod (1 hop)
        // rather than across the 3-hop pod boundary.
        let mut cfg = RuntimeConfig::paper_cluster();
        cfg.fpgas = 4;
        cfg.blocks_per_fpga = 4;
        let c = SystemController::new(cfg)
            .with_topology(Topology::pods(2, 2, 100.0, 25.0))
            .unwrap();
        let compiler = Compiler::new(CompilerConfig::default());
        let wide = (1..=40)
            .map(|i| {
                let mut spec = AppSpec::new("wide");
                spec.add_operator("m", Operator::MacArray { pes: i * 250 });
                compiler.compile(&spec).unwrap().into_bitstream()
            })
            .find(|b| b.block_count() > 4 && b.block_count() <= 8)
            .expect("some MAC size needs 5..=8 blocks");
        c.register(wide).unwrap();
        let h = c.deploy("wide").unwrap();
        let holdings = c.resources().holdings(h.tenant());
        let mut fpgas: Vec<u32> = holdings.iter().map(|b| b.fpga.index()).collect();
        fpgas.sort_unstable();
        fpgas.dedup();
        assert_eq!(fpgas.len(), 2, "6 blocks on 4-block FPGAs must span");
        let pods: std::collections::BTreeSet<usize> = fpgas
            .iter()
            .map(|&f| c.topology().pod_of(f as usize))
            .collect();
        assert_eq!(pods.len(), 1, "span crossed a pod boundary: {fpgas:?}");
    }

    #[test]
    fn deploy_and_undeploy_lifecycle() {
        let c = controller_with(&[("a", 8)]);
        let free_before = c.resources().total_free();
        let h = c.deploy("a").unwrap();
        assert!(c.resources().total_free() < free_before);
        assert_eq!(c.live_tenants(), vec![h.tenant()]);
        assert!(h.reconfig_duration() > Duration::ZERO);
        c.undeploy(h.tenant()).unwrap();
        assert_eq!(c.resources().total_free(), free_before);
        assert!(c.live_tenants().is_empty());
    }

    #[test]
    fn unknown_app_and_tenant_errors() {
        let c = controller_with(&[]);
        assert!(matches!(c.deploy("nope"), Err(RuntimeError::UnknownApp(_))));
        assert!(matches!(
            c.undeploy(TenantId::new(42)),
            Err(RuntimeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn tenants_get_isolated_memory_and_nics() {
        let c = controller_with(&[("a", 8), ("b", 8)]);
        let ha = c.deploy("a").unwrap();
        let hb = c.deploy("b").unwrap();
        assert_ne!(ha.tenant(), hb.tenant());
        assert_ne!(ha.nic().mac, hb.nic().mac);
        // No block is shared.
        let blocks_a: Vec<_> = ha.placed().addresses().collect();
        let blocks_b: Vec<_> = hb.placed().addresses().collect();
        assert!(blocks_a.iter().all(|b| !blocks_b.contains(b)));
        // Memory writes do not interfere (same primary FPGA or not).
        let mm_a = c.memory_of(ha.primary_fpga());
        mm_a.write(ha.tenant(), 0, b"aaaa").unwrap();
        let mm_b = c.memory_of(hb.primary_fpga());
        let mut buf = [0u8; 4];
        mm_b.read(hb.tenant(), 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn cluster_exhaustion_is_reported() {
        let c = controller_with(&[("big", 500)]); // ~9+ blocks each
        let mut handles = Vec::new();
        loop {
            match c.deploy("big") {
                Ok(h) => handles.push(h),
                Err(RuntimeError::InsufficientResources { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(handles.len() < 100, "runaway deployment loop");
        }
        assert!(!handles.is_empty());
        // Free one and retry: should fit again.
        c.undeploy(handles.pop().unwrap().tenant()).unwrap();
        assert!(c.deploy("big").is_ok());
    }

    #[test]
    fn defragment_consolidates_spanning_tenants() {
        // DSP-bound designs: 8 blocks (3700 DSPs) and 10 blocks (4700).
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        for (name, dsps) in [("eight", 3_700u32), ("ten", 4_700u32)] {
            let mut spec = AppSpec::new(name);
            spec.add_operator(
                "x",
                Operator::Custom {
                    slices: 200,
                    dsps,
                    brams: 0,
                },
            );
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        // One 8-block app per FPGA leaves 7 free everywhere.
        let fillers: Vec<_> = (0..4).map(|_| c.deploy("eight").unwrap()).collect();
        // The 10-block app must span (no FPGA has 10 free).
        let spanner = c.deploy("ten").unwrap();
        assert!(spanner.fpga_count() > 1);
        // Free one filler: a whole board opens up.
        c.undeploy(fillers[0].tenant()).unwrap();
        let migrated = c.defragment();
        assert_eq!(migrated.len(), 1);
        let m = &migrated[0];
        assert_eq!(m.tenant, spanner.tenant());
        assert!(m.fpgas_before > m.fpgas_after);
        assert_eq!(m.fpgas_after, 1);
        // The move charges 10 sequential per-block reconfigurations on the
        // target board, and the stored handle reflects the new cost.
        assert!(m.reconfig > Duration::ZERO);
        let live = c.tenants.lock().get(&m.tenant).unwrap().handle.clone();
        assert_eq!(live.reconfig_duration(), m.reconfig);
        assert!(
            live.reconfig_duration() > spanner.reconfig_duration(),
            "10 blocks on one ICAP take longer than the spanning split"
        );
        // The live placement now sits on a single FPGA.
        let holdings = c.resources().holdings(spanner.tenant());
        let mut fpgas: Vec<_> = holdings.iter().map(|b| b.fpga).collect();
        fpgas.sort_unstable();
        fpgas.dedup();
        assert_eq!(fpgas.len(), 1, "migrated onto one FPGA");
        // Idempotent: nothing left to do.
        assert!(c.defragment().is_empty());
        // Teardown still releases everything.
        c.undeploy(spanner.tenant()).unwrap();
        for f in fillers.into_iter().skip(1) {
            c.undeploy(f.tenant()).unwrap();
        }
    }

    #[test]
    fn heterogeneous_cluster_deploys_across_mixed_devices() {
        // Two big boards and one small one; the same bitstreams deploy
        // everywhere because blocks are identical.
        let c = SystemController::with_layout(RuntimeConfig::paper_cluster(), vec![15, 15, 4]);
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("het");
        spec.add_operator("m", Operator::MacArray { pes: 100 }); // ~2 blocks
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let mut handles = Vec::new();
        while let Ok(h) = c.deploy("het") {
            handles.push(h);
        }
        // 34 blocks / 2 per deployment -> 17 instances, some on the small
        // board.
        assert!(handles.len() >= 16, "deployed {}", handles.len());
        let used_small = handles
            .iter()
            .any(|h| h.placed().addresses().any(|a| a.fpga.index() == 2));
        assert!(used_small, "the small board must participate");
    }

    #[test]
    fn register_compiled_reuses_cached_images() {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        let spec_named = |name: &str| {
            let mut spec = AppSpec::new(name);
            spec.add_operator("m", Operator::MacArray { pes: 8 });
            spec
        };
        let cold = c.register_compiled(&compiler, &spec_named("orig")).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.timings.is_some());
        // Identical netlist under another name: cached images, zero P&R.
        let warm = c.register_compiled(&compiler, &spec_named("copy")).unwrap();
        assert!(warm.cache_hit);
        assert!(warm.timings.is_none());
        assert_eq!(warm.digest, cold.digest);
        assert_eq!(c.bitstreams().get("copy").unwrap().digest(), cold.digest);
        // Replaying a spec is idempotent, and both names deploy.
        let replay = c.register_compiled(&compiler, &spec_named("copy")).unwrap();
        assert!(replay.cache_hit);
        let h = c.deploy("copy").unwrap();
        c.undeploy(h.tenant()).unwrap();
        let stats = c.bitstreams().cache_stats();
        assert!(stats.hits >= 2 && stats.misses >= 1, "stats {stats:?}");
    }

    #[test]
    fn undeploy_completes_teardown_when_memory_errors() {
        // Force the destroy_space failure by removing the space out of
        // band: undeploy must still release blocks, the bandwidth share
        // and the vNIC, then report the memory error.
        let c = controller_with(&[("a", 8)]);
        let free_before = c.resources().total_free();
        let h = c.deploy("a").unwrap();
        c.memory_of(h.primary_fpga())
            .destroy_space(h.tenant())
            .unwrap();
        let err = c.undeploy(h.tenant()).unwrap_err();
        assert!(matches!(err, RuntimeError::Periph(_)), "got {err}");
        // Nothing leaked despite the error.
        assert_eq!(c.resources().total_free(), free_before);
        assert_eq!(c.switch().nic_count(), 0);
        assert_eq!(c.arbiter_of(h.primary_fpga()).total_demand_gbps(), 0.0);
        assert!(c.live_tenants().is_empty());
        // The tenant is gone: a second undeploy is UnknownTenant.
        assert!(matches!(
            c.undeploy(h.tenant()),
            Err(RuntimeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn deploy_rolls_back_when_bandwidth_floor_unmet() {
        // One 15-block FPGA; each deploy asks for a quarter of the
        // channel, so the fifth oversubscribes it and must be rejected
        // with nothing left behind.
        let mut config = RuntimeConfig::paper_cluster();
        config.min_bandwidth_fraction = 1.0;
        let c = SystemController::with_layout(config, vec![15]);
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("one");
        spec.add_operator("m", Operator::MacArray { pes: 8 }); // 1 block
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let handles: Vec<_> = (0..4).map(|_| c.deploy("one").unwrap()).collect();
        for h in &handles {
            assert!(
                (h.bandwidth().granted_gbps - h.bandwidth().requested_gbps).abs() < 1e-6,
                "undersubscribed grants meet demand: {:?}",
                h.bandwidth()
            );
        }
        let free = c.resources().total_free();
        let spaces = c.memory_of(0).tenant_count();
        let demand = c.arbiter_of(0).total_demand_gbps();
        let err = c.deploy("one").unwrap_err();
        assert!(
            matches!(err, RuntimeError::BandwidthUnavailable { fpga: 0, .. }),
            "got {err}"
        );
        // The rejected deploy left no trace.
        assert_eq!(c.resources().total_free(), free);
        assert_eq!(c.memory_of(0).tenant_count(), spaces);
        assert_eq!(c.arbiter_of(0).total_demand_gbps(), demand);
        assert_eq!(c.switch().nic_count(), 4);
        assert_eq!(c.live_tenants().len(), 4);
        // Freeing one tenant clears the floor again.
        c.undeploy(handles[0].tenant()).unwrap();
        assert!(c.deploy("one").is_ok());
    }

    #[test]
    fn fail_fpga_migrates_tenants_to_survivors() {
        let c = controller_with(&[("a", 8)]);
        let h = c.deploy("a").unwrap();
        let home = h.primary_fpga();
        let block_count = c.resources().holdings(h.tenant()).len();
        // DRAM contents on the board that will crash.
        c.memory_of(home).write(h.tenant(), 0, b"gone").unwrap();
        let report = c.fail_fpga(home);
        assert_eq!(report.migrated.len(), 1);
        assert!(report.torn_down.is_empty());
        let m = &report.migrated[0];
        assert_eq!(m.tenant, h.tenant());
        assert!(m.reconfig > Duration::ZERO);
        // The live placement avoids the failed board entirely.
        let holdings = c.resources().holdings(h.tenant());
        assert_eq!(holdings.len(), block_count);
        assert!(holdings.iter().all(|b| b.fpga.index() as usize != home));
        // DRAM moved to the new primary with the same quota, zeroed.
        let live = c.tenants.lock().get(&h.tenant()).unwrap().handle.clone();
        assert_ne!(live.primary_fpga(), home);
        let stats = c.memory_of(live.primary_fpga()).stats(h.tenant()).unwrap();
        assert_eq!(stats.quota_bytes, c.config().default_quota_bytes);
        let mut buf = [0u8; 4];
        c.memory_of(live.primary_fpga())
            .read(h.tenant(), 0, &mut buf)
            .unwrap();
        assert_eq!(buf, [0u8; 4], "crashed board's contents are lost");
        assert_eq!(c.failure_stats().fpga_failures, 1);
        assert_eq!(c.failure_stats().tenants_migrated, 1);
        // Undeploy still tears everything down cleanly.
        c.undeploy(h.tenant()).unwrap();
        assert_eq!(c.switch().nic_count(), 0);
        // Recovery restores the board's capacity.
        assert_eq!(c.resources().health_of(home), FpgaHealth::Offline);
        c.recover_fpga(home);
        assert_eq!(c.resources().health_of(home), FpgaHealth::Online);
        assert_eq!(c.resources().total_free(), 60);
    }

    #[test]
    fn fail_fpga_tears_down_unplaceable_tenants() {
        // A 10-block tenant on the only board big enough: when that board
        // dies there is nowhere to go.
        let c = SystemController::with_layout(RuntimeConfig::paper_cluster(), vec![15, 4]);
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("big");
        spec.add_operator(
            "x",
            Operator::Custom {
                slices: 200,
                dsps: 4_700,
                brams: 0,
            },
        );
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let h = c.deploy("big").unwrap();
        assert_eq!(h.primary_fpga(), 0);
        let report = c.fail_fpga(0);
        assert!(report.migrated.is_empty());
        assert_eq!(report.torn_down, vec![h.tenant()]);
        assert!(c.live_tenants().is_empty());
        assert_eq!(c.switch().nic_count(), 0);
        assert_eq!(c.memory_of(0).tenant_count(), 0);
        assert_eq!(c.arbiter_of(0).total_demand_gbps(), 0.0);
        assert_eq!(c.failure_stats().tenants_torn_down, 1);
    }

    #[test]
    fn evacuate_drains_by_migration_without_dram_loss() {
        let c = controller_with(&[("a", 8)]);
        let h = c.deploy("a").unwrap();
        let home = h.primary_fpga();
        c.memory_of(home).write(h.tenant(), 0, b"kept").unwrap();
        let report = c.evacuate(home);
        assert_eq!(report.migrated.len(), 1);
        assert!(report.unmoved.is_empty());
        // Logic moved off, the board is empty and draining.
        let holdings = c.resources().holdings(h.tenant());
        assert!(holdings.iter().all(|b| b.fpga.index() as usize != home));
        assert!(c.resources().tenants_on(home).is_empty());
        assert_eq!(c.resources().health_of(home), FpgaHealth::Draining);
        // The DRAM home moved off the draining board with its contents —
        // the board could now be powered down without data loss.
        assert_eq!(c.memory_of(home).tenant_count(), 0);
        let new_home = holdings[0].fpga.index() as usize;
        assert_ne!(new_home, home);
        let mut buf = [0u8; 4];
        c.memory_of(new_home).read(h.tenant(), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"kept");
        // No new deployment lands on the draining board.
        let h2 = c.deploy("a").unwrap();
        assert!(c
            .resources()
            .holdings(h2.tenant())
            .iter()
            .all(|b| b.fpga.index() as usize != home));
        assert_eq!(c.failure_stats().evacuations, 1);
        c.undeploy(h.tenant()).unwrap();
        c.undeploy(h2.tenant()).unwrap();
        assert_eq!(c.switch().nic_count(), 0);
    }

    #[test]
    fn evacuate_reports_unmovable_tenants() {
        // Both boards nearly full: the tenant on the draining board has
        // nowhere to go and must stay, unharmed.
        let c = SystemController::with_layout(RuntimeConfig::paper_cluster(), vec![15, 15]);
        let compiler = Compiler::new(CompilerConfig::default());
        for (name, dsps) in [("twelve", 5_600u32), ("eight", 3_700u32)] {
            let mut spec = AppSpec::new(name);
            spec.add_operator(
                "x",
                Operator::Custom {
                    slices: 200,
                    dsps,
                    brams: 0,
                },
            );
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        let a = c.deploy("twelve").unwrap(); // 12 blocks on board 0
        let b = c.deploy("twelve").unwrap(); // 12 blocks on board 1
        assert_ne!(a.primary_fpga(), b.primary_fpga());
        let report = c.evacuate(a.primary_fpga());
        assert!(report.migrated.is_empty());
        assert_eq!(report.unmoved, vec![a.tenant()]);
        // The tenant still runs where it was.
        assert_eq!(c.resources().holdings(a.tenant()).len(), 12);
        // Freeing the other board lets a retry finish the drain.
        c.undeploy(b.tenant()).unwrap();
        let retry = c.evacuate(a.primary_fpga());
        assert_eq!(retry.migrated.len(), 1);
        assert!(retry.unmoved.is_empty());
        c.undeploy(a.tenant()).unwrap();
    }

    #[test]
    fn try_with_layout_rejects_degenerate_clusters() {
        let cfg = RuntimeConfig::paper_cluster();
        assert!(matches!(
            SystemController::try_with_layout(cfg, vec![]),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(matches!(
            SystemController::try_with_layout(cfg, vec![15, 0, 15]),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(SystemController::try_with_layout(cfg, vec![15, 15]).is_ok());
    }

    #[test]
    fn controller_ops_emit_spans_with_allocation_fields() {
        use vital_telemetry::{FieldValue, Telemetry};
        let tel = Telemetry::recording();
        let c = SystemController::new(RuntimeConfig::paper_cluster()).with_telemetry(tel.clone());
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("a");
        spec.add_operator("m", Operator::MacArray { pes: 8 });
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        let h = c.deploy("a").unwrap();
        c.evacuate(h.primary_fpga());
        c.defragment();
        c.fail_fpga(h.primary_fpga());
        c.undeploy(h.tenant()).ok();

        let recs = tel.records();
        let deploy = recs.iter().find(|r| r.name == "runtime.deploy").unwrap();
        let keys: Vec<&str> = deploy.fields.iter().map(|(k, _)| *k).collect();
        for key in ["app", "needed", "round", "fpgas_used", "hop_cost", "tenant"] {
            assert!(keys.contains(&key), "deploy span missing {key}: {keys:?}");
        }
        assert_eq!(
            deploy
                .fields
                .iter()
                .find(|(k, _)| *k == "hop_cost")
                .unwrap()
                .1,
            FieldValue::U64(0),
            "single-FPGA deploy has zero hop cost"
        );
        for op in [
            "runtime.evacuate",
            "runtime.defragment",
            "runtime.fail_fpga",
            "runtime.undeploy",
        ] {
            assert!(recs.iter().any(|r| r.name == op), "missing span {op}");
        }
        assert_eq!(tel.metrics().counters["runtime.deploys"], 1);
    }

    #[test]
    fn deployments_can_span_fpgas_under_pressure() {
        let c = controller_with(&[("big", 560)]); // 10 blocks (DSP-bound)
        let mut spanned = false;
        let mut handles = Vec::new();
        while let Ok(h) = c.deploy("big") {
            spanned |= h.fpga_count() > 1;
            handles.push(h);
        }
        assert!(
            spanned,
            "10-block apps on 15-block FPGAs must eventually span"
        );
    }

    /// A chain of operators with `width`-bit edges: cuts between blocks
    /// become real channels, so the deployment exercises the interface.
    fn chained_spec(name: &str, pipelines: u32, width: u32) -> AppSpec {
        let mut s = AppSpec::new(name);
        let buf = s.add_operator("w", Operator::Buffer { kb: 720, banks: 4 });
        let mac = s.add_operator("mac", Operator::MacArray { pes: 64 });
        s.add_edge(buf, mac, width).unwrap();
        let mut prev = mac;
        for i in 0..pipelines {
            let p = s.add_operator(format!("p{i}"), Operator::Pipeline { slices: 200 });
            s.add_edge(prev, p, width).unwrap();
            prev = p;
        }
        s.add_input("ifm", mac, 128).unwrap();
        s.add_output("ofm", prev, 128).unwrap();
        s
    }

    fn register_chained(c: &SystemController, name: &str, pipelines: u32, width: u32) {
        let compiler = Compiler::new(CompilerConfig::default());
        c.register(
            compiler
                .compile(&chained_spec(name, pipelines, width))
                .unwrap()
                .into_bitstream(),
        )
        .unwrap();
    }

    #[test]
    fn suspend_resume_roundtrip_is_lossless() {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        register_chained(&c, "a", 40, 64); // 3 blocks, with channels
        let h = c.deploy("a").unwrap();
        let t = h.tenant();
        c.memory_of(h.primary_fpga())
            .write(t, 4096, b"survives")
            .unwrap();
        c.run_tenant(t, 64).unwrap();
        let occupancy = c.channel_occupancy(t).unwrap();
        assert!(
            occupancy.iter().sum::<usize>() > 0,
            "running the tenant must leave flits in flight"
        );
        let free_before = c.resources().total_free();

        let checkpoint = c.suspend(t).unwrap();
        assert_eq!(checkpoint.tenant, t);
        assert!(checkpoint.total_flits() > 0);
        assert!(checkpoint.dram_bytes() > 0);
        // Fully off the cluster: blocks, DRAM, bandwidth and NIC are free.
        assert!(c.live_tenants().is_empty());
        assert_eq!(c.suspended_tenants(), vec![t]);
        assert!(c.resources().total_free() > free_before);
        assert_eq!(c.memory_of(h.primary_fpga()).tenant_count(), 0);
        assert_eq!(c.switch().nic_count(), 0);
        assert!(matches!(
            c.run_tenant(t, 1),
            Err(RuntimeError::UnknownTenant(_))
        ));

        let h2 = c.resume(t).unwrap();
        assert_eq!(h2.tenant(), t, "tenant id survives the round trip");
        assert_eq!(c.live_tenants(), vec![t]);
        assert!(c.suspended_tenants().is_empty());
        // Channel occupancy is reproduced exactly, in plan order.
        assert_eq!(c.channel_occupancy(t).unwrap(), occupancy);
        // DRAM contents are reproduced byte-for-byte.
        let mut buf = [0u8; 8];
        c.memory_of(h2.primary_fpga())
            .read(t, 4096, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"survives");
        // The bandwidth share was re-requested at the checkpointed value.
        assert_eq!(
            h2.bandwidth().requested_gbps,
            checkpoint.placement.requested_gbps
        );
        // A fresh deployment must not collide with the resumed id.
        let other = c.deploy("a").unwrap();
        assert_ne!(other.tenant(), t);
        // And the tenant keeps running from where it stopped.
        c.run_tenant(t, 16).unwrap();
        c.undeploy(t).unwrap();
        c.undeploy(other.tenant()).unwrap();
    }

    #[test]
    fn suspend_mid_serialization_window_is_rejected_cleanly() {
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        register_chained(&c, "a", 40, 64); // 3 blocks, with channels
        let h = c.deploy("a").unwrap();
        let t = h.tenant();
        c.run_tenant(t, 8).unwrap();
        // Put one channel onto the inter-FPGA ring with a flit wider than
        // the link moves per cycle: the push opens a multi-cycle
        // serialization window that is still open at the current clock.
        {
            let spec = ChannelSpec::for_link(LinkClass::InterFpga, 512);
            assert!(
                spec.serialization_interval > 1,
                "512-bit flits must serialize over the 100 Gb/s ring"
            );
            let mut ch = Channel::new(spec);
            let mut tenants = c.tenants.lock();
            let state = tenants.get_mut(&t).unwrap();
            ch.push(state.clock);
            state.channels[0] = ch;
        }
        let err = c.suspend(t).unwrap_err();
        let RuntimeError::Quiesce(vital_interface::QuiesceError::MidSerialization {
            now,
            ready_at,
        }) = err
        else {
            panic!("expected a quiesce rejection, got {err}");
        };
        assert_eq!(now, 8);
        assert!(ready_at > now);
        // The rejection had no side effects: still deployed, still running.
        assert_eq!(c.live_tenants(), vec![t]);
        assert!(c.suspended_tenants().is_empty());
        assert!(c.channel_occupancy(t).is_ok());
        // Clock-gate the producers past the window and retry.
        c.settle_tenant(t, ready_at - now).unwrap();
        let checkpoint = c.suspend(t).unwrap();
        assert_eq!(checkpoint.tenant, t);
        assert!(checkpoint.total_flits() > 0);
    }

    #[test]
    fn migrate_live_preserves_channel_and_dram_state() {
        // Same shape as the defragment test — free a board, then live-
        // migrate the spanning tenant onto it — but with an app whose
        // channels carry real traffic.
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        let mut spec = AppSpec::new("eight");
        spec.add_operator(
            "x",
            Operator::Custom {
                slices: 200,
                dsps: 3_700,
                brams: 0,
            },
        );
        c.register(compiler.compile(&spec).unwrap().into_bitstream())
            .unwrap();
        register_chained(&c, "nine", 130, 64); // 9 blocks, dozens of channels
        let fillers: Vec<_> = (0..4).map(|_| c.deploy("eight").unwrap()).collect();
        let spanner = c.deploy("nine").unwrap();
        assert!(spanner.fpga_count() > 1);
        let t = spanner.tenant();
        c.memory_of(spanner.primary_fpga())
            .write(t, 0, b"payload")
            .unwrap();
        c.run_tenant(t, 200).unwrap();
        let occupancy = c.channel_occupancy(t).unwrap();
        assert!(occupancy.iter().sum::<usize>() > 0);

        c.undeploy(fillers[0].tenant()).unwrap();
        let m = c.migrate_live(t).unwrap();
        assert_eq!(m.tenant, t);
        assert_eq!(m.fpgas_after, 1);
        assert!(m.hop_cost_after <= m.hop_cost_before);
        // The tenant is live (not parked) on the new placement with its
        // interface and DRAM state intact.
        assert!(c.live_tenants().contains(&t));
        assert!(c.suspended_tenants().is_empty());
        assert_eq!(c.channel_occupancy(t).unwrap(), occupancy);
        let new_primary = SystemController::primary_of(&c.resources().holdings(t));
        let mut buf = [0u8; 7];
        c.memory_of(new_primary).read(t, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
        c.run_tenant(t, 16).unwrap();
    }

    #[test]
    fn defragment_never_increases_hop_cost() {
        // Regression test: consolidation must be judged on ring hops too,
        // not only on the number of FPGAs spanned. Run the consolidation
        // scenario and check the invariant on every reported move.
        let c = SystemController::new(RuntimeConfig::paper_cluster());
        let compiler = Compiler::new(CompilerConfig::default());
        for (name, dsps) in [("eight", 3_700u32), ("ten", 4_700u32)] {
            let mut spec = AppSpec::new(name);
            spec.add_operator(
                "x",
                Operator::Custom {
                    slices: 200,
                    dsps,
                    brams: 0,
                },
            );
            c.register(compiler.compile(&spec).unwrap().into_bitstream())
                .unwrap();
        }
        let fillers: Vec<_> = (0..4).map(|_| c.deploy("eight").unwrap()).collect();
        let spanners: Vec<_> = (0..2).map(|_| c.deploy("ten").ok()).collect();
        for f in &fillers {
            c.undeploy(f.tenant()).unwrap();
        }
        let migrated = c.defragment();
        assert!(!migrated.is_empty());
        for m in &migrated {
            assert!(
                m.hop_cost_after <= m.hop_cost_before,
                "defragmentation increased hop cost for {}: {} -> {}",
                m.tenant,
                m.hop_cost_before,
                m.hop_cost_after
            );
            assert!(m.fpgas_after < m.fpgas_before);
            // Consolidation preserved the tenant: still live, never parked.
            assert!(c.live_tenants().contains(&m.tenant));
        }
        assert!(c.suspended_tenants().is_empty());
        drop(spanners);
    }
}
