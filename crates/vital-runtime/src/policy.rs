//! The communication-aware multi-round allocation policy (paper §3.4).
//!
//! Round 1 searches for a *single* FPGA with enough free blocks; each
//! following round admits one more FPGA. Within a round the policy is
//! best-fit (fewest leftover blocks) to limit fragmentation.
//!
//! When spanning is unavoidable the policy is genuinely
//! *communication-aware*: the FPGAs of the cluster form a bidirectional
//! ring (§2.2), so for every candidate primary device the policy
//! enumerates partner sets and picks the set minimizing the **total
//! ring-hop distance to the primary**, tie-breaking on the primary's free
//! count (a larger primary keeps the majority of blocks local) and then on
//! the lowest device index for determinism. The chosen set's hop cost is
//! reported in [`AllocationOutcome::hop_cost`] so the runtime can export
//! it as a telemetry field.
//!
//! Earlier revisions ordered spanning candidates by free count alone,
//! which could place a two-FPGA tenant on opposite sides of the ring even
//! when an adjacent pair had enough blocks; the
//! `spanning_prefers_ring_adjacent_pair` regression test locks in the
//! fixed behaviour.

use vital_cluster::Topology;
use vital_fabric::{BlockAddr, FpgaId};

/// Hop distance between two free-list indices on the cluster topology.
fn hops(topology: &Topology, a: usize, b: usize) -> usize {
    topology.hops(FpgaId::new(a as u32), FpgaId::new(b as u32))
}

/// The result of an allocation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationOutcome {
    /// The chosen blocks, grouped primary-FPGA-first.
    pub blocks: Vec<BlockAddr>,
    /// How many FPGAs the allocation spans (the round that succeeded).
    pub fpgas_used: usize,
    /// Index of the primary FPGA (holds the largest share of blocks).
    /// Meaningless when `fpgas_used == 0`.
    pub primary: usize,
    /// Total ring-hop distance from every secondary FPGA to the primary
    /// (0 for single-FPGA allocations).
    pub hop_cost: usize,
}

impl AllocationOutcome {
    /// The trivial outcome of a zero-block request.
    fn empty() -> Self {
        AllocationOutcome {
            blocks: Vec::new(),
            fpgas_used: 0,
            primary: 0,
            hop_cost: 0,
        }
    }
}

/// Allocates `needed` blocks from per-FPGA free lists using the multi-round
/// policy. `free_lists[f]` must contain the free blocks of FPGA `f`, with
/// the FPGAs arranged on a bidirectional ring in index order.
///
/// Returns `None` when the cluster does not have `needed` free blocks in
/// total.
pub fn allocate_blocks(free_lists: &[Vec<BlockAddr>], needed: usize) -> Option<AllocationOutcome> {
    if free_lists.is_empty() {
        // Preserve the pre-topology early returns without building a
        // degenerate ring.
        return (needed == 0).then(AllocationOutcome::empty);
    }
    allocate_blocks_on(&Topology::ring(free_lists.len()), free_lists, needed)
}

/// [`allocate_blocks`] generalized over an explicit cluster [`Topology`]:
/// hop costs come from the topology's shortest paths instead of assuming
/// a single ring, so the same multi-round policy works on pod graphs.
/// `free_lists[f]` must contain the free blocks of FPGA `f` of the
/// topology.
pub fn allocate_blocks_on(
    topology: &Topology,
    free_lists: &[Vec<BlockAddr>],
    needed: usize,
) -> Option<AllocationOutcome> {
    if needed == 0 {
        return Some(AllocationOutcome {
            blocks: Vec::new(),
            fpgas_used: 0,
            primary: 0,
            hop_cost: 0,
        });
    }
    let total_free: usize = free_lists.iter().map(Vec::len).sum();
    if total_free < needed {
        return None;
    }

    // Round 1: one FPGA, best fit (smallest sufficient free count).
    let single = free_lists
        .iter()
        .enumerate()
        .filter(|(_, free)| free.len() >= needed)
        .min_by_key(|(_, free)| free.len());
    if let Some((f, free)) = single {
        return Some(AllocationOutcome {
            blocks: free[..needed].to_vec(),
            fpgas_used: 1,
            primary: f,
            hop_cost: 0,
        });
    }

    // Rounds 2..=N: admit one more FPGA per round. For every candidate
    // primary, search partner sets of the round's size among FPGAs that
    // still have free blocks, minimizing total ring-hop distance to the
    // primary; ties go to the primary with the most free blocks, then the
    // lowest primary index.
    for round in 2..=free_lists.len() {
        let mut best: Option<Candidate> = None;
        for primary in 0..free_lists.len() {
            if free_lists[primary].is_empty() {
                continue;
            }
            let others: Vec<usize> = (0..free_lists.len())
                .filter(|&f| f != primary && !free_lists[f].is_empty())
                .collect();
            if others.len() < round - 1 {
                continue;
            }
            let Some((partners, hop_cost)) =
                best_partner_set(topology, free_lists, primary, &others, round - 1, needed)
            else {
                continue;
            };
            let candidate = Candidate {
                primary,
                partners,
                hop_cost,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    (
                        candidate.hop_cost,
                        std::cmp::Reverse(free_lists[primary].len()),
                        primary,
                    ) < (
                        b.hop_cost,
                        std::cmp::Reverse(free_lists[b.primary].len()),
                        b.primary,
                    )
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        if let Some(chosen) = best {
            return Some(fill(free_lists, topology, &chosen, needed));
        }
    }
    None
}

struct Candidate {
    primary: usize,
    partners: Vec<usize>,
    hop_cost: usize,
}

/// Picks the feasible partner set of size `k` minimizing total hop
/// distance to `primary` (tie-break: more free blocks, then lower hop
/// pattern by index order). Exhaustive when few candidates; otherwise a
/// nearest-first greedy prefix, which is the common case anyway.
fn best_partner_set(
    topology: &Topology,
    free_lists: &[Vec<BlockAddr>],
    primary: usize,
    others: &[usize],
    k: usize,
    needed: usize,
) -> Option<(Vec<usize>, usize)> {
    let primary_free = free_lists[primary].len();
    let feasible = |set: &[usize]| {
        primary_free + set.iter().map(|&f| free_lists[f].len()).sum::<usize>() >= needed
    };
    let cost = |set: &[usize]| {
        set.iter()
            .map(|&f| hops(topology, primary, f))
            .sum::<usize>()
    };

    if others.len() <= 16 {
        // Exhaustive over all C(n, k) subsets via bitmask; n ≤ 16 keeps
        // this ≤ 65536 subsets, trivial at cluster scale (paper: 4 FPGAs).
        let mut best: Option<(Vec<usize>, usize, usize)> = None; // (set, cost, free)
        for mask in 0u32..(1 << others.len()) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let set: Vec<usize> = others
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &f)| f)
                .collect();
            if !feasible(&set) {
                continue;
            }
            let c = cost(&set);
            let free: usize = set.iter().map(|&f| free_lists[f].len()).sum();
            let better = match &best {
                None => true,
                Some((_, bc, bf)) => (c, std::cmp::Reverse(free)) < (*bc, std::cmp::Reverse(*bf)),
            };
            if better {
                best = Some((set, c, free));
            }
        }
        best.map(|(set, c, _)| (set, c))
    } else {
        // Large cluster fallback: nearest-first greedy (free count breaks
        // hop ties so the prefix carries the most capacity per hop).
        let mut sorted = others.to_vec();
        sorted.sort_by_key(|&f| {
            (
                hops(topology, primary, f),
                std::cmp::Reverse(free_lists[f].len()),
                f,
            )
        });
        let set = sorted[..k].to_vec();
        feasible(&set).then(|| {
            let c = cost(&set);
            (set, c)
        })
    }
}

/// Materializes a candidate: fill the primary first, then partners in
/// nearest-first order, so the majority of blocks stays local and traffic
/// crosses the fewest ring links.
fn fill(
    free_lists: &[Vec<BlockAddr>],
    topology: &Topology,
    chosen: &Candidate,
    needed: usize,
) -> AllocationOutcome {
    let mut order = vec![chosen.primary];
    let mut partners = chosen.partners.clone();
    partners.sort_by_key(|&f| (hops(topology, chosen.primary, f), f));
    order.extend(partners);

    let mut blocks = Vec::with_capacity(needed);
    for &f in &order {
        let take = free_lists[f].len().min(needed - blocks.len());
        blocks.extend_from_slice(&free_lists[f][..take]);
        if blocks.len() == needed {
            break;
        }
    }
    let mut fpgas: Vec<_> = blocks.iter().map(|b| b.fpga).collect();
    fpgas.sort_unstable();
    fpgas.dedup();
    AllocationOutcome {
        fpgas_used: fpgas.len(),
        blocks,
        primary: chosen.primary,
        hop_cost: chosen.hop_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_fabric::{FpgaId, PhysicalBlockId};

    fn free(f: u32, blocks: &[u32]) -> Vec<BlockAddr> {
        blocks
            .iter()
            .map(|&b| BlockAddr::new(FpgaId::new(f), PhysicalBlockId::new(b)))
            .collect()
    }

    #[test]
    fn round_one_prefers_single_fpga_best_fit() {
        let lists = vec![free(0, &[0, 1, 2, 3, 4]), free(1, &[0, 1, 2])];
        // Needs 3: FPGA 1 is the tighter fit.
        let out = allocate_blocks(&lists, 3).unwrap();
        assert_eq!(out.fpgas_used, 1);
        assert_eq!(out.primary, 1);
        assert_eq!(out.hop_cost, 0);
        assert!(out.blocks.iter().all(|b| b.fpga == FpgaId::new(1)));
    }

    #[test]
    fn spans_only_when_no_single_fpga_fits() {
        let lists = vec![free(0, &[0, 1, 2, 3]), free(1, &[0, 1, 2])];
        let out = allocate_blocks(&lists, 6).unwrap();
        assert_eq!(out.fpgas_used, 2);
        assert_eq!(out.primary, 0);
        assert_eq!(out.hop_cost, 1);
        // Majority on the larger (primary) FPGA.
        let on_zero = out
            .blocks
            .iter()
            .filter(|b| b.fpga == FpgaId::new(0))
            .count();
        assert_eq!(on_zero, 4);
    }

    #[test]
    fn uses_minimum_number_of_fpgas() {
        let lists = vec![
            free(0, &[0, 1]),
            free(1, &[0, 1, 2]),
            free(2, &[0]),
            free(3, &[0, 1]),
        ];
        // Needs 5: the largest FPGA plus one neighbour suffice -> 2 FPGAs.
        let out = allocate_blocks(&lists, 5).unwrap();
        assert_eq!(out.fpgas_used, 2);
        assert_eq!(out.hop_cost, 1);
    }

    #[test]
    fn fails_when_cluster_is_too_full() {
        let lists = vec![free(0, &[0]), free(1, &[])];
        assert!(allocate_blocks(&lists, 2).is_none());
    }

    #[test]
    fn zero_need_is_trivially_satisfied() {
        let out = allocate_blocks(&[], 0).unwrap();
        assert!(out.blocks.is_empty());
        assert_eq!(out.fpgas_used, 0);
        assert_eq!(out.hop_cost, 0);
    }

    /// Regression for the free-count-only spanning bug: on a 4-FPGA ring
    /// with free counts [3, 2, 3, 0], free-count ordering pairs FPGAs 0
    /// and 2 — *opposite sides* of the ring (2 hops). The fixed policy
    /// must pick an adjacent pair (1 hop) that still fits the request.
    #[test]
    fn spanning_prefers_ring_adjacent_pair() {
        let lists = vec![
            free(0, &[0, 1, 2]),
            free(1, &[0, 1]),
            free(2, &[0, 1, 2]),
            free(3, &[]),
        ];
        let out = allocate_blocks(&lists, 5).unwrap();
        assert_eq!(out.fpgas_used, 2);
        assert_eq!(out.hop_cost, 1, "must span an adjacent pair, not {{0, 2}}");
        let mut fpgas: Vec<u32> = out.blocks.iter().map(|b| b.fpga.index()).collect();
        fpgas.sort_unstable();
        fpgas.dedup();
        let ring = vital_cluster::RingNetwork::new(4);
        assert_eq!(
            ring.hops(FpgaId::new(fpgas[0]), FpgaId::new(fpgas[1])),
            1,
            "chosen pair {fpgas:?} is not ring-adjacent"
        );
        // Primary keeps the majority.
        let on_primary = out
            .blocks
            .iter()
            .filter(|b| b.fpga.index() as usize == out.primary)
            .count();
        assert_eq!(on_primary, 3);
    }

    /// When the nearest neighbours cannot satisfy the request, the policy
    /// must still find the cheapest *feasible* set rather than giving up
    /// on the round (the greedy prefix would skip to a wider round).
    #[test]
    fn spanning_falls_back_to_farther_fpga_when_neighbours_are_small() {
        let lists = vec![
            free(0, &[0, 1, 2, 3]),
            free(1, &[0]),
            free(2, &[0, 1, 2, 3]),
            free(3, &[0]),
        ];
        // Needs 8: only {0, 2} (2 hops) has the capacity at round 2.
        let out = allocate_blocks(&lists, 8).unwrap();
        assert_eq!(out.fpgas_used, 2);
        assert_eq!(out.hop_cost, 2);
    }

    #[test]
    fn three_way_span_minimizes_total_hops() {
        let lists = vec![
            free(0, &[0, 1]),
            free(1, &[0, 1]),
            free(2, &[0, 1]),
            free(3, &[0, 1]),
        ];
        // Needs 6 -> three FPGAs. A contiguous arc (e.g. {3, 0, 1} around
        // primary 0) costs 2 hops; any set with an opposite-side member
        // costs 3.
        let out = allocate_blocks(&lists, 6).unwrap();
        assert_eq!(out.fpgas_used, 3);
        assert_eq!(out.hop_cost, 2);
    }
}
