//! The communication-aware multi-round allocation policy (paper §3.4).
//!
//! Round 1 searches for a *single* FPGA with enough free blocks; each
//! following round admits one more FPGA. Within a round the policy is
//! best-fit (fewest leftover blocks) to limit fragmentation, and when
//! spanning is unavoidable it keeps the majority of blocks on the primary
//! FPGA so inter-FPGA traffic stays minimal.

use vital_fabric::BlockAddr;

/// The result of an allocation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationOutcome {
    /// The chosen blocks, grouped primary-FPGA-first.
    pub blocks: Vec<BlockAddr>,
    /// How many FPGAs the allocation spans (the round that succeeded).
    pub fpgas_used: usize,
}

/// Allocates `needed` blocks from per-FPGA free lists using the multi-round
/// policy. `free_lists[f]` must contain the free blocks of FPGA `f`.
///
/// Returns `None` when the cluster does not have `needed` free blocks in
/// total.
pub fn allocate_blocks(free_lists: &[Vec<BlockAddr>], needed: usize) -> Option<AllocationOutcome> {
    if needed == 0 {
        return Some(AllocationOutcome {
            blocks: Vec::new(),
            fpgas_used: 0,
        });
    }
    let total_free: usize = free_lists.iter().map(Vec::len).sum();
    if total_free < needed {
        return None;
    }

    // Round 1: one FPGA, best fit (smallest sufficient free count).
    let single = free_lists
        .iter()
        .enumerate()
        .filter(|(_, free)| free.len() >= needed)
        .min_by_key(|(_, free)| free.len());
    if let Some((f, free)) = single {
        let _ = f;
        return Some(AllocationOutcome {
            blocks: free[..needed].to_vec(),
            fpgas_used: 1,
        });
    }

    // Rounds 2..=N: admit more FPGAs, preferring those with the most free
    // blocks so the primary device holds the largest share.
    let mut order: Vec<usize> = (0..free_lists.len()).collect();
    order.sort_by_key(|&f| std::cmp::Reverse(free_lists[f].len()));
    for round in 2..=free_lists.len() {
        let chosen = &order[..round];
        let available: usize = chosen.iter().map(|&f| free_lists[f].len()).sum();
        if available < needed {
            continue;
        }
        let mut blocks = Vec::with_capacity(needed);
        for &f in chosen {
            let take = free_lists[f].len().min(needed - blocks.len());
            blocks.extend_from_slice(&free_lists[f][..take]);
            if blocks.len() == needed {
                break;
            }
        }
        let mut fpgas: Vec<_> = blocks.iter().map(|b| b.fpga).collect();
        fpgas.sort_unstable();
        fpgas.dedup();
        return Some(AllocationOutcome {
            fpgas_used: fpgas.len(),
            blocks,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_fabric::{FpgaId, PhysicalBlockId};

    fn free(f: u32, blocks: &[u32]) -> Vec<BlockAddr> {
        blocks
            .iter()
            .map(|&b| BlockAddr::new(FpgaId::new(f), PhysicalBlockId::new(b)))
            .collect()
    }

    #[test]
    fn round_one_prefers_single_fpga_best_fit() {
        let lists = vec![free(0, &[0, 1, 2, 3, 4]), free(1, &[0, 1, 2])];
        // Needs 3: FPGA 1 is the tighter fit.
        let out = allocate_blocks(&lists, 3).unwrap();
        assert_eq!(out.fpgas_used, 1);
        assert!(out.blocks.iter().all(|b| b.fpga == FpgaId::new(1)));
    }

    #[test]
    fn spans_only_when_no_single_fpga_fits() {
        let lists = vec![free(0, &[0, 1, 2, 3]), free(1, &[0, 1, 2])];
        let out = allocate_blocks(&lists, 6).unwrap();
        assert_eq!(out.fpgas_used, 2);
        // Majority on the larger (primary) FPGA.
        let on_zero = out
            .blocks
            .iter()
            .filter(|b| b.fpga == FpgaId::new(0))
            .count();
        assert_eq!(on_zero, 4);
    }

    #[test]
    fn uses_minimum_number_of_fpgas() {
        let lists = vec![
            free(0, &[0, 1]),
            free(1, &[0, 1, 2]),
            free(2, &[0]),
            free(3, &[0, 1]),
        ];
        // Needs 5: two largest FPGAs (1 and 0/3) suffice -> 2 FPGAs.
        let out = allocate_blocks(&lists, 5).unwrap();
        assert_eq!(out.fpgas_used, 2);
    }

    #[test]
    fn fails_when_cluster_is_too_full() {
        let lists = vec![free(0, &[0]), free(1, &[])];
        assert!(allocate_blocks(&lists, 2).is_none());
    }

    #[test]
    fn zero_need_is_trivially_satisfied() {
        let out = allocate_blocks(&[], 0).unwrap();
        assert!(out.blocks.is_empty());
        assert_eq!(out.fpgas_used, 0);
    }
}
