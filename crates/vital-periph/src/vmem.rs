//! Virtual memory over the board DRAM (paper §3.2: "User applications use
//! virtual address to access the data stored in the off-chip DRAM, which is
//! then translated into the physical address. The memory access from
//! applications are monitored to ensure a secure execution environment.").

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::PeriphError;

/// Identifier of one tenant (a deployed application instance).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(u64);

impl TenantId {
    /// Creates a tenant id.
    pub const fn new(raw: u64) -> Self {
        TenantId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// One tenant's address space: quota, page table, and backing data.
#[derive(Debug, Default)]
struct AddressSpace {
    quota_bytes: u64,
    /// Virtual page number -> physical page number.
    page_table: HashMap<u64, u64>,
    /// Physical page number -> page contents (allocated lazily on write).
    pages: HashMap<u64, Vec<u8>>,
    reads: u64,
    writes: u64,
    faults: u64,
}

/// Usage statistics of one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Quota in bytes.
    pub quota_bytes: u64,
    /// Pages currently mapped.
    pub mapped_pages: u64,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Protection faults blocked by the monitor.
    pub faults: u64,
}

/// 64-bit FNV-1a, written out so the digest is stable across Rust releases
/// and platforms (the same idiom as the compiler's netlist digest).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_byte(h: &mut u64, b: u8) {
    *h ^= u64::from(b);
    *h = h.wrapping_mul(FNV_PRIME);
}

fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        fnv_byte(h, b);
    }
}

/// One exported page of a tenant's address space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageImage {
    /// Virtual page number.
    pub vpn: u64,
    /// The page's bytes (exactly one page worth).
    pub bytes: Vec<u8>,
}

/// A serializable image of one tenant's address space, produced by
/// [`MemoryManager::export_space`] and consumed by
/// [`MemoryManager::restore_space`] — the DRAM half of a live-migration
/// checkpoint.
///
/// Only written pages are materialized; pages that were mapped but never
/// written read as zero on both sides of a round trip, so the image is
/// content-lossless without storing zero pages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryImage {
    /// Page size of the exporting board in bytes.
    pub page_size: u64,
    /// The tenant's quota in bytes (page-aligned).
    pub quota_bytes: u64,
    /// Written pages, sorted by virtual page number.
    pub pages: Vec<PageImage>,
    /// Reads served before the export (carried so statistics survive a
    /// migration).
    pub reads: u64,
    /// Writes served before the export.
    pub writes: u64,
    /// Protection faults blocked before the export.
    pub faults: u64,
}

impl MemoryImage {
    /// Stable 64-bit FNV-1a content digest over the image's *data*:
    /// geometry, quota, and every page's number and bytes. Access counters
    /// are deliberately excluded — two images with identical memory
    /// contents digest identically even if one tenant read more often.
    pub fn content_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_u64(&mut h, self.page_size);
        fnv_u64(&mut h, self.quota_bytes);
        fnv_u64(&mut h, self.pages.len() as u64);
        for page in &self.pages {
            fnv_u64(&mut h, page.vpn);
            fnv_u64(&mut h, page.bytes.len() as u64);
            for &b in &page.bytes {
                fnv_byte(&mut h, b);
            }
        }
        h
    }

    /// Total bytes of page data carried by the image.
    pub fn payload_bytes(&self) -> u64 {
        self.pages.iter().map(|p| p.bytes.len() as u64).sum()
    }
}

struct Inner {
    free_pages: u64,
    next_phys_page: u64,
    spaces: HashMap<TenantId, AddressSpace>,
}

/// The service region's DRAM virtualization: per-tenant translation,
/// quota enforcement and access monitoring.
///
/// Thread-safe; clones of references can be shared across the runtime.
pub struct MemoryManager {
    page_size: u64,
    inner: RwLock<Inner>,
}

impl fmt::Debug for MemoryManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("MemoryManager")
            .field("page_size", &self.page_size)
            .field("free_pages", &inner.free_pages)
            .field("tenants", &inner.spaces.len())
            .finish()
    }
}

impl MemoryManager {
    /// Creates a manager over `total_bytes` of board DRAM with the given
    /// page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero or does not divide `total_bytes`.
    pub fn new(total_bytes: u64, page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        assert_eq!(
            total_bytes % page_size,
            0,
            "total bytes must be a whole number of pages"
        );
        MemoryManager {
            page_size,
            inner: RwLock::new(Inner {
                free_pages: total_bytes / page_size,
                next_phys_page: 0,
                spaces: HashMap::new(),
            }),
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Unreserved DRAM in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.inner.read().free_pages * self.page_size
    }

    /// Creates an address space with a `quota_bytes` reservation.
    ///
    /// # Errors
    ///
    /// * [`PeriphError::SpaceExists`] if the tenant already has a space.
    /// * [`PeriphError::OutOfMemory`] if the quota exceeds free DRAM.
    pub fn create_space(&self, tenant: TenantId, quota_bytes: u64) -> Result<(), PeriphError> {
        let mut inner = self.inner.write();
        if inner.spaces.contains_key(&tenant) {
            return Err(PeriphError::SpaceExists(tenant));
        }
        let pages = quota_bytes.div_ceil(self.page_size);
        if pages > inner.free_pages {
            return Err(PeriphError::OutOfMemory {
                requested: quota_bytes,
                available: inner.free_pages * self.page_size,
            });
        }
        inner.free_pages -= pages;
        inner.spaces.insert(
            tenant,
            AddressSpace {
                quota_bytes: pages * self.page_size,
                ..AddressSpace::default()
            },
        );
        Ok(())
    }

    /// Tears down a tenant's space, scrubbing its pages and returning the
    /// reservation to the free pool. Scrubbing prevents data leakage to the
    /// next tenant of the same physical pages.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownTenant`] if no space exists.
    pub fn destroy_space(&self, tenant: TenantId) -> Result<(), PeriphError> {
        let mut inner = self.inner.write();
        let space = inner
            .spaces
            .remove(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        inner.free_pages += space.quota_bytes / self.page_size;
        // Pages drop here — the model's scrub.
        Ok(())
    }

    /// Translates a virtual address to a physical address, allocating the
    /// page on first touch.
    ///
    /// # Errors
    ///
    /// * [`PeriphError::UnknownTenant`] for undeployed tenants.
    /// * [`PeriphError::ProtectionFault`] if `vaddr` exceeds the quota —
    ///   the monitored access is blocked.
    pub fn translate(&self, tenant: TenantId, vaddr: u64) -> Result<u64, PeriphError> {
        let mut inner = self.inner.write();
        let next = inner.next_phys_page;
        let page_size = self.page_size;
        let space = inner
            .spaces
            .get_mut(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        if vaddr >= space.quota_bytes {
            space.faults += 1;
            return Err(PeriphError::ProtectionFault { tenant, vaddr });
        }
        let vpn = vaddr / page_size;
        let (ppn, allocated) = match space.page_table.get(&vpn) {
            Some(&p) => (p, false),
            None => {
                space.page_table.insert(vpn, next);
                (next, true)
            }
        };
        if allocated {
            inner.next_phys_page += 1;
        }
        Ok(ppn * page_size + vaddr % page_size)
    }

    /// Writes `data` at the tenant's virtual address.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemoryManager::translate`], checked for the
    /// whole range.
    pub fn write(&self, tenant: TenantId, vaddr: u64, data: &[u8]) -> Result<(), PeriphError> {
        // Validate the whole range first so partial writes never happen.
        if !data.is_empty() {
            self.check_range(tenant, vaddr, data.len() as u64)?;
        }
        let mut inner = self.inner.write();
        let page_size = self.page_size;
        let mut next = inner.next_phys_page;
        let space = inner
            .spaces
            .get_mut(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        for (i, &byte) in data.iter().enumerate() {
            let va = vaddr + i as u64;
            let vpn = va / page_size;
            let ppn = *space.page_table.entry(vpn).or_insert_with(|| {
                let p = next;
                next += 1;
                p
            });
            let page = space
                .pages
                .entry(ppn)
                .or_insert_with(|| vec![0; page_size as usize]);
            page[(va % page_size) as usize] = byte;
        }
        space.writes += 1;
        inner.next_phys_page = next;
        Ok(())
    }

    /// Reads into `buf` from the tenant's virtual address; untouched pages
    /// read as zero.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemoryManager::translate`], checked for the
    /// whole range.
    pub fn read(&self, tenant: TenantId, vaddr: u64, buf: &mut [u8]) -> Result<(), PeriphError> {
        if !buf.is_empty() {
            self.check_range(tenant, vaddr, buf.len() as u64)?;
        }
        let mut inner = self.inner.write();
        let page_size = self.page_size;
        let space = inner
            .spaces
            .get_mut(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        for (i, slot) in buf.iter_mut().enumerate() {
            let va = vaddr + i as u64;
            let vpn = va / page_size;
            *slot = match space.page_table.get(&vpn) {
                Some(ppn) => space
                    .pages
                    .get(ppn)
                    .map(|p| p[(va % page_size) as usize])
                    .unwrap_or(0),
                None => 0,
            };
        }
        space.reads += 1;
        Ok(())
    }

    fn check_range(&self, tenant: TenantId, vaddr: u64, len: u64) -> Result<(), PeriphError> {
        let mut inner = self.inner.write();
        let space = inner
            .spaces
            .get_mut(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        let end = vaddr.checked_add(len);
        match end {
            Some(end) if end <= space.quota_bytes => Ok(()),
            _ => {
                space.faults += 1;
                Err(PeriphError::ProtectionFault { tenant, vaddr })
            }
        }
    }

    /// Usage statistics of one tenant's space.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownTenant`] if no space exists.
    pub fn stats(&self, tenant: TenantId) -> Result<MemoryStats, PeriphError> {
        let inner = self.inner.read();
        let space = inner
            .spaces
            .get(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        Ok(MemoryStats {
            quota_bytes: space.quota_bytes,
            mapped_pages: space.page_table.len() as u64,
            reads: space.reads,
            writes: space.writes,
            faults: space.faults,
        })
    }

    /// Number of live address spaces.
    pub fn tenant_count(&self) -> usize {
        self.inner.read().spaces.len()
    }

    /// Exports a tenant's address space as a serializable [`MemoryImage`]
    /// — the DRAM half of a checkpoint capsule. Read-only: the tenant's
    /// counters and pages are untouched, so export followed by
    /// [`MemoryManager::destroy_space`] loses nothing the image does not
    /// hold.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownTenant`] if no space exists.
    pub fn export_space(&self, tenant: TenantId) -> Result<MemoryImage, PeriphError> {
        let inner = self.inner.read();
        let space = inner
            .spaces
            .get(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        let mut pages: Vec<PageImage> = space
            .page_table
            .iter()
            .filter_map(|(&vpn, ppn)| {
                space.pages.get(ppn).map(|bytes| PageImage {
                    vpn,
                    bytes: bytes.clone(),
                })
            })
            .collect();
        pages.sort_by_key(|p| p.vpn);
        Ok(MemoryImage {
            page_size: self.page_size,
            quota_bytes: space.quota_bytes,
            pages,
            reads: space.reads,
            writes: space.writes,
            faults: space.faults,
        })
    }

    /// Rebuilds a tenant's address space from an exported image, restoring
    /// quota, page contents, and access counters. Pages land on fresh
    /// physical frames (the physical mapping is *not* part of the
    /// abstraction), but every virtual address reads back the bytes it held
    /// at export time.
    ///
    /// # Errors
    ///
    /// * [`PeriphError::ImageMismatch`] if the image's page size differs
    ///   from this board's.
    /// * [`PeriphError::SpaceExists`] if the tenant already has a space.
    /// * [`PeriphError::OutOfMemory`] if the quota exceeds free DRAM.
    /// * [`PeriphError::ProtectionFault`] if a page lies beyond the image's
    ///   own quota (a corrupt capsule).
    pub fn restore_space(&self, tenant: TenantId, image: &MemoryImage) -> Result<(), PeriphError> {
        if image.page_size != self.page_size {
            return Err(PeriphError::ImageMismatch {
                image_page_size: image.page_size,
                page_size: self.page_size,
            });
        }
        let mut inner = self.inner.write();
        if inner.spaces.contains_key(&tenant) {
            return Err(PeriphError::SpaceExists(tenant));
        }
        let quota_pages = image.quota_bytes.div_ceil(self.page_size);
        if quota_pages > inner.free_pages {
            return Err(PeriphError::OutOfMemory {
                requested: image.quota_bytes,
                available: inner.free_pages * self.page_size,
            });
        }
        for page in &image.pages {
            if page.vpn >= quota_pages {
                return Err(PeriphError::ProtectionFault {
                    tenant,
                    vaddr: page.vpn * self.page_size,
                });
            }
        }
        inner.free_pages -= quota_pages;
        let mut space = AddressSpace {
            quota_bytes: quota_pages * self.page_size,
            reads: image.reads,
            writes: image.writes,
            faults: image.faults,
            ..AddressSpace::default()
        };
        for page in &image.pages {
            let ppn = inner.next_phys_page;
            inner.next_phys_page += 1;
            space.page_table.insert(page.vpn, ppn);
            let mut bytes = page.bytes.clone();
            bytes.resize(self.page_size as usize, 0);
            space.pages.insert(ppn, bytes);
        }
        inner.spaces.insert(tenant, space);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MemoryManager {
        MemoryManager::new(1 << 20, 4096) // 1 MiB, 256 pages
    }

    #[test]
    fn write_read_roundtrip() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 64 * 1024).unwrap();
        m.write(t, 1000, b"vital").unwrap();
        let mut buf = [0u8; 5];
        m.read(t, 1000, &mut buf).unwrap();
        assert_eq!(&buf, b"vital");
    }

    #[test]
    fn cross_page_write() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 64 * 1024).unwrap();
        let data: Vec<u8> = (0..100).collect();
        m.write(t, 4096 - 50, &data).unwrap();
        let mut buf = vec![0u8; 100];
        m.read(t, 4096 - 50, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn tenants_are_isolated() {
        let m = mm();
        let a = TenantId::new(1);
        let b = TenantId::new(2);
        m.create_space(a, 64 * 1024).unwrap();
        m.create_space(b, 64 * 1024).unwrap();
        m.write(a, 0, b"secret").unwrap();
        let mut buf = [0u8; 6];
        // Tenant B reads the same *virtual* address and sees its own
        // (zeroed) memory, never tenant A's data.
        m.read(b, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 6]);
        // Physical addresses differ.
        let pa = m.translate(a, 0).unwrap();
        let pb = m.translate(b, 0).unwrap();
        assert_ne!(pa / 4096, pb / 4096);
    }

    #[test]
    fn quota_enforced_as_protection_fault() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 8192).unwrap();
        assert!(matches!(
            m.write(t, 8192, b"x"),
            Err(PeriphError::ProtectionFault { .. })
        ));
        // Straddling the quota boundary also faults, with no partial write.
        assert!(m.write(t, 8190, b"abcd").is_err());
        let mut buf = [0u8; 2];
        m.read(t, 8190, &mut buf).unwrap();
        assert_eq!(buf, [0, 0], "no partial write leaked");
        assert_eq!(m.stats(t).unwrap().faults, 2);
    }

    #[test]
    fn address_overflow_faults() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 8192).unwrap();
        assert!(m.write(t, u64::MAX - 1, b"abc").is_err());
    }

    #[test]
    fn capacity_accounting() {
        let m = mm();
        let t1 = TenantId::new(1);
        m.create_space(t1, 512 * 1024).unwrap();
        assert_eq!(m.free_bytes(), 512 * 1024);
        let t2 = TenantId::new(2);
        assert!(matches!(
            m.create_space(t2, 768 * 1024),
            Err(PeriphError::OutOfMemory { .. })
        ));
        m.destroy_space(t1).unwrap();
        assert_eq!(m.free_bytes(), 1 << 20);
        m.create_space(t2, 768 * 1024).unwrap();
    }

    #[test]
    fn double_create_rejected() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 4096).unwrap();
        assert_eq!(m.create_space(t, 4096), Err(PeriphError::SpaceExists(t)));
    }

    #[test]
    fn destroy_scrubs_for_next_tenant() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 4096).unwrap();
        m.write(t, 0, b"leak?").unwrap();
        m.destroy_space(t).unwrap();
        let t2 = TenantId::new(2);
        m.create_space(t2, 4096).unwrap();
        let mut buf = [0u8; 5];
        m.read(t2, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 5]);
    }

    #[test]
    fn unknown_tenant_errors() {
        let m = mm();
        let ghost = TenantId::new(9);
        assert_eq!(
            m.translate(ghost, 0),
            Err(PeriphError::UnknownTenant(ghost))
        );
        assert_eq!(
            m.destroy_space(ghost),
            Err(PeriphError::UnknownTenant(ghost))
        );
        assert!(m.stats(ghost).is_err());
    }

    #[test]
    fn export_restore_roundtrip_is_content_lossless() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 16 * 1024).unwrap();
        m.write(t, 100, b"checkpoint me").unwrap();
        m.write(t, 4096 - 3, b"straddle").unwrap();
        let image = m.export_space(t).unwrap();
        assert_eq!(image.quota_bytes, 16 * 1024);
        assert!(image.pages.windows(2).all(|w| w[0].vpn < w[1].vpn));

        // Migrate to a second board: contents and digest must survive.
        let other = mm();
        other.restore_space(t, &image).unwrap();
        let mut buf = [0u8; 13];
        other.read(t, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"checkpoint me");
        let mut buf = [0u8; 8];
        other.read(t, 4096 - 3, &mut buf).unwrap();
        assert_eq!(&buf, b"straddle");
        let again = other.export_space(t).unwrap();
        assert_eq!(again.content_digest(), image.content_digest());
        assert_eq!(again.pages, image.pages);
        // The extra read above is visible in the stats but not the digest.
        assert_eq!(again.reads, image.reads + 2);
    }

    #[test]
    fn restore_rejects_mismatched_geometry_and_corrupt_images() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 8192).unwrap();
        m.write(t, 0, b"x").unwrap();
        let image = m.export_space(t).unwrap();

        let coarse = MemoryManager::new(1 << 20, 8192);
        assert!(matches!(
            coarse.restore_space(t, &image),
            Err(PeriphError::ImageMismatch { .. })
        ));

        let mut corrupt = image.clone();
        corrupt.pages[0].vpn = 1000; // beyond the 2-page quota
        let fresh = mm();
        assert!(matches!(
            fresh.restore_space(TenantId::new(2), &corrupt),
            Err(PeriphError::ProtectionFault { .. })
        ));

        // Restoring over a live space is refused.
        assert_eq!(m.restore_space(t, &image), Err(PeriphError::SpaceExists(t)));
    }

    #[test]
    fn concurrent_tenants_do_not_interfere() {
        use std::sync::Arc;
        let m = Arc::new(mm());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let t = TenantId::new(i);
                    m.create_space(t, 64 * 1024).unwrap();
                    let pattern = vec![i as u8 + 1; 128];
                    for k in 0..32 {
                        m.write(t, k * 128, &pattern).unwrap();
                    }
                    let mut buf = vec![0u8; 128];
                    for k in 0..32 {
                        m.read(t, k * 128, &mut buf).unwrap();
                        assert_eq!(buf, pattern);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.tenant_count(), 4);
    }
}
