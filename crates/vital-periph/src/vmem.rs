//! Virtual memory over the board DRAM (paper §3.2: "User applications use
//! virtual address to access the data stored in the off-chip DRAM, which is
//! then translated into the physical address. The memory access from
//! applications are monitored to ensure a secure execution environment.").

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::PeriphError;

/// Identifier of one tenant (a deployed application instance).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(u64);

impl TenantId {
    /// Creates a tenant id.
    pub const fn new(raw: u64) -> Self {
        TenantId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// One tenant's address space: quota, page table, and backing data.
#[derive(Debug, Default)]
struct AddressSpace {
    quota_bytes: u64,
    /// Virtual page number -> physical page number.
    page_table: HashMap<u64, u64>,
    /// Physical page number -> page contents (allocated lazily on write).
    pages: HashMap<u64, Vec<u8>>,
    reads: u64,
    writes: u64,
    faults: u64,
}

/// Usage statistics of one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Quota in bytes.
    pub quota_bytes: u64,
    /// Pages currently mapped.
    pub mapped_pages: u64,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Protection faults blocked by the monitor.
    pub faults: u64,
}

struct Inner {
    free_pages: u64,
    next_phys_page: u64,
    spaces: HashMap<TenantId, AddressSpace>,
}

/// The service region's DRAM virtualization: per-tenant translation,
/// quota enforcement and access monitoring.
///
/// Thread-safe; clones of references can be shared across the runtime.
pub struct MemoryManager {
    page_size: u64,
    inner: RwLock<Inner>,
}

impl fmt::Debug for MemoryManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("MemoryManager")
            .field("page_size", &self.page_size)
            .field("free_pages", &inner.free_pages)
            .field("tenants", &inner.spaces.len())
            .finish()
    }
}

impl MemoryManager {
    /// Creates a manager over `total_bytes` of board DRAM with the given
    /// page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero or does not divide `total_bytes`.
    pub fn new(total_bytes: u64, page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        assert_eq!(
            total_bytes % page_size,
            0,
            "total bytes must be a whole number of pages"
        );
        MemoryManager {
            page_size,
            inner: RwLock::new(Inner {
                free_pages: total_bytes / page_size,
                next_phys_page: 0,
                spaces: HashMap::new(),
            }),
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Unreserved DRAM in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.inner.read().free_pages * self.page_size
    }

    /// Creates an address space with a `quota_bytes` reservation.
    ///
    /// # Errors
    ///
    /// * [`PeriphError::SpaceExists`] if the tenant already has a space.
    /// * [`PeriphError::OutOfMemory`] if the quota exceeds free DRAM.
    pub fn create_space(&self, tenant: TenantId, quota_bytes: u64) -> Result<(), PeriphError> {
        let mut inner = self.inner.write();
        if inner.spaces.contains_key(&tenant) {
            return Err(PeriphError::SpaceExists(tenant));
        }
        let pages = quota_bytes.div_ceil(self.page_size);
        if pages > inner.free_pages {
            return Err(PeriphError::OutOfMemory {
                requested: quota_bytes,
                available: inner.free_pages * self.page_size,
            });
        }
        inner.free_pages -= pages;
        inner.spaces.insert(
            tenant,
            AddressSpace {
                quota_bytes: pages * self.page_size,
                ..AddressSpace::default()
            },
        );
        Ok(())
    }

    /// Tears down a tenant's space, scrubbing its pages and returning the
    /// reservation to the free pool. Scrubbing prevents data leakage to the
    /// next tenant of the same physical pages.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownTenant`] if no space exists.
    pub fn destroy_space(&self, tenant: TenantId) -> Result<(), PeriphError> {
        let mut inner = self.inner.write();
        let space = inner
            .spaces
            .remove(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        inner.free_pages += space.quota_bytes / self.page_size;
        // Pages drop here — the model's scrub.
        Ok(())
    }

    /// Translates a virtual address to a physical address, allocating the
    /// page on first touch.
    ///
    /// # Errors
    ///
    /// * [`PeriphError::UnknownTenant`] for undeployed tenants.
    /// * [`PeriphError::ProtectionFault`] if `vaddr` exceeds the quota —
    ///   the monitored access is blocked.
    pub fn translate(&self, tenant: TenantId, vaddr: u64) -> Result<u64, PeriphError> {
        let mut inner = self.inner.write();
        let next = inner.next_phys_page;
        let page_size = self.page_size;
        let space = inner
            .spaces
            .get_mut(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        if vaddr >= space.quota_bytes {
            space.faults += 1;
            return Err(PeriphError::ProtectionFault { tenant, vaddr });
        }
        let vpn = vaddr / page_size;
        let (ppn, allocated) = match space.page_table.get(&vpn) {
            Some(&p) => (p, false),
            None => {
                space.page_table.insert(vpn, next);
                (next, true)
            }
        };
        if allocated {
            inner.next_phys_page += 1;
        }
        Ok(ppn * page_size + vaddr % page_size)
    }

    /// Writes `data` at the tenant's virtual address.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemoryManager::translate`], checked for the
    /// whole range.
    pub fn write(&self, tenant: TenantId, vaddr: u64, data: &[u8]) -> Result<(), PeriphError> {
        // Validate the whole range first so partial writes never happen.
        if !data.is_empty() {
            self.check_range(tenant, vaddr, data.len() as u64)?;
        }
        let mut inner = self.inner.write();
        let page_size = self.page_size;
        let mut next = inner.next_phys_page;
        let space = inner
            .spaces
            .get_mut(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        for (i, &byte) in data.iter().enumerate() {
            let va = vaddr + i as u64;
            let vpn = va / page_size;
            let ppn = *space.page_table.entry(vpn).or_insert_with(|| {
                let p = next;
                next += 1;
                p
            });
            let page = space
                .pages
                .entry(ppn)
                .or_insert_with(|| vec![0; page_size as usize]);
            page[(va % page_size) as usize] = byte;
        }
        space.writes += 1;
        inner.next_phys_page = next;
        Ok(())
    }

    /// Reads into `buf` from the tenant's virtual address; untouched pages
    /// read as zero.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemoryManager::translate`], checked for the
    /// whole range.
    pub fn read(&self, tenant: TenantId, vaddr: u64, buf: &mut [u8]) -> Result<(), PeriphError> {
        if !buf.is_empty() {
            self.check_range(tenant, vaddr, buf.len() as u64)?;
        }
        let mut inner = self.inner.write();
        let page_size = self.page_size;
        let space = inner
            .spaces
            .get_mut(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        for (i, slot) in buf.iter_mut().enumerate() {
            let va = vaddr + i as u64;
            let vpn = va / page_size;
            *slot = match space.page_table.get(&vpn) {
                Some(ppn) => space
                    .pages
                    .get(ppn)
                    .map(|p| p[(va % page_size) as usize])
                    .unwrap_or(0),
                None => 0,
            };
        }
        space.reads += 1;
        Ok(())
    }

    fn check_range(&self, tenant: TenantId, vaddr: u64, len: u64) -> Result<(), PeriphError> {
        let mut inner = self.inner.write();
        let space = inner
            .spaces
            .get_mut(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        let end = vaddr.checked_add(len);
        match end {
            Some(end) if end <= space.quota_bytes => Ok(()),
            _ => {
                space.faults += 1;
                Err(PeriphError::ProtectionFault { tenant, vaddr })
            }
        }
    }

    /// Usage statistics of one tenant's space.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownTenant`] if no space exists.
    pub fn stats(&self, tenant: TenantId) -> Result<MemoryStats, PeriphError> {
        let inner = self.inner.read();
        let space = inner
            .spaces
            .get(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        Ok(MemoryStats {
            quota_bytes: space.quota_bytes,
            mapped_pages: space.page_table.len() as u64,
            reads: space.reads,
            writes: space.writes,
            faults: space.faults,
        })
    }

    /// Number of live address spaces.
    pub fn tenant_count(&self) -> usize {
        self.inner.read().spaces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MemoryManager {
        MemoryManager::new(1 << 20, 4096) // 1 MiB, 256 pages
    }

    #[test]
    fn write_read_roundtrip() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 64 * 1024).unwrap();
        m.write(t, 1000, b"vital").unwrap();
        let mut buf = [0u8; 5];
        m.read(t, 1000, &mut buf).unwrap();
        assert_eq!(&buf, b"vital");
    }

    #[test]
    fn cross_page_write() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 64 * 1024).unwrap();
        let data: Vec<u8> = (0..100).collect();
        m.write(t, 4096 - 50, &data).unwrap();
        let mut buf = vec![0u8; 100];
        m.read(t, 4096 - 50, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn tenants_are_isolated() {
        let m = mm();
        let a = TenantId::new(1);
        let b = TenantId::new(2);
        m.create_space(a, 64 * 1024).unwrap();
        m.create_space(b, 64 * 1024).unwrap();
        m.write(a, 0, b"secret").unwrap();
        let mut buf = [0u8; 6];
        // Tenant B reads the same *virtual* address and sees its own
        // (zeroed) memory, never tenant A's data.
        m.read(b, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 6]);
        // Physical addresses differ.
        let pa = m.translate(a, 0).unwrap();
        let pb = m.translate(b, 0).unwrap();
        assert_ne!(pa / 4096, pb / 4096);
    }

    #[test]
    fn quota_enforced_as_protection_fault() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 8192).unwrap();
        assert!(matches!(
            m.write(t, 8192, b"x"),
            Err(PeriphError::ProtectionFault { .. })
        ));
        // Straddling the quota boundary also faults, with no partial write.
        assert!(m.write(t, 8190, b"abcd").is_err());
        let mut buf = [0u8; 2];
        m.read(t, 8190, &mut buf).unwrap();
        assert_eq!(buf, [0, 0], "no partial write leaked");
        assert_eq!(m.stats(t).unwrap().faults, 2);
    }

    #[test]
    fn address_overflow_faults() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 8192).unwrap();
        assert!(m.write(t, u64::MAX - 1, b"abc").is_err());
    }

    #[test]
    fn capacity_accounting() {
        let m = mm();
        let t1 = TenantId::new(1);
        m.create_space(t1, 512 * 1024).unwrap();
        assert_eq!(m.free_bytes(), 512 * 1024);
        let t2 = TenantId::new(2);
        assert!(matches!(
            m.create_space(t2, 768 * 1024),
            Err(PeriphError::OutOfMemory { .. })
        ));
        m.destroy_space(t1).unwrap();
        assert_eq!(m.free_bytes(), 1 << 20);
        m.create_space(t2, 768 * 1024).unwrap();
    }

    #[test]
    fn double_create_rejected() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 4096).unwrap();
        assert_eq!(m.create_space(t, 4096), Err(PeriphError::SpaceExists(t)));
    }

    #[test]
    fn destroy_scrubs_for_next_tenant() {
        let m = mm();
        let t = TenantId::new(1);
        m.create_space(t, 4096).unwrap();
        m.write(t, 0, b"leak?").unwrap();
        m.destroy_space(t).unwrap();
        let t2 = TenantId::new(2);
        m.create_space(t2, 4096).unwrap();
        let mut buf = [0u8; 5];
        m.read(t2, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 5]);
    }

    #[test]
    fn unknown_tenant_errors() {
        let m = mm();
        let ghost = TenantId::new(9);
        assert_eq!(
            m.translate(ghost, 0),
            Err(PeriphError::UnknownTenant(ghost))
        );
        assert_eq!(
            m.destroy_space(ghost),
            Err(PeriphError::UnknownTenant(ghost))
        );
        assert!(m.stats(ghost).is_err());
    }

    #[test]
    fn concurrent_tenants_do_not_interfere() {
        use std::sync::Arc;
        let m = Arc::new(mm());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let t = TenantId::new(i);
                    m.create_space(t, 64 * 1024).unwrap();
                    let pattern = vec![i as u8 + 1; 128];
                    for k in 0..32 {
                        m.write(t, k * 128, &pattern).unwrap();
                    }
                    let mut buf = vec![0u8; 128];
                    for k in 0..32 {
                        m.read(t, k * 128, &mut buf).unwrap();
                        assert_eq!(buf, pattern);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.tenant_count(), 4);
    }
}
