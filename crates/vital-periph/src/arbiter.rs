//! Proportional-share arbitration of the shared DRAM bandwidth.
//!
//! The service region's DRAM interface is shared by every physical block of
//! an FPGA (paper Fig. 7, region 4). The arbiter divides the channel
//! bandwidth among tenants: each tenant receives its demand when the channel
//! is under-subscribed, and a proportional share of the capacity when it is
//! over-subscribed.

use std::collections::BTreeMap;
use std::fmt;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{PeriphError, TenantId};

/// One tenant's granted share of the DRAM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShareGrant {
    /// What the tenant asked for, in Gb/s.
    pub requested_gbps: f64,
    /// What it currently receives, in Gb/s.
    pub granted_gbps: f64,
}

/// The DRAM bandwidth arbiter of one FPGA's service region.
pub struct BandwidthArbiter {
    capacity_gbps: f64,
    demands: Mutex<BTreeMap<TenantId, f64>>,
}

impl fmt::Debug for BandwidthArbiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BandwidthArbiter")
            .field("capacity_gbps", &self.capacity_gbps)
            .field("tenants", &self.demands.lock().len())
            .finish()
    }
}

impl BandwidthArbiter {
    /// Creates an arbiter over `capacity_gbps` of channel bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive and finite.
    pub fn new(capacity_gbps: f64) -> Self {
        assert!(
            capacity_gbps > 0.0 && capacity_gbps.is_finite(),
            "capacity must be positive, got {capacity_gbps}"
        );
        BandwidthArbiter {
            capacity_gbps,
            demands: Mutex::new(BTreeMap::new()),
        }
    }

    /// Total channel capacity in Gb/s.
    pub fn capacity_gbps(&self) -> f64 {
        self.capacity_gbps
    }

    /// Registers (or updates) a tenant's bandwidth demand and returns its
    /// current grant.
    pub fn request(&self, tenant: TenantId, gbps: f64) -> ShareGrant {
        let mut demands = self.demands.lock();
        demands.insert(tenant, gbps.max(0.0));
        let granted = Self::grant_of(&demands, self.capacity_gbps, tenant);
        ShareGrant {
            requested_gbps: gbps,
            granted_gbps: granted,
        }
    }

    /// Removes a tenant, returning bandwidth to the others.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownTenant`] if the tenant never requested.
    pub fn release(&self, tenant: TenantId) -> Result<(), PeriphError> {
        let mut demands = self.demands.lock();
        demands
            .remove(&tenant)
            .map(|_| ())
            .ok_or(PeriphError::UnknownTenant(tenant))
    }

    /// The current grant of one tenant.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownTenant`] if the tenant never requested.
    pub fn grant(&self, tenant: TenantId) -> Result<ShareGrant, PeriphError> {
        let demands = self.demands.lock();
        let requested = *demands
            .get(&tenant)
            .ok_or(PeriphError::UnknownTenant(tenant))?;
        Ok(ShareGrant {
            requested_gbps: requested,
            granted_gbps: Self::grant_of(&demands, self.capacity_gbps, tenant),
        })
    }

    /// Aggregate demand across tenants in Gb/s.
    pub fn total_demand_gbps(&self) -> f64 {
        self.demands.lock().values().sum()
    }

    /// Max–min fair share: tenants demanding less than the fair share keep
    /// their demand; the remainder is split evenly among the rest.
    fn grant_of(demands: &BTreeMap<TenantId, f64>, capacity: f64, tenant: TenantId) -> f64 {
        let mut remaining = capacity;
        let mut pending: Vec<(TenantId, f64)> = demands.iter().map(|(&t, &d)| (t, d)).collect();
        pending.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut n = pending.len();
        for (t, d) in pending {
            let fair = remaining / n as f64;
            let grant = d.min(fair);
            if t == tenant {
                return grant;
            }
            remaining -= grant;
            n -= 1;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undersubscribed_grants_full_demand() {
        let a = BandwidthArbiter::new(100.0);
        let g = a.request(TenantId::new(1), 30.0);
        assert_eq!(g.granted_gbps, 30.0);
        let g2 = a.request(TenantId::new(2), 50.0);
        assert_eq!(g2.granted_gbps, 50.0);
    }

    #[test]
    fn oversubscribed_is_max_min_fair() {
        let a = BandwidthArbiter::new(90.0);
        a.request(TenantId::new(1), 10.0); // small demand: kept
        a.request(TenantId::new(2), 100.0); // big: split the rest
        a.request(TenantId::new(3), 100.0);
        assert_eq!(a.grant(TenantId::new(1)).unwrap().granted_gbps, 10.0);
        let g2 = a.grant(TenantId::new(2)).unwrap().granted_gbps;
        let g3 = a.grant(TenantId::new(3)).unwrap().granted_gbps;
        assert!((g2 - 40.0).abs() < 1e-9);
        assert!((g3 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn release_returns_bandwidth() {
        let a = BandwidthArbiter::new(60.0);
        a.request(TenantId::new(1), 60.0);
        a.request(TenantId::new(2), 60.0);
        assert!((a.grant(TenantId::new(1)).unwrap().granted_gbps - 30.0).abs() < 1e-9);
        a.release(TenantId::new(2)).unwrap();
        assert!((a.grant(TenantId::new(1)).unwrap().granted_gbps - 60.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_tenant_errors() {
        let a = BandwidthArbiter::new(10.0);
        assert!(a.grant(TenantId::new(1)).is_err());
        assert!(a.release(TenantId::new(1)).is_err());
    }

    #[test]
    fn grants_never_exceed_capacity() {
        let a = BandwidthArbiter::new(77.0);
        for i in 0..9 {
            a.request(TenantId::new(i), (i as f64 + 1.0) * 13.0);
        }
        let total: f64 = (0..9)
            .map(|i| a.grant(TenantId::new(i)).unwrap().granted_gbps)
            .sum();
        assert!(total <= 77.0 + 1e-6, "total granted {total}");
    }

    #[test]
    fn negative_demand_clamped() {
        let a = BandwidthArbiter::new(10.0);
        let g = a.request(TenantId::new(1), -5.0);
        assert_eq!(g.granted_gbps, 0.0);
    }
}
