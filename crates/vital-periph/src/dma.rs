//! Descriptor-based DMA between the host and board DRAM.
//!
//! Real shells feed accelerators over PCIe DMA; the service region exposes
//! per-tenant queues so transfers inherit the same protection the MMU
//! enforces (a descriptor can only touch its tenant's address space, and
//! out-of-quota transfers fault instead of completing).

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{MemoryManager, PeriphError, TenantId};

/// Transfer direction, from the host's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DmaDirection {
    /// Host buffer → board DRAM.
    HostToDevice,
    /// Board DRAM → host buffer.
    DeviceToHost,
}

/// One queued transfer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaDescriptor {
    /// The owning tenant; the transfer runs in this tenant's address space.
    pub tenant: TenantId,
    /// Byte offset into the host-side buffer.
    pub host_offset: usize,
    /// Virtual address in the tenant's DRAM space.
    pub dram_vaddr: u64,
    /// Bytes to move.
    pub len: usize,
    /// Direction.
    pub direction: DmaDirection,
}

/// Completion record of one processed descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaCompletion {
    /// The descriptor that completed.
    pub descriptor: DmaDescriptor,
    /// Modelled wire time of the transfer at the engine's link rate.
    pub duration: Duration,
}

/// Fixed per-descriptor processing cost: doorbell write, engine setup and
/// completion write-back (~1 µs on real PCIe shells).
const DESCRIPTOR_OVERHEAD_S: f64 = 1.0e-6;

/// A per-FPGA DMA engine: a descriptor queue processed in order against the
/// board's [`MemoryManager`].
pub struct DmaEngine {
    link_gbps: f64,
    queue: Mutex<VecDeque<DmaDescriptor>>,
}

impl fmt::Debug for DmaEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DmaEngine")
            .field("link_gbps", &self.link_gbps)
            .field("queued", &self.queue.lock().len())
            .finish()
    }
}

impl DmaEngine {
    /// Creates an engine with the given host-link bandwidth (PCIe Gen3 x16
    /// is ~126 Gb/s of goodput).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive and finite.
    pub fn new(link_gbps: f64) -> Self {
        assert!(
            link_gbps > 0.0 && link_gbps.is_finite(),
            "link bandwidth must be positive, got {link_gbps}"
        );
        DmaEngine {
            link_gbps,
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Host-link bandwidth in Gb/s.
    pub fn link_gbps(&self) -> f64 {
        self.link_gbps
    }

    /// Enqueues a descriptor.
    pub fn submit(&self, descriptor: DmaDescriptor) {
        self.queue.lock().push_back(descriptor);
    }

    /// Descriptors waiting.
    pub fn queued(&self) -> usize {
        self.queue.lock().len()
    }

    /// Processes the next descriptor against `memory` and `host_buffer`.
    ///
    /// Returns `Ok(None)` when the queue is empty. A faulting transfer
    /// (bad host range, protection fault in DRAM) is consumed from the
    /// queue and its error returned — it never partially completes on the
    /// DRAM side because the MMU validates the whole range first.
    ///
    /// # Errors
    ///
    /// * [`PeriphError::ProtectionFault`] / [`PeriphError::UnknownTenant`]
    ///   from the memory manager.
    /// * [`PeriphError::BadDmaRange`] if the host range is out of bounds.
    pub fn process_next(
        &self,
        memory: &MemoryManager,
        host_buffer: &mut [u8],
    ) -> Result<Option<DmaCompletion>, PeriphError> {
        let Some(d) = self.queue.lock().pop_front() else {
            return Ok(None);
        };
        let end = d
            .host_offset
            .checked_add(d.len)
            .filter(|&e| e <= host_buffer.len());
        let Some(end) = end else {
            return Err(PeriphError::BadDmaRange {
                offset: d.host_offset,
                len: d.len,
                buffer: host_buffer.len(),
            });
        };
        match d.direction {
            DmaDirection::HostToDevice => {
                memory.write(d.tenant, d.dram_vaddr, &host_buffer[d.host_offset..end])?;
            }
            DmaDirection::DeviceToHost => {
                memory.read(d.tenant, d.dram_vaddr, &mut host_buffer[d.host_offset..end])?;
            }
        }
        // Wire time plus the fixed per-descriptor cost (doorbell, DMA
        // engine setup, completion write-back) — dominant for tiny
        // transfers, as on real PCIe.
        let seconds = (d.len as f64 * 8.0) / (self.link_gbps * 1.0e9) + DESCRIPTOR_OVERHEAD_S;
        Ok(Some(DmaCompletion {
            descriptor: d,
            duration: Duration::from_secs_f64(seconds),
        }))
    }

    /// Processes descriptors until the queue drains, stopping at the first
    /// fault.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DmaEngine::process_next`].
    pub fn drain(
        &self,
        memory: &MemoryManager,
        host_buffer: &mut [u8],
    ) -> Result<Vec<DmaCompletion>, PeriphError> {
        let mut out = Vec::new();
        while let Some(c) = self.process_next(memory, host_buffer)? {
            out.push(c);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DmaEngine, MemoryManager) {
        let mm = MemoryManager::new(1 << 20, 4096);
        mm.create_space(TenantId::new(1), 64 * 1024).unwrap();
        mm.create_space(TenantId::new(2), 64 * 1024).unwrap();
        (DmaEngine::new(126.0), mm)
    }

    #[test]
    fn roundtrip_host_device_host() {
        let (dma, mm) = setup();
        let mut host = vec![0u8; 256];
        host[..5].copy_from_slice(b"hello");
        dma.submit(DmaDescriptor {
            tenant: TenantId::new(1),
            host_offset: 0,
            dram_vaddr: 0x1000,
            len: 5,
            direction: DmaDirection::HostToDevice,
        });
        dma.submit(DmaDescriptor {
            tenant: TenantId::new(1),
            host_offset: 100,
            dram_vaddr: 0x1000,
            len: 5,
            direction: DmaDirection::DeviceToHost,
        });
        let completions = dma.drain(&mm, &mut host).unwrap();
        assert_eq!(completions.len(), 2);
        assert_eq!(&host[100..105], b"hello");
        assert!(completions[0].duration > Duration::ZERO);
        assert_eq!(dma.queued(), 0);
    }

    #[test]
    fn dma_respects_tenant_protection() {
        let (dma, mm) = setup();
        let mut host = vec![7u8; 64];
        // Out-of-quota DRAM address: the MMU faults, nothing is written.
        dma.submit(DmaDescriptor {
            tenant: TenantId::new(1),
            host_offset: 0,
            dram_vaddr: 10 << 20,
            len: 16,
            direction: DmaDirection::HostToDevice,
        });
        assert!(matches!(
            dma.process_next(&mm, &mut host),
            Err(PeriphError::ProtectionFault { .. })
        ));
        // Tenant 2 cannot read tenant 1's data through its own descriptors.
        mm.write(TenantId::new(1), 0, b"secret").unwrap();
        dma.submit(DmaDescriptor {
            tenant: TenantId::new(2),
            host_offset: 0,
            dram_vaddr: 0,
            len: 6,
            direction: DmaDirection::DeviceToHost,
        });
        dma.process_next(&mm, &mut host).unwrap();
        assert_eq!(&host[..6], &[0u8; 6], "tenant 2 sees its own zeroed DRAM");
    }

    #[test]
    fn bad_host_range_is_rejected() {
        let (dma, mm) = setup();
        let mut host = vec![0u8; 16];
        dma.submit(DmaDescriptor {
            tenant: TenantId::new(1),
            host_offset: 10,
            dram_vaddr: 0,
            len: 100,
            direction: DmaDirection::HostToDevice,
        });
        assert!(matches!(
            dma.process_next(&mm, &mut host),
            Err(PeriphError::BadDmaRange { .. })
        ));
        // Overflowing offsets are caught too.
        dma.submit(DmaDescriptor {
            tenant: TenantId::new(1),
            host_offset: usize::MAX,
            dram_vaddr: 0,
            len: 2,
            direction: DmaDirection::HostToDevice,
        });
        assert!(dma.process_next(&mm, &mut host).is_err());
    }

    #[test]
    fn empty_queue_returns_none() {
        let (dma, mm) = setup();
        let mut host = [0u8; 8];
        assert!(dma.process_next(&mm, &mut host).unwrap().is_none());
    }

    #[test]
    fn transfer_time_scales_with_length() {
        let (dma, mm) = setup();
        let mut host = vec![0u8; 8192];
        for len in [128usize, 8192] {
            dma.submit(DmaDescriptor {
                tenant: TenantId::new(1),
                host_offset: 0,
                dram_vaddr: 0,
                len,
                direction: DmaDirection::HostToDevice,
            });
        }
        let c = dma.drain(&mm, &mut host).unwrap();
        assert!(c[1].duration > c[0].duration);
    }
}
