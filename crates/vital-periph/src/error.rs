//! Error type of the peripheral-virtualization crate.

use std::error::Error;
use std::fmt;

use crate::TenantId;

/// Errors raised by the virtualized peripherals. Every variant corresponds
/// to a condition the service region's monitor circuits detect and report,
/// never silently allow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PeriphError {
    /// The tenant has no address space (not deployed, or already torn down).
    UnknownTenant(TenantId),
    /// An address space already exists for the tenant.
    SpaceExists(TenantId),
    /// The board does not have enough free DRAM for the requested quota.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// A virtual address fell outside the tenant's quota — the access
    /// monitor blocks it (protection fault).
    ProtectionFault {
        /// The offending tenant.
        tenant: TenantId,
        /// The offending virtual address.
        vaddr: u64,
    },
    /// A frame was addressed to a NIC that does not exist.
    UnknownNic(u64),
    /// The virtual NIC's receive queue is full.
    RxQueueFull(u64),
    /// A memory image could not be restored because its geometry does not
    /// match the target board (different page size).
    ImageMismatch {
        /// Page size recorded in the image.
        image_page_size: u64,
        /// Page size of the target manager.
        page_size: u64,
    },
    /// A DMA descriptor's host range fell outside the host buffer.
    BadDmaRange {
        /// Byte offset into the host buffer.
        offset: usize,
        /// Transfer length.
        len: usize,
        /// Host buffer size.
        buffer: usize,
    },
}

impl fmt::Display for PeriphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeriphError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            PeriphError::SpaceExists(t) => write!(f, "tenant {t} already has an address space"),
            PeriphError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of board DRAM: requested {requested} bytes, {available} available"
            ),
            PeriphError::ProtectionFault { tenant, vaddr } => {
                write!(f, "protection fault: tenant {tenant} at vaddr {vaddr:#x}")
            }
            PeriphError::UnknownNic(mac) => write!(f, "unknown virtual NIC {mac:#x}"),
            PeriphError::RxQueueFull(mac) => write!(f, "rx queue full on virtual NIC {mac:#x}"),
            PeriphError::ImageMismatch {
                image_page_size,
                page_size,
            } => write!(
                f,
                "memory image page size {image_page_size} does not match board page size {page_size}"
            ),
            PeriphError::BadDmaRange {
                offset,
                len,
                buffer,
            } => write!(
                f,
                "DMA host range {offset}+{len} exceeds the {buffer}-byte buffer"
            ),
        }
    }
}

impl Error for PeriphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PeriphError>();
        assert!(!PeriphError::UnknownNic(1).to_string().is_empty());
    }
}
