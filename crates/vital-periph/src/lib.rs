//! Peripheral virtualization — the service region's function (paper §3.2).
//!
//! ViTAL's abstraction virtualizes not only the FPGA fabric but also the
//! peripheral devices attached to each board:
//!
//! * **On-board DRAM** ([`MemoryManager`]): every tenant gets a private
//!   virtual address space; accesses are translated through per-tenant page
//!   tables and *monitored*, so an application can never read or corrupt
//!   another tenant's data — the secure-execution requirement of the
//!   multi-user cloud.
//! * **DRAM bandwidth** ([`BandwidthArbiter`]): the shared memory channels
//!   are divided among co-resident tenants with proportional shares.
//! * **Ethernet** ([`VirtualSwitch`]): per-tenant virtual NICs behind one
//!   physical port, with frames delivered only to their addressee.
//! * **Host DMA** ([`DmaEngine`]): descriptor-based transfers between the
//!   host and board DRAM that inherit the MMU's per-tenant protection.
//!
//! All types are thread-safe (`parking_lot` locks) because the service
//! region is shared by every block of an FPGA and the runtime touches it
//! from multiple contexts.
//!
//! # Example
//!
//! ```
//! use vital_periph::{MemoryManager, TenantId};
//!
//! let mm = MemoryManager::new(1 << 30, 4096); // 1 GiB board DRAM
//! let alice = TenantId::new(1);
//! mm.create_space(alice, 1 << 20)?;           // 1 MiB quota
//! mm.write(alice, 0x100, b"hello")?;
//! let mut buf = [0u8; 5];
//! mm.read(alice, 0x100, &mut buf)?;
//! assert_eq!(&buf, b"hello");
//! # Ok::<(), vital_periph::PeriphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod dma;
mod error;
mod ethernet;
mod vmem;

pub use arbiter::{BandwidthArbiter, ShareGrant};
pub use dma::{DmaCompletion, DmaDescriptor, DmaDirection, DmaEngine};
pub use error::PeriphError;
pub use ethernet::{EthernetFrame, VirtualNic, VirtualSwitch};
pub use vmem::{MemoryImage, MemoryManager, MemoryStats, PageImage, TenantId};
