//! Virtual Ethernet: per-tenant NICs behind one physical port.
//!
//! The paper lists Ethernet among the peripherals the architecture layer
//! virtualizes (§1, §3.2). The model here is a software switch: every
//! tenant's virtual NIC has a MAC-like address and a bounded receive queue,
//! and the switch delivers frames only to their addressee — a tenant can
//! never observe another tenant's traffic.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{PeriphError, TenantId};

/// One Ethernet-like frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetFrame {
    /// Sending NIC address.
    pub src: u64,
    /// Destination NIC address.
    pub dst: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

#[derive(Debug)]
struct NicState {
    tenant: TenantId,
    rx: VecDeque<EthernetFrame>,
    rx_capacity: usize,
    tx_frames: u64,
    rx_drops: u64,
}

/// A handle to one tenant's virtual NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VirtualNic {
    /// The NIC's address on the virtual switch.
    pub mac: u64,
    /// The owning tenant.
    pub tenant: TenantId,
}

/// The per-FPGA virtual switch multiplexing one physical Ethernet port.
pub struct VirtualSwitch {
    nics: Mutex<HashMap<u64, NicState>>,
    next_mac: Mutex<u64>,
}

impl fmt::Debug for VirtualSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualSwitch")
            .field("nics", &self.nics.lock().len())
            .finish()
    }
}

impl Default for VirtualSwitch {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualSwitch {
    /// Creates an empty switch.
    pub fn new() -> Self {
        VirtualSwitch {
            nics: Mutex::new(HashMap::new()),
            next_mac: Mutex::new(0x02_00_00_00_00_01), // locally administered
        }
    }

    /// Provisions a NIC for `tenant` with an `rx_capacity`-frame queue.
    pub fn create_nic(&self, tenant: TenantId, rx_capacity: usize) -> VirtualNic {
        let mut next = self.next_mac.lock();
        let mac = *next;
        *next += 1;
        self.nics.lock().insert(
            mac,
            NicState {
                tenant,
                rx: VecDeque::new(),
                rx_capacity: rx_capacity.max(1),
                tx_frames: 0,
                rx_drops: 0,
            },
        );
        VirtualNic { mac, tenant }
    }

    /// Removes a NIC, dropping any queued frames.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownNic`] if the NIC does not exist.
    pub fn destroy_nic(&self, nic: VirtualNic) -> Result<(), PeriphError> {
        self.nics
            .lock()
            .remove(&nic.mac)
            .map(|_| ())
            .ok_or(PeriphError::UnknownNic(nic.mac))
    }

    /// Sends a frame from `nic` to `dst`.
    ///
    /// # Errors
    ///
    /// * [`PeriphError::UnknownNic`] if source or destination is missing.
    /// * [`PeriphError::RxQueueFull`] if the destination queue is full (the
    ///   frame is dropped and counted at the receiver).
    pub fn send(&self, nic: VirtualNic, dst: u64, payload: Vec<u8>) -> Result<(), PeriphError> {
        let mut nics = self.nics.lock();
        if !nics.contains_key(&nic.mac) {
            return Err(PeriphError::UnknownNic(nic.mac));
        }
        if !nics.contains_key(&dst) {
            return Err(PeriphError::UnknownNic(dst));
        }
        let frame = EthernetFrame {
            src: nic.mac,
            dst,
            payload,
        };
        {
            let dst_state = nics.get_mut(&dst).expect("checked above");
            if dst_state.rx.len() >= dst_state.rx_capacity {
                dst_state.rx_drops += 1;
                return Err(PeriphError::RxQueueFull(dst));
            }
            dst_state.rx.push_back(frame);
        }
        nics.get_mut(&nic.mac).expect("checked above").tx_frames += 1;
        Ok(())
    }

    /// Receives the next queued frame on `nic`, if any.
    ///
    /// Only the owning tenant's handle can receive: the switch checks that
    /// the handle's tenant matches the NIC registration (isolation).
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownNic`] for missing NICs or handles held
    /// by the wrong tenant.
    pub fn recv(&self, nic: VirtualNic) -> Result<Option<EthernetFrame>, PeriphError> {
        let mut nics = self.nics.lock();
        let state = nics
            .get_mut(&nic.mac)
            .ok_or(PeriphError::UnknownNic(nic.mac))?;
        if state.tenant != nic.tenant {
            return Err(PeriphError::UnknownNic(nic.mac));
        }
        Ok(state.rx.pop_front())
    }

    /// Number of NICs currently provisioned on the switch.
    pub fn nic_count(&self) -> usize {
        self.nics.lock().len()
    }

    /// `(tx_frames, rx_queued, rx_drops)` counters of a NIC.
    ///
    /// # Errors
    ///
    /// Returns [`PeriphError::UnknownNic`] if the NIC does not exist.
    pub fn counters(&self, mac: u64) -> Result<(u64, usize, u64), PeriphError> {
        let nics = self.nics.lock();
        let state = nics.get(&mac).ok_or(PeriphError::UnknownNic(mac))?;
        Ok((state.tx_frames, state.rx.len(), state.rx_drops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_delivery() {
        let sw = VirtualSwitch::new();
        let a = sw.create_nic(TenantId::new(1), 8);
        let b = sw.create_nic(TenantId::new(2), 8);
        sw.send(a, b.mac, vec![1, 2, 3]).unwrap();
        let f = sw.recv(b).unwrap().unwrap();
        assert_eq!(f.src, a.mac);
        assert_eq!(f.payload, vec![1, 2, 3]);
        assert!(sw.recv(b).unwrap().is_none());
    }

    #[test]
    fn frames_go_only_to_addressee() {
        let sw = VirtualSwitch::new();
        let a = sw.create_nic(TenantId::new(1), 8);
        let b = sw.create_nic(TenantId::new(2), 8);
        let c = sw.create_nic(TenantId::new(3), 8);
        sw.send(a, b.mac, vec![9]).unwrap();
        assert!(sw.recv(c).unwrap().is_none(), "no snooping");
    }

    #[test]
    fn wrong_tenant_handle_rejected() {
        let sw = VirtualSwitch::new();
        let a = sw.create_nic(TenantId::new(1), 8);
        // Forge a handle to tenant 1's NIC from tenant 2.
        let forged = VirtualNic {
            mac: a.mac,
            tenant: TenantId::new(2),
        };
        assert!(sw.recv(forged).is_err());
    }

    #[test]
    fn rx_queue_overflow_drops() {
        let sw = VirtualSwitch::new();
        let a = sw.create_nic(TenantId::new(1), 8);
        let b = sw.create_nic(TenantId::new(2), 2);
        sw.send(a, b.mac, vec![]).unwrap();
        sw.send(a, b.mac, vec![]).unwrap();
        assert!(matches!(
            sw.send(a, b.mac, vec![]),
            Err(PeriphError::RxQueueFull(_))
        ));
        let (_, queued, drops) = sw.counters(b.mac).unwrap();
        assert_eq!(queued, 2);
        assert_eq!(drops, 1);
    }

    #[test]
    fn unknown_destination_rejected() {
        let sw = VirtualSwitch::new();
        let a = sw.create_nic(TenantId::new(1), 8);
        assert!(sw.send(a, 0xdead, vec![]).is_err());
    }

    #[test]
    fn destroy_removes_nic() {
        let sw = VirtualSwitch::new();
        let a = sw.create_nic(TenantId::new(1), 8);
        assert_eq!(sw.nic_count(), 1);
        sw.destroy_nic(a).unwrap();
        assert!(sw.destroy_nic(a).is_err());
        assert!(sw.counters(a.mac).is_err());
        assert_eq!(sw.nic_count(), 0);
    }
}
