//! Property-based tests of the peripheral virtualization: the virtual
//! memory must behave exactly like one private flat memory per tenant, for
//! any interleaving of tenant operations.

use std::collections::HashMap;

use proptest::prelude::*;
use vital_periph::{BandwidthArbiter, MemoryManager, PeriphError, TenantId};

/// One step of a randomized multi-tenant workload.
#[derive(Debug, Clone)]
enum Op {
    Write {
        tenant: u8,
        addr: u64,
        data: Vec<u8>,
    },
    Read {
        tenant: u8,
        addr: u64,
        len: usize,
    },
}

fn arb_op(quota: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0u8..3,
            0..quota * 2,
            prop::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(tenant, addr, data)| Op::Write { tenant, addr, data }),
        (0u8..3, 0..quota * 2, 1usize..64).prop_map(|(tenant, addr, len)| Op::Read {
            tenant,
            addr,
            len
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MMU agrees with a per-tenant reference model (a plain byte map)
    /// on every read, and faults exactly when the reference would go out of
    /// quota. Cross-tenant leakage is therefore impossible.
    #[test]
    fn memory_matches_reference_model(
        ops in prop::collection::vec(arb_op(16 * 1024), 1..60),
    ) {
        let quota = 16 * 1024u64;
        let mm = MemoryManager::new(1 << 20, 1024);
        let mut reference: HashMap<u8, HashMap<u64, u8>> = HashMap::new();
        for t in 0..3u8 {
            mm.create_space(TenantId::new(u64::from(t)), quota).unwrap();
            reference.insert(t, HashMap::new());
        }
        for op in ops {
            match op {
                Op::Write { tenant, addr, data } => {
                    let result = mm.write(TenantId::new(u64::from(tenant)), addr, &data);
                    let in_quota = addr
                        .checked_add(data.len() as u64)
                        .is_some_and(|end| end <= quota);
                    if in_quota {
                        prop_assert!(result.is_ok());
                        let model = reference.get_mut(&tenant).unwrap();
                        for (i, &b) in data.iter().enumerate() {
                            model.insert(addr + i as u64, b);
                        }
                    } else {
                        let faulted =
                            matches!(result, Err(PeriphError::ProtectionFault { .. }));
                        prop_assert!(faulted);
                    }
                }
                Op::Read { tenant, addr, len } => {
                    let mut buf = vec![0u8; len];
                    let result = mm.read(TenantId::new(u64::from(tenant)), addr, &mut buf);
                    let in_quota = addr
                        .checked_add(len as u64)
                        .is_some_and(|end| end <= quota);
                    if in_quota {
                        prop_assert!(result.is_ok());
                        let model = &reference[&tenant];
                        for (i, &b) in buf.iter().enumerate() {
                            let expected = model.get(&(addr + i as u64)).copied().unwrap_or(0);
                            prop_assert_eq!(b, expected);
                        }
                    } else {
                        let faulted =
                            matches!(result, Err(PeriphError::ProtectionFault { .. }));
                        prop_assert!(faulted);
                    }
                }
            }
        }
    }
}

proptest! {
    /// The arbiter's grants never exceed capacity in total, never exceed a
    /// tenant's demand, and are max-min fair (a tenant demanding less than
    /// the equal share gets all of it).
    #[test]
    fn arbiter_grants_are_feasible_and_fair(
        demands in prop::collection::vec(0.0f64..200.0, 1..10),
        capacity in 1.0f64..500.0,
    ) {
        let arb = BandwidthArbiter::new(capacity);
        for (i, &d) in demands.iter().enumerate() {
            arb.request(TenantId::new(i as u64), d);
        }
        let grants: Vec<f64> = (0..demands.len())
            .map(|i| arb.grant(TenantId::new(i as u64)).unwrap().granted_gbps)
            .collect();
        let total: f64 = grants.iter().sum();
        prop_assert!(total <= capacity + 1e-6, "total {total} > capacity {capacity}");
        let equal_share = capacity / demands.len() as f64;
        for (i, (&g, &d)) in grants.iter().zip(&demands).enumerate() {
            prop_assert!(g <= d + 1e-9, "tenant {i} granted {g} above demand {d}");
            if d <= equal_share {
                prop_assert!((g - d).abs() < 1e-6, "small demand {d} not fully granted ({g})");
            }
        }
    }
}
