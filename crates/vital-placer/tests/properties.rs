//! Property-based tests of the partition pipeline's invariants.

use proptest::prelude::*;
use vital_netlist::hls::{synthesize, AppSpec, Operator};
use vital_netlist::DataflowGraph;
use vital_placer::{
    cut_bits, pack, ClusterGraph, Packing, PackingConfig, Placer, PlacerConfig, VirtualGrid,
};

/// Builds a random chained accelerator spec (no top-level ports needed).
fn app(ops: usize, slices: u32, seed: u64) -> AppSpec {
    let mut spec = AppSpec::new("prop");
    let mut prev = None;
    for i in 0..ops {
        let op = if (seed >> (i % 60)) & 1 == 0 {
            Operator::Pipeline { slices }
        } else {
            Operator::MacArray {
                pes: slices / 4 + 1,
            }
        };
        let id = spec.add_operator(format!("o{i}"), op);
        if let Some(p) = prev {
            spec.add_edge(p, id, 32).unwrap();
        }
        prev = Some(id);
    }
    spec
}

fn check_packing_complete(netlist: &vital_netlist::Netlist, packing: &Packing) -> bool {
    let total: usize = packing.clusters().iter().map(|c| c.members().len()).sum();
    if total != netlist.primitive_count() {
        return false;
    }
    // Membership is consistent with the assignment map.
    packing
        .clusters()
        .iter()
        .all(|c| c.members().iter().all(|&m| packing.cluster_of(m) == c.id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packing is a partition: complete, consistent, resource-conserving,
    /// for any seed and capacity.
    #[test]
    fn packing_is_a_partition(
        ops in 2usize..7,
        slices in 10u32..60,
        seed in any::<u64>(),
        cap in 4usize..64,
    ) {
        let spec = app(ops, slices, seed);
        let netlist = synthesize(&spec).unwrap();
        let dfg = DataflowGraph::from_netlist(&netlist);
        let cfg = PackingConfig { seed, max_primitives: cap, merge_below: cap / 4 };
        let packing = pack(&netlist, &dfg, &cfg);
        prop_assert!(check_packing_complete(&netlist, &packing));
        let packed: vital_fabric::Resources =
            packing.clusters().iter().map(|c| c.resources()).sum();
        prop_assert_eq!(packed, netlist.resource_usage());
    }

    /// The contracted cluster graph never loses or invents edge weight:
    /// its total equals the netlist's inter-cluster bits.
    #[test]
    fn cluster_graph_conserves_cut_weight(
        ops in 2usize..6,
        slices in 10u32..40,
        seed in any::<u64>(),
    ) {
        let spec = app(ops, slices, seed);
        let netlist = synthesize(&spec).unwrap();
        let dfg = DataflowGraph::from_netlist(&netlist);
        let packing = pack(&netlist, &dfg, &PackingConfig::default());
        let graph = ClusterGraph::from_packing(&dfg, &packing);
        let expected: u64 = dfg
            .undirected_edges()
            .filter(|&(a, b, _)| packing.cluster_of(a) != packing.cluster_of(b))
            .map(|(_, _, w)| w)
            .sum();
        prop_assert_eq!(graph.total_edge_bits(), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full placer always produces a legal placement when the grid has
    /// comfortable slack, and its cut never exceeds the total edge weight.
    #[test]
    fn placer_produces_legal_placements(
        ops in 3usize..6,
        seed in any::<u64>(),
    ) {
        let spec = app(ops, 40, seed);
        let netlist = synthesize(&spec).unwrap();
        let total = netlist.resource_usage();
        let grid = VirtualGrid::uniform(4, total.scale(0.6));
        let placement = Placer::new(PlacerConfig { seed, ..PlacerConfig::default() })
            .run(&netlist, &grid)
            .unwrap();
        prop_assert!(placement.is_legal());
        // Every non-I/O primitive landed in a slot.
        for prim in netlist.primitives().iter().filter(|p| !p.kind().is_io()) {
            prop_assert!(placement.block_of(prim.id()).is_some());
        }
        let dfg = DataflowGraph::from_netlist(&netlist);
        let all_bits: u64 = dfg.undirected_edges().map(|(_, _, w)| w).sum();
        prop_assert!(cut_bits(&placement) <= all_bits);
    }
}
