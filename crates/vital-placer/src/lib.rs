//! Placement-based partition engine — ViTAL's custom compilation tool
//! (paper §4).
//!
//! The paper partitions an application netlist into a group of virtual
//! blocks by *placing* it onto a pre-defined 2D space and cutting along the
//! placement. The pipeline implemented here follows §4 step by step:
//!
//! 1. **Packing** (§4.1, Algorithm 1) — a greedy pass that packs logic
//!    primitives into coarse clusters using the attraction score
//!    `|S₂|/|S₁|`, shrinking the problem the global placer must solve.
//! 2. **Quadratic global placement** (§4.2 step 1, Eq. 1–2) — minimizes the
//!    total interconnect length by solving a sparse linear system; the
//!    solver is a Jacobi-preconditioned conjugate-gradient built in-repo
//!    (the paper uses Eigen).
//! 3. **Legalization** (§4.2 step 2, Eq. 3) — simulated annealing that
//!    removes virtual-block over-utilization while minimizing total cluster
//!    movement, followed by a wirelength-recovery refinement pass.
//! 4. **Pseudo-cluster anchoring** (§4.2 steps 3–4, Eq. 4) — the legalized
//!    positions are fed back into the linear system as anchors with a
//!    slowly growing weight `β`, iterating until the wirelength gap between
//!    the solved and legalized placements is below 20 %.
//!
//! The output assigns every packed cluster to a virtual block, from which
//! `vital-compiler` builds the per-block sub-netlists and the
//! latency-insensitive interface.
//!
//! # Example
//!
//! ```
//! use vital_netlist::hls::{AppSpec, Operator};
//! use vital_placer::{Placer, PlacerConfig, VirtualGrid};
//! use vital_fabric::Resources;
//!
//! let mut spec = AppSpec::new("app");
//! let a = spec.add_operator("a", Operator::MacArray { pes: 16 });
//! let b = spec.add_operator("b", Operator::Pipeline { slices: 40 });
//! spec.add_edge(a, b, 64)?;
//! let netlist = vital_netlist::hls::synthesize(&spec)?;
//!
//! let grid = VirtualGrid::uniform(2, Resources::new(4_000, 8_000, 64, 1_000));
//! let placement = Placer::new(PlacerConfig::default()).run(&netlist, &grid)?;
//! assert!(placement.is_legal());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster_graph;
mod cut_refine;
mod error;
mod legalize;
mod metrics;
mod packing;
mod placement;
mod quadratic;
mod solver;

pub use cluster_graph::ClusterGraph;
pub use error::PlacerError;
pub use legalize::SaConfig;
pub use metrics::{cut_bits, wirelength, PartitionQuality};
pub use packing::{pack, Cluster, ClusterId, Packing, PackingConfig};
pub use placement::{random_assignment, Placement, Placer, PlacerConfig, VirtualGrid};
pub use solver::{CgSolution, SparseSystem};
