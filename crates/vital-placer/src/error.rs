//! Error type of the placer crate.

use std::error::Error;
use std::fmt;

use vital_fabric::Resources;

/// Errors produced by the placement/partition pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlacerError {
    /// The netlist contains no primitives.
    EmptyNetlist,
    /// The netlist does not fit in the virtual-block grid even at full
    /// utilization.
    CapacityExceeded {
        /// Resources the netlist needs.
        required: Resources,
        /// Aggregate capacity the grid provides.
        available: Resources,
    },
}

impl fmt::Display for PlacerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacerError::EmptyNetlist => write!(f, "netlist has no primitives to place"),
            PlacerError::CapacityExceeded {
                required,
                available,
            } => write!(
                f,
                "netlist needs {required} but the grid provides only {available}"
            ),
        }
    }
}

impl Error for PlacerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PlacerError>();
        assert!(!PlacerError::EmptyNetlist.to_string().is_empty());
    }
}
