//! Simulated-annealing legalization (paper §4.2 step 2, Eq. 3) plus the
//! wirelength-recovery refinement pass.

use rand::rngs::StdRng;
use rand::Rng;
use vital_fabric::Resources;

use crate::placement::VirtualGrid;
use crate::{Cluster, ClusterGraph, ClusterId};

/// Simulated-annealing schedule for the legalization step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Starting temperature.
    pub t0: f64,
    /// Geometric cooling factor per temperature step.
    pub cooling: f64,
    /// Proposed moves per cluster per temperature step.
    pub moves_per_cluster: usize,
    /// Temperature at which annealing stops.
    pub t_min: f64,
    /// Refinement (recovery) passes after annealing.
    pub refine_passes: usize,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            t0: 2.0,
            cooling: 0.70,
            moves_per_cluster: 4,
            t_min: 0.02,
            refine_passes: 2,
        }
    }
}

/// Penalty magnitude for an over-utilized block: the "large positive number"
/// of the paper's `f_i`. A small proportional term is added so the annealer
/// can feel the *direction* of improvement while still being dominated by
/// the feasibility cliff.
const OVERFLOW_PENALTY: f64 = 1.0e4;

/// The internal legalization state: assignment plus incremental bookkeeping.
pub(crate) struct Legalizer<'a> {
    clusters: &'a [Cluster],
    graph: &'a ClusterGraph,
    grid: &'a VirtualGrid,
    start: &'a [(f64, f64)],
    alpha: f64,
    /// Cluster -> slot (None for I/O pad clusters).
    assignment: Vec<Option<u32>>,
    usage: Vec<Resources>,
}

impl<'a> Legalizer<'a> {
    pub(crate) fn new(
        clusters: &'a [Cluster],
        graph: &'a ClusterGraph,
        grid: &'a VirtualGrid,
        start: &'a [(f64, f64)],
        alpha: f64,
    ) -> Self {
        let mut l = Legalizer {
            clusters,
            graph,
            grid,
            start,
            alpha,
            assignment: vec![None; clusters.len()],
            usage: vec![Resources::ZERO; grid.slot_count()],
        };
        l.initial_assignment();
        l
    }

    /// Greedy initial assignment: clusters sorted by continuous x then y,
    /// first slot (in x-major order) that still fits; falls back to the
    /// least-utilized slot when nothing fits.
    fn initial_assignment(&mut self) {
        let mut order: Vec<usize> = (0..self.clusters.len())
            .filter(|&i| !self.clusters[i].is_io())
            .collect();
        order.sort_by(|&a, &b| {
            let (xa, ya) = self.start[a];
            let (xb, yb) = self.start[b];
            xa.partial_cmp(&xb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ya.partial_cmp(&yb).unwrap_or(std::cmp::Ordering::Equal))
        });
        let cap = self.grid.capacity();
        for i in order {
            let need = self.clusters[i].resources();
            let fit = (0..self.grid.slot_count())
                .find(|&s| (self.usage[s] + need).fits_within(&cap))
                .or_else(|| {
                    (0..self.grid.slot_count()).min_by(|&a, &b| {
                        let ua = self.usage[a].utilization_of(&cap).bottleneck();
                        let ub = self.usage[b].utilization_of(&cap).bottleneck();
                        ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
                    })
                })
                .expect("grid has at least one slot");
            self.assignment[i] = Some(fit as u32);
            self.usage[fit] += need;
        }
    }

    /// The Eq. 3 cost of the current assignment.
    pub(crate) fn cost(&self) -> f64 {
        let n_cluster = self.clusters.iter().filter(|c| !c.is_io()).count().max(1);
        let mut move_dist = 0.0;
        for (i, slot) in self.assignment.iter().enumerate() {
            if let Some(s) = slot {
                move_dist += self.move_dist(i, *s);
            }
        }
        let overflow: f64 = (0..self.grid.slot_count())
            .map(|s| self.slot_overflow(s))
            .sum();
        move_dist / n_cluster as f64 + overflow / self.grid.slot_count() as f64
    }

    /// Eq. 3 distance term for one cluster placed in `slot`.
    fn move_dist(&self, cluster: usize, slot: u32) -> f64 {
        let (sx, sy) = self.grid.position(slot as usize);
        let (x0, y0) = self.start[cluster];
        self.alpha * (sx - x0).abs() + (sy - y0).abs()
    }

    /// The paper's `f_i`: zero when feasible, a large positive number (with
    /// a small proportional term) when over-utilized.
    fn slot_overflow(&self, slot: usize) -> f64 {
        let cap = self.grid.capacity();
        let b = self.usage[slot].utilization_of(&cap).bottleneck();
        if b > 1.0 {
            OVERFLOW_PENALTY * (1.0 + (b - 1.0))
        } else {
            0.0
        }
    }

    /// Runs the annealing schedule followed by refinement; returns the final
    /// assignment (cluster -> slot; `None` for I/O pads).
    pub(crate) fn run(mut self, sa: &SaConfig, rng: &mut StdRng) -> Vec<Option<u32>> {
        let movable: Vec<usize> = (0..self.clusters.len())
            .filter(|&i| !self.clusters[i].is_io())
            .collect();
        if movable.is_empty() || self.grid.slot_count() < 2 {
            self.refine(sa.refine_passes);
            return self.assignment;
        }

        let n_cluster = movable.len().max(1) as f64;
        let n_slot = self.grid.slot_count() as f64;
        let mut cost = self.cost();
        let mut best = self.assignment.clone();
        let mut best_cost = cost;
        let mut t = sa.t0;
        while t > sa.t_min {
            let moves = movable.len() * sa.moves_per_cluster;
            for _ in 0..moves {
                let i = movable[rng.gen_range(0..movable.len())];
                let from = self.assignment[i].expect("movable clusters are assigned");
                let to = rng.gen_range(0..self.grid.slot_count()) as u32;
                if to == from {
                    continue;
                }
                // Incremental Eq. 3 delta: only cluster i's distance term
                // and the two touched slots' overflow terms change.
                let before = self.move_dist(i, from) / n_cluster
                    + (self.slot_overflow(from as usize) + self.slot_overflow(to as usize))
                        / n_slot;
                self.apply_move(i, to);
                let after = self.move_dist(i, to) / n_cluster
                    + (self.slot_overflow(from as usize) + self.slot_overflow(to as usize))
                        / n_slot;
                let delta = after - before;
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / t).exp() {
                    cost += delta;
                    if cost < best_cost {
                        best_cost = cost;
                        best.clone_from(&self.assignment);
                    }
                } else {
                    self.apply_move(i, from);
                }
            }
            t *= sa.cooling;
        }
        // Restore the best assignment seen.
        self.restore(best);
        self.refine(sa.refine_passes);
        self.assignment
    }

    fn apply_move(&mut self, cluster: usize, to: u32) {
        let need = self.clusters[cluster].resources();
        if let Some(from) = self.assignment[cluster] {
            self.usage[from as usize] = self.usage[from as usize].saturating_sub(&need);
        }
        self.usage[to as usize] += need;
        self.assignment[cluster] = Some(to);
    }

    fn restore(&mut self, assignment: Vec<Option<u32>>) {
        self.usage = vec![Resources::ZERO; self.grid.slot_count()];
        for (i, slot) in assignment.iter().enumerate() {
            if let Some(s) = slot {
                self.usage[*s as usize] += self.clusters[i].resources();
            }
        }
        self.assignment = assignment;
    }

    /// Density-preserving wirelength recovery (stand-in for the POLAR-based
    /// refinement the paper adapts, §4.2 step 2): greedily relocate clusters
    /// to the slot of their strongest neighbours when that reduces the
    /// connected wirelength and keeps every block feasible.
    fn refine(&mut self, passes: usize) {
        let cap = self.grid.capacity();
        for _ in 0..passes {
            let mut improved = false;
            for i in 0..self.clusters.len() {
                let Some(from) = self.assignment[i] else {
                    continue;
                };
                let need = self.clusters[i].resources();
                // Candidate slots: where the neighbours live.
                let mut candidates: Vec<u32> = self
                    .graph
                    .neighbors(ClusterId(i as u32))
                    .iter()
                    .filter_map(|&(nb, _)| self.assignment[nb.index()])
                    .collect();
                candidates.sort_unstable();
                candidates.dedup();
                let base = self.local_wirelength(i, from);
                let mut best: Option<(u32, f64)> = None;
                for &cand in &candidates {
                    if cand == from {
                        continue;
                    }
                    let fits = (self.usage[cand as usize] + need).fits_within(&cap);
                    if !fits {
                        continue;
                    }
                    let wl = self.local_wirelength(i, cand);
                    if wl < base && best.is_none_or(|(_, b)| wl < b) {
                        best = Some((cand, wl));
                    }
                }
                if let Some((to, _)) = best {
                    self.apply_move(i, to);
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    /// Wirelength of cluster `i`'s incident edges if it were placed in
    /// `slot`, using slot centres (pads use their continuous position).
    fn local_wirelength(&self, i: usize, slot: u32) -> f64 {
        let (xi, yi) = self.grid.position(slot as usize);
        self.graph
            .neighbors(ClusterId(i as u32))
            .iter()
            .map(|&(nb, w)| {
                let (xj, yj) = match self.assignment[nb.index()] {
                    Some(s) => self.grid.position(s as usize),
                    None => self.start[nb.index()], // I/O pad
                };
                w as f64 * (self.alpha * (xi - xj).abs() + (yi - yj).abs())
            })
            .sum()
    }

    /// `true` if no slot is over-utilized.
    #[cfg(test)]
    #[allow(dead_code)] // kept as a debugging probe for legalizer tests
    pub(crate) fn is_feasible(&self) -> bool {
        let cap = self.grid.capacity();
        self.usage.iter().all(|u| u.fits_within(&cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack, PackingConfig};
    use rand::SeedableRng;
    use vital_netlist::hls::{synthesize, AppSpec, Operator};
    use vital_netlist::DataflowGraph;

    fn setup(ops: u32) -> (Vec<Cluster>, ClusterGraph) {
        let mut spec = AppSpec::new("t");
        let mut prev = None;
        for i in 0..ops {
            let op = spec.add_operator(format!("o{i}"), Operator::Pipeline { slices: 24 });
            if let Some(p) = prev {
                spec.add_edge(p, op, 32).unwrap();
            }
            prev = Some(op);
        }
        let n = synthesize(&spec).unwrap();
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(
            &n,
            &dfg,
            &PackingConfig {
                max_primitives: 24,
                ..PackingConfig::default()
            },
        );
        let g = ClusterGraph::from_packing(&dfg, &p);
        (p.clusters().to_vec(), g)
    }

    #[test]
    fn legalization_removes_overflow() {
        let (clusters, graph) = setup(8);
        // Capacity sized so roughly half the clusters fit per slot.
        let total: Resources = clusters.iter().map(|c| c.resources()).sum();
        let cap = total.scale(0.6);
        let grid = VirtualGrid::uniform(2, cap);
        let start: Vec<(f64, f64)> = (0..clusters.len()).map(|_| (0.0, 0.0)).collect();
        let legalizer = Legalizer::new(&clusters, &graph, &grid, &start, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let assignment = legalizer.run(&SaConfig::default(), &mut rng);
        // Recompute usage and verify feasibility.
        let mut usage = vec![Resources::ZERO; grid.slot_count()];
        for (i, slot) in assignment.iter().enumerate() {
            if let Some(s) = slot {
                usage[*s as usize] += clusters[i].resources();
            }
        }
        assert!(usage.iter().all(|u| u.fits_within(&cap)));
    }

    #[test]
    fn single_slot_grid_degenerates_gracefully() {
        let (clusters, graph) = setup(3);
        let total: Resources = clusters.iter().map(|c| c.resources()).sum();
        let grid = VirtualGrid::uniform(1, total);
        let start = vec![(0.0, 0.0); clusters.len()];
        let legalizer = Legalizer::new(&clusters, &graph, &grid, &start, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let assignment = legalizer.run(&SaConfig::default(), &mut rng);
        assert!(assignment
            .iter()
            .enumerate()
            .all(|(i, s)| clusters[i].is_io() || *s == Some(0)));
    }
}
