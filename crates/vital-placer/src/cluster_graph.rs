//! Contracted connectivity graph over packed clusters.

use std::collections::HashMap;

use vital_netlist::DataflowGraph;

use crate::{ClusterId, Packing};

/// The cluster-level connectivity graph: nodes are packed clusters, edge
/// weights are accumulated bits between clusters. This is the `w_ij` matrix
/// of the paper's Eq. 1.
#[derive(Debug, Clone)]
pub struct ClusterGraph {
    adj: Vec<Vec<(ClusterId, u64)>>,
    total_edge_bits: u64,
}

impl ClusterGraph {
    /// Contracts the primitive-level dataflow graph by the packing.
    pub fn from_packing(dfg: &DataflowGraph, packing: &Packing) -> Self {
        let n = packing.cluster_count();
        let mut maps: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        let mut total = 0u64;
        for (a, b, bits) in dfg.undirected_edges() {
            let ca = packing.cluster_of(a);
            let cb = packing.cluster_of(b);
            if ca == cb {
                continue;
            }
            *maps[ca.index()].entry(cb.0).or_insert(0) += bits;
            *maps[cb.index()].entry(ca.0).or_insert(0) += bits;
            total += bits;
        }
        let adj = maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(ClusterId, u64)> =
                    m.into_iter().map(|(c, w)| (ClusterId(c), w)).collect();
                v.sort_by_key(|&(c, _)| c);
                v
            })
            .collect();
        ClusterGraph {
            adj,
            total_edge_bits: total,
        }
    }

    /// Number of clusters.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Weighted neighbours of cluster `c`.
    pub fn neighbors(&self, c: ClusterId) -> &[(ClusterId, u64)] {
        &self.adj[c.index()]
    }

    /// Sum of all inter-cluster edge weights (each edge counted once).
    pub fn total_edge_bits(&self) -> u64 {
        self.total_edge_bits
    }

    /// Iterates all edges once (`a < b`).
    pub fn edges(&self) -> impl Iterator<Item = (ClusterId, ClusterId, u64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, list)| {
            list.iter()
                .filter(move |(b, _)| b.index() > a)
                .map(move |&(b, w)| (ClusterId(a as u32), b, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack, PackingConfig};
    use vital_netlist::hls::{synthesize, AppSpec, Operator};

    #[test]
    fn contraction_conserves_cut_weight_symmetry() {
        let mut spec = AppSpec::new("t");
        let a = spec.add_operator("a", Operator::Pipeline { slices: 30 });
        let b = spec.add_operator("b", Operator::Pipeline { slices: 30 });
        spec.add_edge(a, b, 128).unwrap();
        let n = synthesize(&spec).unwrap();
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(&n, &dfg, &PackingConfig::default());
        let g = ClusterGraph::from_packing(&dfg, &p);
        assert_eq!(g.node_count(), p.cluster_count());
        // Every edge appears in both adjacency lists with equal weight.
        for (x, y, w) in g.edges() {
            let back = g
                .neighbors(y)
                .iter()
                .find(|&&(c, _)| c == x)
                .map(|&(_, w)| w);
            assert_eq!(back, Some(w));
        }
        // total_edge_bits equals the sum over the one-directional iterator.
        let sum: u64 = g.edges().map(|(_, _, w)| w).sum();
        assert_eq!(sum, g.total_edge_bits());
    }

    #[test]
    fn fully_packed_single_cluster_has_no_edges() {
        let mut spec = AppSpec::new("t");
        spec.add_operator("a", Operator::Pipeline { slices: 4 });
        let n = synthesize(&spec).unwrap();
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(
            &n,
            &dfg,
            &PackingConfig {
                max_primitives: 64,
                ..PackingConfig::default()
            },
        );
        let g = ClusterGraph::from_packing(&dfg, &p);
        assert_eq!(g.total_edge_bits(), 0);
    }
}
