//! Greedy packing of logic primitives into coarse clusters
//! (paper §4.1, Algorithm 1).
//!
//! Packing shrinks the netlist before global placement: a randomly selected
//! unpacked primitive seeds a cluster, which then greedily absorbs the
//! unpacked primitive with the highest *attraction score*
//! `|S₂| / |S₁|`, where `S₁` is the candidate's full neighbour set and `S₂`
//! its neighbours already inside the cluster. Small clusters are merged at
//! the end to reduce the cluster count.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vital_fabric::Resources;
use vital_netlist::{DataflowGraph, Netlist, PrimitiveId};

/// Index of a packed cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(pub(crate) u32);

impl ClusterId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One packed cluster of primitives.
#[derive(Debug, Clone)]
pub struct Cluster {
    id: ClusterId,
    members: Vec<PrimitiveId>,
    resources: Resources,
    is_io: bool,
}

impl Cluster {
    /// The cluster id.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Primitives packed into this cluster.
    pub fn members(&self) -> &[PrimitiveId] {
        &self.members
    }

    /// Combined resources of the members.
    pub fn resources(&self) -> Resources {
        self.resources
    }

    /// `true` if this cluster is a singleton top-level I/O port; I/O
    /// clusters act as fixed pads during quadratic placement.
    pub fn is_io(&self) -> bool {
        self.is_io
    }
}

/// Configuration of the packing pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackingConfig {
    /// RNG seed for the random seed-primitive selection; packing is fully
    /// deterministic for a fixed seed.
    pub seed: u64,
    /// Capacity of one cluster in primitives.
    pub max_primitives: usize,
    /// Clusters smaller than this are merged into a connected neighbour.
    pub merge_below: usize,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            seed: 0x5eed,
            max_primitives: 32,
            merge_below: 8,
        }
    }
}

/// The result of packing: clusters plus the primitive-to-cluster map.
#[derive(Debug, Clone)]
pub struct Packing {
    clusters: Vec<Cluster>,
    cluster_of: Vec<ClusterId>,
}

impl Packing {
    /// The packed clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster containing primitive `p`.
    pub fn cluster_of(&self, p: PrimitiveId) -> ClusterId {
        self.cluster_of[p.index()]
    }

    /// The full primitive-to-cluster map, indexed by primitive id.
    pub fn assignment(&self) -> &[ClusterId] {
        &self.cluster_of
    }
}

/// Packs the netlist into clusters per Algorithm 1.
///
/// Top-level I/O ports are kept as singleton clusters (they serve as fixed
/// pads in the quadratic placement); all other primitives are packed
/// greedily by attraction score.
///
/// # Panics
///
/// Panics if `cfg.max_primitives` is zero.
pub fn pack(netlist: &Netlist, dfg: &DataflowGraph, cfg: &PackingConfig) -> Packing {
    assert!(cfg.max_primitives > 0, "cluster capacity must be non-zero");
    let n = netlist.primitive_count();
    let mut cluster_of: Vec<Option<ClusterId>> = vec![None; n];
    let mut clusters: Vec<Cluster> = Vec::new();

    // I/O ports become singleton pad clusters.
    for p in netlist.primitives() {
        if p.kind().is_io() {
            let id = ClusterId(clusters.len() as u32);
            cluster_of[p.id().index()] = Some(id);
            clusters.push(Cluster {
                id,
                members: vec![p.id()],
                resources: Resources::ZERO,
                is_io: true,
            });
        }
    }

    // Deterministic random visitation order for seed selection.
    let mut order: Vec<u32> = (0..n as u32)
        .filter(|&i| cluster_of[i as usize].is_none())
        .collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    order.shuffle(&mut rng);

    // Precompute |S1| (distinct-neighbour degree) per primitive.
    let degree: Vec<usize> = (0..n)
        .map(|i| dfg.neighbors(PrimitiveId::new(i as u32)).len())
        .collect();

    for &seed in &order {
        if cluster_of[seed as usize].is_some() {
            continue;
        }
        let id = ClusterId(clusters.len() as u32);
        let mut members = vec![PrimitiveId::new(seed)];
        cluster_of[seed as usize] = Some(id);
        // links_in[v] = |S2| for candidate v.
        let mut links_in: HashMap<u32, usize> = HashMap::new();
        let absorb_frontier = |p: PrimitiveId,
                               cluster_of: &[Option<ClusterId>],
                               links_in: &mut HashMap<u32, usize>| {
            for e in dfg.neighbors(p) {
                if cluster_of[e.other.index()].is_none() {
                    *links_in.entry(e.other.raw()).or_insert(0) += 1;
                }
            }
        };
        absorb_frontier(PrimitiveId::new(seed), &cluster_of, &mut links_in);

        while members.len() < cfg.max_primitives {
            // Highest attraction score |S2|/|S1|; ties broken by more links,
            // then by lower id for determinism.
            let best = links_in
                .iter()
                .map(|(&v, &s2)| {
                    let s1 = degree[v as usize].max(1);
                    (s2 as f64 / s1 as f64, s2, std::cmp::Reverse(v), v)
                })
                .max_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                        .then(a.2.cmp(&b.2))
                })
                .map(|(_, _, _, v)| v);
            let Some(v) = best else { break };
            links_in.remove(&v);
            cluster_of[v as usize] = Some(id);
            members.push(PrimitiveId::new(v));
            absorb_frontier(PrimitiveId::new(v), &cluster_of, &mut links_in);
            // Drop candidates that were packed by this very loop.
            links_in.retain(|&k, _| cluster_of[k as usize].is_none());
        }

        let resources = members
            .iter()
            .map(|&m| {
                netlist
                    .primitive(m)
                    .expect("member ids originate from this netlist")
                    .resources()
            })
            .sum();
        clusters.push(Cluster {
            id,
            members,
            resources,
            is_io: false,
        });
    }

    let mut packing = Packing {
        clusters,
        cluster_of: cluster_of
            .into_iter()
            .map(|c| c.expect("every primitive was packed"))
            .collect(),
    };
    merge_small_clusters(netlist, dfg, &mut packing, cfg);
    packing
}

/// Merges clusters below `cfg.merge_below` primitives into their most
/// connected non-I/O neighbour cluster that still has capacity.
fn merge_small_clusters(
    netlist: &Netlist,
    dfg: &DataflowGraph,
    packing: &mut Packing,
    cfg: &PackingConfig,
) {
    let small: Vec<ClusterId> = packing
        .clusters
        .iter()
        .filter(|c| !c.is_io && c.members.len() < cfg.merge_below)
        .map(|c| c.id)
        .collect();

    for cid in small {
        // Recheck: an earlier merge may have grown or emptied this cluster.
        let members = packing.clusters[cid.index()].members.clone();
        if members.is_empty() || members.len() >= cfg.merge_below {
            continue;
        }
        // Find the most connected target cluster with room.
        let mut link_bits: HashMap<u32, u64> = HashMap::new();
        for &m in &members {
            for e in dfg.neighbors(m) {
                let other = packing.cluster_of[e.other.index()];
                if other != cid && !packing.clusters[other.index()].is_io {
                    *link_bits.entry(other.0).or_insert(0) += e.bits;
                }
            }
        }
        let target = link_bits
            .into_iter()
            .filter(|&(t, _)| {
                packing.clusters[t as usize].members.len() + members.len() <= cfg.max_primitives * 2
            })
            .max_by_key(|&(t, bits)| (bits, std::cmp::Reverse(t)))
            .map(|(t, _)| ClusterId(t));
        let Some(target) = target else { continue };

        let moved = std::mem::take(&mut packing.clusters[cid.index()].members);
        let moved_res = packing.clusters[cid.index()].resources;
        packing.clusters[cid.index()].resources = Resources::ZERO;
        for &m in &moved {
            packing.cluster_of[m.index()] = target;
        }
        packing.clusters[target.index()].members.extend(moved);
        packing.clusters[target.index()].resources += moved_res;
    }

    // Compact away emptied clusters and renumber.
    let mut remap: Vec<Option<ClusterId>> = vec![None; packing.clusters.len()];
    let mut compacted: Vec<Cluster> = Vec::with_capacity(packing.clusters.len());
    for c in packing.clusters.drain(..) {
        if c.members.is_empty() {
            continue;
        }
        let new_id = ClusterId(compacted.len() as u32);
        remap[c.id.index()] = Some(new_id);
        compacted.push(Cluster { id: new_id, ..c });
    }
    packing.clusters = compacted;
    for c in packing.cluster_of.iter_mut() {
        *c = remap[c.index()].expect("non-empty clusters survive compaction");
    }
    let _ = netlist; // kept for symmetry with pack(); resources already merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_netlist::hls::{synthesize, AppSpec, Operator};
    use vital_netlist::PrimitiveKind;

    fn mac_netlist(pes: u32) -> Netlist {
        let mut spec = AppSpec::new("t");
        let m = spec.add_operator("m", Operator::MacArray { pes });
        spec.add_input("i", m, 32).unwrap();
        spec.add_output("o", m, 32).unwrap();
        synthesize(&spec).unwrap()
    }

    #[test]
    fn packs_everything_exactly_once() {
        let n = mac_netlist(20);
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(&n, &dfg, &PackingConfig::default());
        let total: usize = p.clusters().iter().map(|c| c.members().len()).sum();
        assert_eq!(total, n.primitive_count());
        // Every primitive's recorded cluster actually contains it.
        for prim in n.primitives() {
            let c = p.cluster_of(prim.id());
            assert!(p.clusters()[c.index()].members().contains(&prim.id()));
        }
    }

    #[test]
    fn respects_capacity_up_to_merge_slack() {
        let cfg = PackingConfig {
            max_primitives: 16,
            ..PackingConfig::default()
        };
        let n = mac_netlist(40);
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(&n, &dfg, &cfg);
        for c in p.clusters().iter().filter(|c| !c.is_io()) {
            assert!(c.members().len() <= cfg.max_primitives * 2);
        }
    }

    #[test]
    fn io_ports_are_singleton_pad_clusters() {
        let n = mac_netlist(5);
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(&n, &dfg, &PackingConfig::default());
        let io_clusters: Vec<_> = p.clusters().iter().filter(|c| c.is_io()).collect();
        assert_eq!(io_clusters.len(), 2);
        for c in io_clusters {
            assert_eq!(c.members().len(), 1);
            assert!(c.resources().is_zero());
        }
    }

    #[test]
    fn resources_are_conserved() {
        let n = mac_netlist(12);
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(&n, &dfg, &PackingConfig::default());
        let packed: Resources = p.clusters().iter().map(|c| c.resources()).sum();
        assert_eq!(packed, n.resource_usage());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let n = mac_netlist(15);
        let dfg = DataflowGraph::from_netlist(&n);
        let cfg = PackingConfig::default();
        let a = pack(&n, &dfg, &cfg);
        let b = pack(&n, &dfg, &cfg);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn different_seeds_may_differ_but_stay_complete() {
        let n = mac_netlist(15);
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(
            &n,
            &dfg,
            &PackingConfig {
                seed: 99,
                ..PackingConfig::default()
            },
        );
        let total: usize = p.clusters().iter().map(|c| c.members().len()).sum();
        assert_eq!(total, n.primitive_count());
    }

    #[test]
    fn attraction_prefers_connected_primitives() {
        // Two disjoint chains: packing must never mix them into one cluster
        // while unconnected candidates remain scoreless.
        let mut n = Netlist::new("two-chains");
        let chain = |n: &mut Netlist, tag: &str| {
            let mut prev = None;
            let mut ids = Vec::new();
            for i in 0..6 {
                let id = n.add_primitive(PrimitiveKind::lut(6), format!("{tag}{i}"));
                if let Some(p) = prev {
                    n.connect(p, [id], 1).unwrap();
                }
                prev = Some(id);
                ids.push(id);
            }
            ids
        };
        let a = chain(&mut n, "a");
        let b = chain(&mut n, "b");
        let dfg = DataflowGraph::from_netlist(&n);
        let cfg = PackingConfig {
            max_primitives: 6,
            merge_below: 1,
            ..PackingConfig::default()
        };
        let p = pack(&n, &dfg, &cfg);
        let ca = p.cluster_of(a[0]);
        assert!(a.iter().all(|&x| p.cluster_of(x) == ca));
        let cb = p.cluster_of(b[0]);
        assert!(b.iter().all(|&x| p.cluster_of(x) == cb));
        assert_ne!(ca, cb);
    }

    #[test]
    fn merge_reduces_cluster_count() {
        let n = mac_netlist(30);
        let dfg = DataflowGraph::from_netlist(&n);
        let merged = pack(
            &n,
            &dfg,
            &PackingConfig {
                merge_below: 16,
                max_primitives: 16,
                ..PackingConfig::default()
            },
        );
        let unmerged = pack(
            &n,
            &dfg,
            &PackingConfig {
                merge_below: 0,
                max_primitives: 16,
                ..PackingConfig::default()
            },
        );
        assert!(merged.cluster_count() <= unmerged.cluster_count());
    }
}
