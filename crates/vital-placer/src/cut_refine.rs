//! Cut-driven refinement of the final partition.
//!
//! The partition step's explicit goal is to *minimize the number of
//! inter-block connections* (paper §3.3 step 2). The quadratic/annealing
//! pipeline optimizes wirelength, which correlates with — but is not
//! identical to — the cut. This pass runs a Fiduccia–Mattheyses-style
//! greedy sweep on the final assignment: repeatedly move the cluster with
//! the highest positive *cut gain* to a neighbouring block (capacity
//! permitting), locking each moved cluster until the pass ends.

use vital_fabric::Resources;

use crate::placement::VirtualGrid;
use crate::{Cluster, ClusterGraph, ClusterId};

/// Runs `passes` FM-style sweeps over `assignment`, mutating it in place.
/// Returns the number of moves applied.
pub(crate) fn refine_cut(
    clusters: &[Cluster],
    graph: &ClusterGraph,
    grid: &VirtualGrid,
    assignment: &mut [Option<u32>],
    passes: usize,
) -> usize {
    let cap = grid.capacity();
    let mut usage = vec![Resources::ZERO; grid.slot_count()];
    for (i, slot) in assignment.iter().enumerate() {
        if let Some(s) = slot {
            usage[*s as usize] += clusters[i].resources();
        }
    }

    let mut total_moves = 0usize;
    for _ in 0..passes {
        let mut locked = vec![false; clusters.len()];
        let mut moved_this_pass = 0usize;
        loop {
            // Find the best positive-gain feasible move among unlocked
            // clusters.
            let mut best: Option<(usize, u32, i64)> = None;
            for (i, cluster) in clusters.iter().enumerate() {
                if locked[i] || cluster.is_io() {
                    continue;
                }
                let Some(from) = assignment[i] else { continue };
                // Bits to each candidate slot (neighbour-occupied slots
                // only — moving elsewhere can't reduce the cut).
                let mut per_slot: Vec<(u32, u64)> = Vec::new();
                let mut internal = 0u64;
                for &(nb, w) in graph.neighbors(ClusterId(i as u32)) {
                    let Some(s) = assignment[nb.index()] else {
                        continue;
                    };
                    if s == from {
                        internal += w;
                    } else {
                        match per_slot.iter_mut().find(|(slot, _)| *slot == s) {
                            Some((_, bits)) => *bits += w,
                            None => per_slot.push((s, w)),
                        }
                    }
                }
                for (to, external) in per_slot {
                    // Gain = bits that stop being cut − bits that start
                    // being cut (edges to the old block become external).
                    let gain = external as i64 - internal as i64;
                    if gain <= 0 {
                        continue;
                    }
                    let fits = (usage[to as usize] + cluster.resources()).fits_within(&cap);
                    if !fits {
                        continue;
                    }
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((i, to, gain));
                    }
                }
            }
            let Some((i, to, _)) = best else { break };
            let from = assignment[i].expect("candidate had a slot");
            usage[from as usize] = usage[from as usize].saturating_sub(&clusters[i].resources());
            usage[to as usize] += clusters[i].resources();
            assignment[i] = Some(to);
            locked[i] = true;
            moved_this_pass += 1;
            total_moves += 1;
        }
        if moved_this_pass == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack, PackingConfig};
    use vital_netlist::hls::{synthesize, AppSpec, Operator};
    use vital_netlist::DataflowGraph;

    /// Builds a two-community netlist and a deliberately bad assignment
    /// that splits each community across both slots.
    #[test]
    fn refinement_reduces_cut_and_respects_capacity() {
        let mut spec = AppSpec::new("two-communities");
        let a1 = spec.add_operator("a1", Operator::Pipeline { slices: 20 });
        let a2 = spec.add_operator("a2", Operator::Pipeline { slices: 20 });
        let b1 = spec.add_operator("b1", Operator::Pipeline { slices: 20 });
        let b2 = spec.add_operator("b2", Operator::Pipeline { slices: 20 });
        spec.add_edge(a1, a2, 512).unwrap();
        spec.add_edge(b1, b2, 512).unwrap();
        spec.add_edge(a2, b1, 8).unwrap(); // weak inter-community link
        let netlist = synthesize(&spec).unwrap();
        let dfg = DataflowGraph::from_netlist(&netlist);
        let packing = pack(
            &netlist,
            &dfg,
            &PackingConfig {
                max_primitives: 20,
                ..PackingConfig::default()
            },
        );
        let graph = ClusterGraph::from_packing(&dfg, &packing);
        let total = netlist.resource_usage();
        // Capacity must leave room for a cluster to migrate: packing yields
        // four ~quarter-sized clusters, so a slot holds at most three of
        // them (~0.75 of total) mid-refinement.
        let grid = VirtualGrid::uniform(2, total.scale(0.8));

        // Adversarial start: isolate one endpoint of the heaviest edge in
        // slot 1 so that edge is cut, everything else in slot 0. (Cluster
        // indices depend on the packing RNG, so the bad start must be
        // derived from the actual cluster graph, not from index parity.)
        let (hu, hv, _) = graph
            .edges()
            .max_by_key(|&(_, _, w)| w)
            .expect("the cluster graph has edges");
        let other_weight = |c: ClusterId, partner: ClusterId| -> u64 {
            graph
                .neighbors(c)
                .iter()
                .filter(|&&(n, _)| n != partner)
                .map(|&(_, w)| w)
                .sum()
        };
        // Keep the endpoint with the weaker remaining attachment in slot 0:
        // pulling it across to its partner is then a positive-gain move.
        let lone = if other_weight(hu, hv) <= other_weight(hv, hu) {
            hv
        } else {
            hu
        };
        let mut assignment: Vec<Option<u32>> = (0..packing.cluster_count())
            .map(|i| {
                if packing.clusters()[i].is_io() {
                    None
                } else {
                    Some(u32::from(ClusterId(i as u32) == lone))
                }
            })
            .collect();
        let cut = |assignment: &[Option<u32>]| -> u64 {
            graph
                .edges()
                .filter_map(|(a, b, w)| {
                    let (Some(x), Some(y)) = (assignment[a.index()], assignment[b.index()]) else {
                        return None;
                    };
                    (x != y).then_some(w)
                })
                .sum()
        };
        let before = cut(&assignment);
        let moves = refine_cut(packing.clusters(), &graph, &grid, &mut assignment, 4);
        let after = cut(&assignment);
        assert!(moves > 0, "the adversarial start must be improvable");
        assert!(after < before, "cut {after} should drop below {before}");

        // Capacity still respected.
        let cap = grid.capacity();
        let mut usage = vec![Resources::ZERO; grid.slot_count()];
        for (i, slot) in assignment.iter().enumerate() {
            if let Some(s) = slot {
                usage[*s as usize] += packing.clusters()[i].resources();
            }
        }
        assert!(usage.iter().all(|u| u.fits_within(&cap)));
    }

    #[test]
    fn refinement_is_a_no_op_on_an_optimal_partition() {
        let mut spec = AppSpec::new("chain");
        let a = spec.add_operator("a", Operator::Pipeline { slices: 30 });
        let b = spec.add_operator("b", Operator::Pipeline { slices: 30 });
        spec.add_edge(a, b, 4).unwrap();
        let netlist = synthesize(&spec).unwrap();
        let dfg = DataflowGraph::from_netlist(&netlist);
        let packing = pack(
            &netlist,
            &dfg,
            &PackingConfig {
                max_primitives: 30,
                ..PackingConfig::default()
            },
        );
        let graph = ClusterGraph::from_packing(&dfg, &packing);
        let total = netlist.resource_usage();
        // Tight capacity: each community fills its own slot; no move fits.
        let grid = VirtualGrid::uniform(2, total.scale(0.55));
        // Put each operator's clusters in their own slot (already optimal).
        let mut assignment: Vec<Option<u32>> = (0..packing.cluster_count())
            .map(|i| {
                let c = &packing.clusters()[i];
                if c.is_io() {
                    None
                } else {
                    // First half of primitives belong to operator a.
                    let first = c.members()[0].index();
                    Some(if first < netlist.primitive_count() / 2 {
                        0
                    } else {
                        1
                    })
                }
            })
            .collect();
        let moves = refine_cut(packing.clusters(), &graph, &grid, &mut assignment, 2);
        assert_eq!(moves, 0);
    }
}
