//! Quadratic global placement (paper §4.2, Eq. 1–2 and Eq. 4).

use crate::{ClusterGraph, SparseSystem};

/// Continuous cluster positions produced by one quadratic solve.
#[derive(Debug, Clone)]
pub(crate) struct QuadraticPlacement {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
}

/// Relative weight used to pin I/O pad clusters to their boundary position.
const PAD_WEIGHT: f64 = 1.0e6;
/// Weak pull toward the region centre that keeps the system non-singular
/// when a connected component contains no pad and no pseudo anchor.
const CENTER_REGULARIZATION: f64 = 1.0e-6;

/// Solves the two linear systems of Eq. 2 (x and y decouple).
///
/// `pads` are fixed positions for I/O clusters (the boundary pads of
/// step 1); `anchors` are the pseudo clusters of Eq. 4 with weight `beta`
/// (`None` on the first iteration).
pub(crate) fn solve_quadratic(
    graph: &ClusterGraph,
    pads: &[(usize, f64, f64)],
    anchors: Option<(&[(f64, f64)], f64)>,
    center: (f64, f64),
    warm_start: Option<&QuadraticPlacement>,
) -> QuadraticPlacement {
    let n = graph.node_count();
    let mut sys_x = SparseSystem::new(n);
    let mut sys_y = SparseSystem::new(n);

    for (a, b, w) in graph.edges() {
        let w = w as f64;
        sys_x.add_coupling(a.index(), b.index(), w);
        sys_y.add_coupling(a.index(), b.index(), w);
    }
    for &(i, px, py) in pads {
        sys_x.add_anchor(i, PAD_WEIGHT, px);
        sys_y.add_anchor(i, PAD_WEIGHT, py);
    }
    if let Some((positions, beta)) = anchors {
        debug_assert_eq!(positions.len(), n);
        for (i, &(ax, ay)) in positions.iter().enumerate() {
            sys_x.add_anchor(i, beta, ax);
            sys_y.add_anchor(i, beta, ay);
        }
    }
    for i in 0..n {
        sys_x.add_anchor(i, CENTER_REGULARIZATION, center.0);
        sys_y.add_anchor(i, CENTER_REGULARIZATION, center.1);
    }

    // Warm start: the previous solution, or the region centre. Starting at
    // the centre makes the weakly-regularized pure-Laplacian case (no pads,
    // no anchors) already exact, which CG would otherwise converge to slowly.
    let cx = vec![center.0; n];
    let cy = vec![center.1; n];
    let x0 = warm_start.map(|w| w.x.as_slice()).unwrap_or(&cx);
    let y0 = warm_start.map(|w| w.y.as_slice()).unwrap_or(&cy);
    let sx = sys_x.solve(x0, 1e-6, 2 * n.max(64));
    let sy = sys_y.solve(y0, 1e-6, 2 * n.max(64));
    QuadraticPlacement { x: sx.x, y: sy.x }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack, PackingConfig};
    use vital_netlist::hls::{synthesize, AppSpec, Operator};
    use vital_netlist::DataflowGraph;

    fn chain_graph() -> (ClusterGraph, crate::Packing) {
        let mut spec = AppSpec::new("t");
        let mut prev = None;
        for i in 0..6 {
            let op = spec.add_operator(format!("op{i}"), Operator::Pipeline { slices: 16 });
            if let Some(p) = prev {
                spec.add_edge(p, op, 32).unwrap();
            }
            prev = Some(op);
        }
        let n = synthesize(&spec).unwrap();
        let dfg = DataflowGraph::from_netlist(&n);
        let p = pack(
            &n,
            &dfg,
            &PackingConfig {
                max_primitives: 16,
                ..PackingConfig::default()
            },
        );
        (ClusterGraph::from_packing(&dfg, &p), p)
    }

    #[test]
    fn pads_stretch_the_chain() {
        let (g, _) = chain_graph();
        let n = g.node_count();
        // Pin the first and last clusters far apart.
        let pads = vec![(0, 0.0, 0.0), (n - 1, 10.0, 0.0)];
        let qp = solve_quadratic(&g, &pads, None, (5.0, 0.0), None);
        assert!((qp.x[0]).abs() < 0.1);
        assert!((qp.x[n - 1] - 10.0).abs() < 0.1);
        // Everything finite.
        assert!(qp.x.iter().chain(qp.y.iter()).all(|v| v.is_finite()));
    }

    #[test]
    fn no_pads_collapses_to_center() {
        let (g, _) = chain_graph();
        let qp = solve_quadratic(&g, &[], None, (3.0, 7.0), None);
        for (&x, &y) in qp.x.iter().zip(&qp.y) {
            assert!((x - 3.0).abs() < 1e-3);
            assert!((y - 7.0).abs() < 1e-3);
        }
    }

    #[test]
    fn anchors_pull_toward_legalized_positions() {
        let (g, _) = chain_graph();
        let n = g.node_count();
        let targets: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 1.0)).collect();
        // With the anchor weight well above the coupling weights, the
        // solution must sit near the anchor positions.
        let qp = solve_quadratic(&g, &[], Some((&targets, 1.0e4)), (0.0, 0.0), None);
        for (i, &(tx, ty)) in targets.iter().enumerate() {
            assert!((qp.x[i] - tx).abs() < 0.5, "x[{i}]={} vs {tx}", qp.x[i]);
            assert!((qp.y[i] - ty).abs() < 0.5);
        }
    }
}
