//! The full §4 pipeline: packing → quadratic placement → legalization →
//! pseudo-cluster anchoring, iterated to convergence.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vital_fabric::Resources;
use vital_netlist::{DataflowGraph, Netlist, PortDirection, PrimitiveId, PrimitiveKind};

use crate::legalize::Legalizer;
use crate::quadratic::{solve_quadratic, QuadraticPlacement};
use crate::{pack, ClusterGraph, Packing, PackingConfig, PlacerError, SaConfig};

/// The pre-defined 2D space of virtual-block slots the application is placed
/// onto (paper §4.2: each virtual block is assigned a position and an aspect
/// ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualGrid {
    cols: usize,
    rows: usize,
    capacity: Resources,
}

impl VirtualGrid {
    /// A near-square grid of `n_blocks` slots, each with `capacity`
    /// effective resources.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` is zero.
    pub fn uniform(n_blocks: usize, capacity: Resources) -> Self {
        assert!(n_blocks > 0, "grid needs at least one slot");
        let cols = (n_blocks as f64).sqrt().ceil() as usize;
        let rows = n_blocks.div_ceil(cols);
        VirtualGrid {
            cols,
            rows,
            capacity,
        }
    }

    /// A 1 x n linear arrangement.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` is zero.
    pub fn linear(n_blocks: usize, capacity: Resources) -> Self {
        assert!(n_blocks > 0, "grid needs at least one slot");
        VirtualGrid {
            cols: n_blocks,
            rows: 1,
            capacity,
        }
    }

    /// Number of slots. Note this may slightly exceed the requested block
    /// count for non-rectangular `n`; unused slots simply stay empty.
    pub fn slot_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Effective per-slot capacity.
    pub fn capacity(&self) -> Resources {
        self.capacity
    }

    /// Grid width in slots.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height in slots.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Centre position of slot `i` (unit spacing, x-major order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: usize) -> (f64, f64) {
        assert!(i < self.slot_count(), "slot {i} out of range");
        ((i % self.cols) as f64, (i / self.cols) as f64)
    }

    /// The centre of the whole grid.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.cols as f64 - 1.0) / 2.0,
            (self.rows as f64 - 1.0) / 2.0,
        )
    }
}

/// Configuration of the full placement/partition pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// RNG seed; the pipeline is deterministic for a fixed seed.
    pub seed: u64,
    /// Packing parameters (§4.1).
    pub packing: PackingConfig,
    /// Aspect-ratio weight `α` of Eq. 1/Eq. 3.
    pub alpha: f64,
    /// Annealing schedule of the legalization step.
    pub sa: SaConfig,
    /// Initial pseudo-cluster anchor weight `β` (Eq. 4).
    pub beta0: f64,
    /// Multiplicative growth of `β` per iteration ("slowly increased").
    pub beta_growth: f64,
    /// Termination threshold on the wirelength gap between the solved and
    /// legalized placements (paper: 20 %).
    pub gap_tolerance: f64,
    /// Hard cap on anchoring iterations.
    pub max_iterations: usize,
    /// FM-style cut-refinement sweeps applied to the final assignment
    /// (the partition step's explicit objective is minimizing inter-block
    /// connections, §3.3); 0 disables.
    pub cut_refine_passes: usize,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            seed: 0x71741,
            packing: PackingConfig::default(),
            alpha: 1.0,
            sa: SaConfig::default(),
            beta0: 0.05,
            beta_growth: 3.0,
            gap_tolerance: 0.20,
            max_iterations: 5,
            cut_refine_passes: 2,
        }
    }
}

/// The §4 placement/partition engine.
#[derive(Debug, Clone, Default)]
pub struct Placer {
    config: PlacerConfig,
}

impl Placer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        Placer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Runs the full pipeline on `netlist` over `grid`.
    ///
    /// # Errors
    ///
    /// * [`PlacerError::EmptyNetlist`] if the netlist has no primitives.
    /// * [`PlacerError::CapacityExceeded`] if the netlist cannot fit in the
    ///   grid even at 100 % utilization.
    pub fn run(&self, netlist: &Netlist, grid: &VirtualGrid) -> Result<Placement, PlacerError> {
        if netlist.primitive_count() == 0 {
            return Err(PlacerError::EmptyNetlist);
        }
        let usage = netlist.resource_usage();
        let total_cap = grid.capacity() * grid.slot_count() as u64;
        if !usage.fits_within(&total_cap) {
            return Err(PlacerError::CapacityExceeded {
                required: usage,
                available: total_cap,
            });
        }

        let dfg = DataflowGraph::from_netlist(netlist);
        let packing = pack(netlist, &dfg, &self.config.packing);
        let graph = ClusterGraph::from_packing(&dfg, &packing);
        let pads = io_pads(netlist, &packing, grid);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Step 1: unconstrained quadratic solve.
        let mut qp = solve_quadratic(&graph, &pads, None, grid.center(), None);
        apply_pad_positions(&mut qp, &pads);

        let mut beta = self.config.beta0;
        let mut iterations = 0usize;
        let mut gap = f64::INFINITY;
        let mut assignment: Vec<Option<u32>> = Vec::new();
        while iterations < self.config.max_iterations {
            iterations += 1;
            // Step 2: legalize the continuous placement.
            let start: Vec<(f64, f64)> = qp.x.iter().zip(&qp.y).map(|(&x, &y)| (x, y)).collect();
            let legalizer =
                Legalizer::new(packing.clusters(), &graph, grid, &start, self.config.alpha);
            assignment = legalizer.run(&self.config.sa, &mut rng);
            let legal_positions = positions_of(&assignment, &start, grid);
            let l_legal = linear_wirelength(&graph, &legal_positions, self.config.alpha);

            // Step 3: re-solve with pseudo-cluster anchors at the legalized
            // positions.
            qp = solve_quadratic(
                &graph,
                &pads,
                Some((&legal_positions, beta)),
                grid.center(),
                Some(&qp),
            );
            apply_pad_positions(&mut qp, &pads);
            let solved_positions: Vec<(f64, f64)> =
                qp.x.iter().zip(&qp.y).map(|(&x, &y)| (x, y)).collect();
            let l_solved = linear_wirelength(&graph, &solved_positions, self.config.alpha);

            // Step 4: terminate when the two lengths agree within tolerance.
            gap = (l_legal - l_solved).abs() / l_solved.max(1e-9);
            if gap < self.config.gap_tolerance {
                break;
            }
            beta *= self.config.beta_growth;
        }

        // Cut-driven FM refinement on the final assignment.
        if self.config.cut_refine_passes > 0 {
            crate::cut_refine::refine_cut(
                packing.clusters(),
                &graph,
                grid,
                &mut assignment,
                self.config.cut_refine_passes,
            );
        }

        let final_positions = positions_of(
            &assignment,
            &qp.x
                .iter()
                .zip(&qp.y)
                .map(|(&x, &y)| (x, y))
                .collect::<Vec<_>>(),
            grid,
        );
        let legal = check_legal(&assignment, packing.clusters(), grid);
        Ok(Placement {
            packing,
            graph,
            grid: grid.clone(),
            assignment,
            positions: final_positions,
            legal,
            iterations,
            final_gap: gap,
            alpha: self.config.alpha,
        })
    }
}

/// Boundary pad positions for I/O clusters: inputs spread along the left
/// edge, outputs along the right edge.
fn io_pads(netlist: &Netlist, packing: &Packing, grid: &VirtualGrid) -> Vec<(usize, f64, f64)> {
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for c in packing.clusters().iter().filter(|c| c.is_io()) {
        let prim = netlist
            .primitive(c.members()[0])
            .expect("I/O cluster members come from this netlist");
        match prim.kind() {
            PrimitiveKind::Io {
                direction: PortDirection::Input,
            } => inputs.push(c.id().index()),
            _ => outputs.push(c.id().index()),
        }
    }
    let height = grid.rows() as f64;
    let spread = |ids: &[usize], x: f64| -> Vec<(usize, f64, f64)> {
        let n = ids.len().max(1) as f64;
        ids.iter()
            .enumerate()
            .map(|(k, &i)| (i, x, height * (k as f64 + 0.5) / n - 0.5))
            .collect()
    };
    let mut pads = spread(&inputs, -1.0);
    pads.extend(spread(&outputs, grid.cols() as f64));
    pads
}

fn apply_pad_positions(qp: &mut QuadraticPlacement, pads: &[(usize, f64, f64)]) {
    for &(i, x, y) in pads {
        qp.x[i] = x;
        qp.y[i] = y;
    }
}

/// Discrete positions: slot centre for assigned clusters, continuous
/// position for pads.
fn positions_of(
    assignment: &[Option<u32>],
    fallback: &[(f64, f64)],
    grid: &VirtualGrid,
) -> Vec<(f64, f64)> {
    assignment
        .iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(s) => grid.position(*s as usize),
            None => fallback[i],
        })
        .collect()
}

/// Total linear (half-perimeter-style) wirelength over cluster edges.
fn linear_wirelength(graph: &ClusterGraph, positions: &[(f64, f64)], alpha: f64) -> f64 {
    graph
        .edges()
        .map(|(a, b, w)| {
            let (xa, ya) = positions[a.index()];
            let (xb, yb) = positions[b.index()];
            w as f64 * (alpha * (xa - xb).abs() + (ya - yb).abs())
        })
        .sum()
}

fn check_legal(
    assignment: &[Option<u32>],
    clusters: &[crate::Cluster],
    grid: &VirtualGrid,
) -> bool {
    let mut usage = vec![Resources::ZERO; grid.slot_count()];
    for (i, slot) in assignment.iter().enumerate() {
        if let Some(s) = slot {
            usage[*s as usize] += clusters[i].resources();
        }
    }
    let cap = grid.capacity();
    usage.iter().all(|u| u.fits_within(&cap))
}

/// The final output of the §4 pipeline: every packed cluster assigned to a
/// virtual-block slot.
#[derive(Debug, Clone)]
pub struct Placement {
    packing: Packing,
    graph: ClusterGraph,
    grid: VirtualGrid,
    assignment: Vec<Option<u32>>,
    positions: Vec<(f64, f64)>,
    legal: bool,
    iterations: usize,
    final_gap: f64,
    alpha: f64,
}

impl Placement {
    /// The packing used by this placement.
    pub fn packing(&self) -> &Packing {
        &self.packing
    }

    /// The cluster-level connectivity graph.
    pub fn graph(&self) -> &ClusterGraph {
        &self.graph
    }

    /// The virtual-block grid.
    pub fn grid(&self) -> &VirtualGrid {
        &self.grid
    }

    /// Cluster-to-slot assignment (`None` for I/O pad clusters).
    pub fn assignment(&self) -> &[Option<u32>] {
        &self.assignment
    }

    /// The virtual-block slot of primitive `p` (`None` if `p` is an I/O
    /// port or out of range).
    pub fn block_of(&self, p: PrimitiveId) -> Option<u32> {
        self.assignment
            .get(self.packing.cluster_of(p).index())
            .copied()
            .flatten()
    }

    /// Final (discrete) cluster positions.
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// `true` if no virtual block is over-utilized.
    pub fn is_legal(&self) -> bool {
        self.legal
    }

    /// Anchoring iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final wirelength gap between solved and legalized placements.
    pub fn final_gap(&self) -> f64 {
        self.final_gap
    }

    /// The aspect-ratio weight used.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Per-slot resource usage.
    pub fn slot_usage(&self) -> Vec<Resources> {
        let mut usage = vec![Resources::ZERO; self.grid.slot_count()];
        for (i, slot) in self.assignment.iter().enumerate() {
            if let Some(s) = slot {
                usage[*s as usize] += self.packing.clusters()[i].resources();
            }
        }
        usage
    }

    /// Number of slots actually holding logic.
    pub fn blocks_used(&self) -> usize {
        self.slot_usage().iter().filter(|u| !u.is_zero()).count()
    }
}

/// A *naive* partition used as the ablation baseline for the paper's §5.4
/// claim (placement-based partitioning reduces inter-block bandwidth ~2.1×):
/// same packing, but clusters are shuffled and first-fit assigned to slots
/// with no regard for connectivity.
///
/// # Errors
///
/// * [`PlacerError::EmptyNetlist`] if the netlist has no primitives.
/// * [`PlacerError::CapacityExceeded`] if the netlist cannot fit in the grid.
pub fn random_assignment(
    netlist: &Netlist,
    grid: &VirtualGrid,
    seed: u64,
) -> Result<Placement, PlacerError> {
    if netlist.primitive_count() == 0 {
        return Err(PlacerError::EmptyNetlist);
    }
    let usage = netlist.resource_usage();
    let total_cap = grid.capacity() * grid.slot_count() as u64;
    if !usage.fits_within(&total_cap) {
        return Err(PlacerError::CapacityExceeded {
            required: usage,
            available: total_cap,
        });
    }
    let dfg = DataflowGraph::from_netlist(netlist);
    let packing = pack(netlist, &dfg, &PackingConfig::default());
    let graph = ClusterGraph::from_packing(&dfg, &packing);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..packing.cluster_count())
        .filter(|&i| !packing.clusters()[i].is_io())
        .collect();
    order.shuffle(&mut rng);

    let cap = grid.capacity();
    let mut slot_usage = vec![Resources::ZERO; grid.slot_count()];
    let mut assignment: Vec<Option<u32>> = vec![None; packing.cluster_count()];
    for i in order {
        let need = packing.clusters()[i].resources();
        let slot = (0..grid.slot_count())
            .find(|&s| (slot_usage[s] + need).fits_within(&cap))
            .or_else(|| {
                (0..grid.slot_count()).min_by(|&a, &b| {
                    let ua = slot_usage[a].utilization_of(&cap).bottleneck();
                    let ub = slot_usage[b].utilization_of(&cap).bottleneck();
                    ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
                })
            })
            .expect("grid has at least one slot");
        slot_usage[slot] += need;
        assignment[i] = Some(slot as u32);
    }
    let positions = assignment
        .iter()
        .map(|s| match s {
            Some(s) => grid.position(*s as usize),
            None => (0.0, 0.0),
        })
        .collect();
    let legal = check_legal(&assignment, packing.clusters(), grid);
    Ok(Placement {
        packing,
        graph,
        grid: grid.clone(),
        assignment,
        positions,
        legal,
        iterations: 0,
        final_gap: f64::NAN,
        alpha: 1.0,
    })
}
