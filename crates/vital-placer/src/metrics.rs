//! Quality metrics of a partition: inter-block bandwidth and wirelength.

use vital_fabric::Resources;

use crate::Placement;

/// Quality summary of a placement-based partition, used for the paper's
/// §5.4 evaluation (the partition algorithm reduces the required inter-block
/// bandwidth by ~2.1× versus a naive partition).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Total bits crossing virtual-block boundaries.
    pub cut_bits: u64,
    /// The worst per-block boundary traffic (the bandwidth the
    /// latency-insensitive interface of that block must sustain).
    pub max_block_cut_bits: u64,
    /// Number of virtual blocks actually used.
    pub blocks_used: usize,
    /// Bottleneck utilization of the fullest block.
    pub peak_utilization: f64,
    /// Total linear wirelength of the final placement.
    pub wirelength: f64,
}

/// Total bits crossing virtual-block boundaries (edges touching I/O pads are
/// external traffic, not inter-block traffic, and are excluded).
pub fn cut_bits(placement: &Placement) -> u64 {
    placement
        .graph()
        .edges()
        .filter_map(|(a, b, w)| {
            let sa = placement.assignment()[a.index()]?;
            let sb = placement.assignment()[b.index()]?;
            (sa != sb).then_some(w)
        })
        .sum()
}

/// Total linear wirelength of the final (discrete) placement.
pub fn wirelength(placement: &Placement) -> f64 {
    let positions = placement.positions();
    let alpha = placement.alpha();
    placement
        .graph()
        .edges()
        .map(|(a, b, w)| {
            let (xa, ya) = positions[a.index()];
            let (xb, yb) = positions[b.index()];
            w as f64 * (alpha * (xa - xb).abs() + (ya - yb).abs())
        })
        .sum()
}

impl PartitionQuality {
    /// Computes the quality summary of a placement.
    pub fn of(placement: &Placement) -> Self {
        let mut per_block = vec![0u64; placement.grid().slot_count()];
        let mut total = 0u64;
        for (a, b, w) in placement.graph().edges() {
            let (Some(sa), Some(sb)) = (
                placement.assignment()[a.index()],
                placement.assignment()[b.index()],
            ) else {
                continue;
            };
            if sa != sb {
                total += w;
                per_block[sa as usize] += w;
                per_block[sb as usize] += w;
            }
        }
        let cap = placement.grid().capacity();
        let peak = placement
            .slot_usage()
            .iter()
            .map(|u: &Resources| u.utilization_of(&cap).bottleneck())
            .fold(0.0, f64::max);
        PartitionQuality {
            cut_bits: total,
            max_block_cut_bits: per_block.into_iter().max().unwrap_or(0),
            blocks_used: placement.blocks_used(),
            peak_utilization: peak,
            wirelength: wirelength(placement),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_assignment, Placer, PlacerConfig, VirtualGrid};
    use vital_netlist::hls::{synthesize, AppSpec, Operator};

    fn pipeline_app(stages: u32) -> vital_netlist::Netlist {
        let mut spec = AppSpec::new("pipe");
        let mut prev = None;
        for i in 0..stages {
            let op = spec.add_operator(format!("s{i}"), Operator::Pipeline { slices: 50 });
            if let Some(p) = prev {
                spec.add_edge(p, op, 64).unwrap();
            }
            prev = Some(op);
        }
        synthesize(&spec).unwrap()
    }

    #[test]
    fn placement_beats_random_on_cut_bits() {
        let netlist = pipeline_app(8);
        // Two blocks, each able to hold half the design with slack.
        let total = netlist.resource_usage();
        let grid = VirtualGrid::uniform(2, total.scale(0.7));
        let placed = Placer::new(PlacerConfig::default())
            .run(&netlist, &grid)
            .unwrap();
        let random = random_assignment(&netlist, &grid, 3).unwrap();
        let placed_cut = cut_bits(&placed);
        let random_cut = cut_bits(&random);
        assert!(
            placed_cut <= random_cut,
            "placement-based cut {placed_cut} should not exceed random cut {random_cut}"
        );
    }

    #[test]
    fn quality_summary_is_consistent() {
        let netlist = pipeline_app(6);
        let total = netlist.resource_usage();
        let grid = VirtualGrid::uniform(3, total.scale(0.5));
        let placed = Placer::new(PlacerConfig::default())
            .run(&netlist, &grid)
            .unwrap();
        let q = PartitionQuality::of(&placed);
        assert_eq!(q.cut_bits, cut_bits(&placed));
        assert!(q.max_block_cut_bits <= q.cut_bits * 2);
        assert!(q.blocks_used >= 2);
        assert!(q.peak_utilization <= 1.0 + 1e-9 || !placed.is_legal());
        assert!(q.wirelength.is_finite());
    }

    #[test]
    fn single_block_has_zero_cut() {
        let netlist = pipeline_app(3);
        let total = netlist.resource_usage();
        let grid = VirtualGrid::uniform(1, total);
        let placed = Placer::new(PlacerConfig::default())
            .run(&netlist, &grid)
            .unwrap();
        assert_eq!(cut_bits(&placed), 0);
    }
}
