//! Sparse symmetric-positive-definite linear solver.
//!
//! The quadratic placement of §4.2 reduces to solving `A x = b` where `A` is
//! the (anchored) graph Laplacian of the cluster netlist. The paper uses the
//! Eigen C++ library; this reproduction implements a Jacobi-preconditioned
//! conjugate-gradient solver from scratch, which is the standard choice for
//! these systems and keeps the repository dependency-free.

/// A sparse symmetric linear system built incrementally from Laplacian
/// stencils and diagonal anchors.
///
/// # Example
///
/// ```
/// use vital_placer::SparseSystem;
///
/// // Two nodes coupled with weight 1, node 0 anchored to position 3.0.
/// let mut sys = SparseSystem::new(2);
/// sys.add_coupling(0, 1, 1.0);
/// sys.add_anchor(0, 10.0, 3.0);
/// let sol = sys.solve(&[0.0, 0.0], 1e-9, 1000);
/// assert!((sol.x[0] - 3.0).abs() < 1e-3);
/// assert!((sol.x[1] - 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct SparseSystem {
    n: usize,
    diag: Vec<f64>,
    /// Off-diagonal entries per row: `(col, value)`.
    off: Vec<Vec<(u32, f64)>>,
    rhs: Vec<f64>,
}

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm.
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

impl SparseSystem {
    /// Creates an empty `n x n` system with zero right-hand side.
    pub fn new(n: usize) -> Self {
        SparseSystem {
            n,
            diag: vec![0.0; n],
            off: vec![Vec::new(); n],
            rhs: vec![0.0; n],
        }
    }

    /// Number of unknowns.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the system has no unknowns.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a quadratic coupling `w (x_i - x_j)^2`: the Laplacian stencil
    /// `+w` on both diagonals and `-w` off-diagonal.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn add_coupling(&mut self, i: usize, j: usize, w: f64) {
        assert!(i != j, "coupling requires distinct nodes");
        assert!(i < self.n && j < self.n, "node index out of range");
        self.diag[i] += w;
        self.diag[j] += w;
        self.off[i].push((j as u32, -w));
        self.off[j].push((i as u32, -w));
    }

    /// Adds an anchor term `w (x_i - p)^2`: `+w` on the diagonal and `w * p`
    /// on the right-hand side. This is how fixed I/O pads (step 1) and
    /// pseudo clusters (Eq. 4) enter the system.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_anchor(&mut self, i: usize, w: f64, p: f64) {
        assert!(i < self.n, "node index out of range");
        self.diag[i] += w;
        self.rhs[i] += w * p;
    }

    /// Adds `v` to the right-hand side of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_rhs(&mut self, i: usize, v: f64) {
        assert!(i < self.n, "node index out of range");
        self.rhs[i] += v;
    }

    fn mat_vec(&self, x: &[f64], out: &mut [f64]) {
        for i in 0..self.n {
            let mut acc = self.diag[i] * x[i];
            for &(j, v) in &self.off[i] {
                acc += v * x[j as usize];
            }
            out[i] = acc;
        }
    }

    /// Solves the system with Jacobi-preconditioned conjugate gradient,
    /// starting from `x0`.
    ///
    /// Rows with a zero diagonal (completely unconstrained nodes) are given
    /// a tiny regularization so the iteration stays well-defined.
    pub fn solve(&self, x0: &[f64], tol: f64, max_iter: usize) -> CgSolution {
        assert_eq!(x0.len(), self.n, "initial guess has wrong length");
        if self.n == 0 {
            return CgSolution {
                x: Vec::new(),
                iterations: 0,
                residual: 0.0,
                converged: true,
            };
        }
        let eps = 1e-12;
        let inv_diag: Vec<f64> = self
            .diag
            .iter()
            .map(|&d| 1.0 / if d.abs() < eps { eps } else { d })
            .collect();

        let mut x = x0.to_vec();
        let mut ax = vec![0.0; self.n];
        self.mat_vec(&x, &mut ax);
        let mut r: Vec<f64> = self.rhs.iter().zip(&ax).map(|(b, a)| b - a).collect();
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let rhs_norm = self.rhs.iter().map(|v| v * v).sum::<f64>().sqrt().max(eps);

        let mut iterations = 0;
        let mut ap = vec![0.0; self.n];
        while iterations < max_iter {
            let res_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if res_norm <= tol * rhs_norm {
                return CgSolution {
                    x,
                    iterations,
                    residual: res_norm,
                    converged: true,
                };
            }
            self.mat_vec(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap.abs() < eps {
                break;
            }
            let alpha = rz / pap;
            for i in 0..self.n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..self.n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..self.n {
                p[i] = z[i] + beta * p[i];
            }
            iterations += 1;
        }
        let residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        let converged = residual <= tol * rhs_norm;
        CgSolution {
            x,
            iterations,
            residual,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_chain_with_two_anchors() {
        // 0 -- 1 -- 2 -- 3 -- 4, anchors at ends (0 -> 0.0, 4 -> 4.0).
        // Solution is the linear interpolation 0,1,2,3,4.
        let mut sys = SparseSystem::new(5);
        for i in 0..4 {
            sys.add_coupling(i, i + 1, 1.0);
        }
        sys.add_anchor(0, 1e6, 0.0);
        sys.add_anchor(4, 1e6, 4.0);
        let sol = sys.solve(&[0.0; 5], 1e-10, 10_000);
        assert!(sol.converged);
        for (i, &xi) in sol.x.iter().enumerate() {
            assert!((xi - i as f64).abs() < 1e-3, "x[{i}] = {xi}");
        }
    }

    #[test]
    fn weighted_coupling_pulls_harder() {
        // Node 1 between anchors 0 (at 0) and 2 (at 10); the 0-1 coupling is
        // 9x stronger, so node 1 sits at 1.0.
        let mut sys = SparseSystem::new(3);
        sys.add_coupling(0, 1, 9.0);
        sys.add_coupling(1, 2, 1.0);
        sys.add_anchor(0, 1e9, 0.0);
        sys.add_anchor(2, 1e9, 10.0);
        let sol = sys.solve(&[0.0; 3], 1e-12, 10_000);
        assert!((sol.x[1] - 1.0).abs() < 1e-4, "x[1] = {}", sol.x[1]);
    }

    #[test]
    fn empty_system() {
        let sys = SparseSystem::new(0);
        let sol = sys.solve(&[], 1e-9, 10);
        assert!(sol.converged);
        assert!(sol.x.is_empty());
    }

    #[test]
    fn unconstrained_node_does_not_nan() {
        let sys = SparseSystem::new(2);
        let sol = sys.solve(&[0.5, -0.5], 1e-9, 100);
        assert!(sol.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn respects_initial_guess_when_already_solved() {
        let mut sys = SparseSystem::new(2);
        sys.add_coupling(0, 1, 1.0);
        sys.add_anchor(0, 1.0, 2.0);
        sys.add_anchor(1, 1.0, 2.0);
        let sol = sys.solve(&[2.0, 2.0], 1e-9, 100);
        assert_eq!(sol.iterations, 0);
        assert!(sol.converged);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_coupling_panics() {
        let mut sys = SparseSystem::new(2);
        sys.add_coupling(1, 1, 1.0);
    }
}
