//! Trace exporters: JSON Lines and Chrome `trace_event` JSON.
//!
//! Both are pure functions of the recorded data — given the same records
//! they produce byte-identical output, which the simulator-determinism
//! test relies on.

use serde::{Serialize, Value};

use crate::metrics::MetricsSnapshot;
use crate::{FieldValue, RecordKind, TraceRecord};

/// Local wrapper so a hand-built [`Value`] tree can be fed to
/// `serde_json::to_string` (the compat `Value` itself has no `Serialize`
/// impl, and the orphan rule forbids adding one here).
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn render(v: Value) -> String {
    // Non-finite floats are mapped to null before we get here, so the
    // tree is always serializable.
    serde_json::to_string(&Raw(v)).expect("sanitized value tree serializes")
}

fn f64_value(v: f64) -> Value {
    if v.is_finite() {
        Value::F64(v)
    } else {
        Value::Null
    }
}

fn field_value(v: &FieldValue) -> Value {
    match v {
        FieldValue::Bool(b) => Value::Bool(*b),
        FieldValue::U64(n) => Value::U64(*n),
        FieldValue::I64(n) => Value::I64(*n),
        FieldValue::F64(f) => f64_value(*f),
        FieldValue::Str(s) => Value::Str(s.clone()),
    }
}

fn fields_map(fields: &[(&'static str, FieldValue)]) -> Value {
    Value::Map(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), field_value(v)))
            .collect(),
    )
}

/// Renders the trace as JSON Lines: one object per record, then one final
/// `{"metrics": ...}` object. Every line is standalone valid JSON.
pub(crate) fn jsonl(records: &[TraceRecord], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for rec in records {
        let mut entries = vec![
            ("name".to_string(), Value::Str(rec.name.to_string())),
            (
                "kind".to_string(),
                Value::Str(
                    match rec.kind {
                        RecordKind::Span { .. } => "span",
                        RecordKind::Instant => "instant",
                    }
                    .to_string(),
                ),
            ),
            ("start_us".to_string(), Value::U64(rec.start_us)),
        ];
        if let RecordKind::Span { dur_us } = rec.kind {
            entries.push(("dur_us".to_string(), Value::U64(dur_us)));
        }
        entries.push(("track".to_string(), Value::U64(rec.track.into())));
        entries.push(("id".to_string(), Value::U64(rec.id)));
        if let Some(parent) = rec.parent {
            entries.push(("parent".to_string(), Value::U64(parent)));
        }
        if !rec.fields.is_empty() {
            entries.push(("fields".to_string(), fields_map(&rec.fields)));
        }
        out.push_str(&render(Value::Map(entries)));
        out.push('\n');
    }
    out.push_str(&render(Value::Map(vec![(
        "metrics".to_string(),
        metrics_value(metrics),
    )])));
    out.push('\n');
    out
}

fn metrics_value(m: &MetricsSnapshot) -> Value {
    let counters = Value::Map(
        m.counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect(),
    );
    let gauges = Value::Map(
        m.gauges
            .iter()
            .map(|(k, v)| (k.clone(), f64_value(*v)))
            .collect(),
    );
    let histograms = Value::Map(
        m.histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Map(vec![
                        ("count".to_string(), Value::U64(h.count)),
                        ("sum".to_string(), f64_value(h.sum)),
                        ("min".to_string(), f64_value(h.min)),
                        ("max".to_string(), f64_value(h.max)),
                        ("p50".to_string(), f64_value(h.p50)),
                        ("p95".to_string(), f64_value(h.p95)),
                    ]),
                )
            })
            .collect(),
    );
    Value::Map(vec![
        ("counters".to_string(), counters),
        ("gauges".to_string(), gauges),
        ("histograms".to_string(), histograms),
    ])
}

/// Renders the trace in Chrome `trace_event` format: spans become `"X"`
/// (complete) events with `ts`/`dur`, point events become `"i"` (instant)
/// events, and the record track becomes the `tid`. Open the output in
/// `about:tracing` or <https://ui.perfetto.dev>.
pub(crate) fn chrome_trace(records: &[TraceRecord]) -> String {
    let events: Vec<Value> = records
        .iter()
        .map(|rec| {
            let mut entries = vec![
                ("name".to_string(), Value::Str(rec.name.to_string())),
                ("pid".to_string(), Value::U64(1)),
                ("tid".to_string(), Value::U64(rec.track.into())),
                ("ts".to_string(), Value::U64(rec.start_us)),
            ];
            match rec.kind {
                RecordKind::Span { dur_us } => {
                    entries.push(("ph".to_string(), Value::Str("X".to_string())));
                    entries.push(("dur".to_string(), Value::U64(dur_us)));
                }
                RecordKind::Instant => {
                    entries.push(("ph".to_string(), Value::Str("i".to_string())));
                    entries.push(("s".to_string(), Value::Str("t".to_string())));
                }
            }
            if !rec.fields.is_empty() {
                entries.push(("args".to_string(), fields_map(&rec.fields)));
            }
            Value::Map(entries)
        })
        .collect();
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    render(doc)
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn jsonl_lines_are_valid_json() {
        let tel = Telemetry::sim();
        tel.event_at(10, "sim.arrival", &[("app", "dnn".into())]);
        let span = tel.span("op");
        tel.set_now_us(25);
        span.finish();
        tel.inc_counter("arrivals", 1);
        tel.record_hist("resp_s", 0.5);
        let text = tel.export_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"kind\":\"instant\""));
        assert!(lines[0].contains("\"fields\":{\"app\":\"dnn\"}"));
        assert!(lines[1].contains("\"dur_us\":25"));
        assert!(lines[2].contains("\"counters\":{\"arrivals\":1}"));
        assert!(lines[2].contains("\"resp_s\""));
    }

    #[test]
    fn chrome_trace_has_complete_and_instant_events() {
        let tel = Telemetry::sim();
        let mut span = tel.span_on_track("deploy", 3);
        span.field("fpgas_used", 2u64);
        tel.set_now_us(100);
        span.finish();
        tel.event_at(40, "evict", &[]);
        let text = tel.export_chrome_trace();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"dur\":100"));
        assert!(text.contains("\"tid\":3"));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"args\":{\"fpgas_used\":2}"));
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let tel = Telemetry::sim();
            tel.event_at(1, "a", &[("k", 1u64.into())]);
            tel.event_at(2, "b", &[]);
            tel.inc_counter("c", 2);
            (tel.export_jsonl(), tel.export_chrome_trace())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn non_finite_gauge_renders_as_null() {
        let tel = Telemetry::recording();
        tel.set_gauge("bad", f64::NAN);
        let text = tel.export_jsonl();
        assert!(text.contains("\"bad\":null"), "{text}");
    }
}
