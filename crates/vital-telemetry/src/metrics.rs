//! Metrics registry: counters, gauges and base-2 log-scale histograms.
//!
//! All maps are `BTreeMap`s so snapshots and exports enumerate metrics in
//! a deterministic (sorted) order regardless of registration order.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Number of base-2 buckets. With [`BUCKET_OFFSET`] this spans roughly
/// `2^-40` (≈ 1e-12, sub-picosecond) to `2^63`, far beyond any latency or
/// size the stack records.
const BUCKET_COUNT: usize = 104;
/// Bucket index of value `1.0`; values below `2^-40` land in bucket 0.
const BUCKET_OFFSET: i32 = 40;

/// A histogram with exponentially sized (base-2) buckets.
///
/// Recording is O(1); quantiles are estimated by a cumulative walk over the
/// buckets using the geometric midpoint of the matched bucket, clamped to
/// the exact observed min/max. Relative quantile error is bounded by the
/// bucket width (≤ √2×).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        let idx = value.log2().floor() as i32 + BUCKET_OFFSET;
        idx.clamp(0, BUCKET_COUNT as i32 - 1) as usize
    }

    /// Records one observation. Non-finite values are counted in the
    /// underflow bucket but excluded from `sum`/`min`/`max`.
    pub fn record(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                if i == 0 {
                    return self.min.min(self.max).max(0.0);
                }
                let lower = (i as i32 - BUCKET_OFFSET) as f64;
                // Geometric midpoint of [2^lower, 2^(lower+1)].
                let mid = (lower + 0.5).exp2();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// A compact summary (count, sum, min, max, p50, p95).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.min.is_finite() { self.min } else { 0.0 },
            max: if self.max.is_finite() { self.max } else { 0.0 },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
        }
    }
}

/// Point-in-time summary of one [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all finite observations.
    pub sum: f64,
    /// Smallest finite observation (0 if none).
    pub min: f64,
    /// Largest finite observation (0 if none).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
}

/// Point-in-time snapshot of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

pub(crate) struct Registry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    hists: Mutex<BTreeMap<&'static str, LogHistogram>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
        }
    }

    pub(crate) fn inc_counter(&self, name: &'static str, by: u64) {
        *self.counters.lock().entry(name).or_insert(0) += by;
    }

    pub(crate) fn set_gauge(&self, name: &'static str, value: f64) {
        self.gauges.lock().insert(name, value);
    }

    pub(crate) fn record_hist(&self, name: &'static str, value: f64) {
        self.hists.lock().entry(name).or_default().record(value);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: self
                .hists
                .lock()
                .iter()
                .map(|(k, h)| (k.to_string(), h.summary()))
                .collect(),
        }
    }

    pub(crate) fn clear(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.hists.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // uniform on (0, 1]
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        // Log-scale buckets give coarse estimates; within a 2x band.
        assert!((0.25..=1.0).contains(&p50), "p50 {p50}");
        assert!((0.5..=1.0).contains(&p95), "p95 {p95}");
        assert!(p50 <= p95);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn single_value_is_exact() {
        let mut h = LogHistogram::new();
        h.record(0.0123);
        let s = h.summary();
        assert_eq!(s.p50, 0.0123);
        assert_eq!(s.p95, 0.0123);
        assert_eq!(s.min, 0.0123);
        assert_eq!(s.max, 0.0123);
    }

    #[test]
    fn zero_and_nonfinite_values_do_not_poison() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(f64::NAN);
        h.record(2.0);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.0); // zero is finite and tracked; NaN is not
        assert_eq!(s.max, 2.0);
        assert!(s.sum == 2.0);
        assert!(s.p50.is_finite());
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = LogHistogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.min, 0.0);
    }

    #[test]
    fn extreme_magnitudes_stay_in_range() {
        let mut h = LogHistogram::new();
        h.record(1e-15); // below bucket floor -> underflow bucket
        h.record(1e18);
        assert!(h.quantile(0.0) >= 0.0);
        assert!(h.quantile(1.0) <= 1e18);
    }
}
