//! Structured telemetry for the ViTAL stack: nestable tracing spans, point
//! events, a metrics registry (counters, gauges, log-scale histograms) and
//! machine-readable exporters.
//!
//! The paper's evaluation (§5, Figs. 8–10) is built on being able to
//! *measure* every layer — per-stage compile times, allocation decisions,
//! response-time distributions, failure goodput. This crate is the one
//! instrumentation substrate all layers share:
//!
//! * the **compiler** emits one span per stage and per virtual block,
//! * the **system controller** emits spans for `deploy` / `undeploy` /
//!   `fail_fpga` / `evacuate` / `defragment` with allocation-round,
//!   fpgas-used and ring-hop-cost fields,
//! * the **cluster simulator** emits a sim-time event timeline (arrivals,
//!   placements, evictions, requeues, completions) that makes every Fig. 9
//!   run replayable as a trace.
//!
//! Two exporters are provided: JSONL (one record per line, trivially
//! greppable) and Chrome `trace_event` JSON, viewable in `about:tracing`
//! or [Perfetto](https://ui.perfetto.dev).
//!
//! # Zero cost when disabled
//!
//! A [`Telemetry`] handle is either *live* (backed by shared state) or
//! *disabled* (`Telemetry::disabled()`, also the `Default`). Disabled
//! handles hold no allocation and every operation is a single branch on an
//! `Option` — the `telemetry_overhead` Criterion bench in `vital-bench`
//! verifies the disabled path costs ≤ 1 % on a full compile.
//!
//! # Deterministic in sim time
//!
//! A handle created with [`Telemetry::sim`] uses a *manual* clock: time
//! only moves when the owner calls [`Telemetry::set_now_us`] or records
//! with an explicit timestamp ([`Telemetry::event_at`]). The sim path
//! never reads the wall clock, so the exported trace is a pure function of
//! the simulation inputs (verified by the `sim_determinism` integration
//! test).
//!
//! # Example
//!
//! ```
//! use vital_telemetry::Telemetry;
//!
//! let tel = Telemetry::recording();
//! {
//!     let mut span = tel.span("compile.partition");
//!     span.field("blocks", 4u64);
//!     let _child = span.child("compile.partition.refine");
//! } // spans record themselves on drop
//! tel.inc_counter("compiles", 1);
//! tel.record_hist("partition_s", 0.012);
//! assert_eq!(tel.records().len(), 2);
//! let jsonl = tel.export_jsonl();
//! assert!(jsonl.lines().count() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

pub use metrics::{HistogramSummary, LogHistogram, MetricsSnapshot};

/// A single typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v.into())
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A key/value field.
pub type Field = (&'static str, FieldValue);

/// What kind of record a [`TraceRecord`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A completed span with a duration.
    Span {
        /// Span duration in microseconds.
        dur_us: u64,
    },
    /// An instantaneous point event.
    Instant,
}

/// One recorded span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Record name (dot-separated taxonomy, e.g. `compile.local_pnr`).
    pub name: &'static str,
    /// Span-vs-event discriminator (and the span duration).
    pub kind: RecordKind,
    /// Start (or occurrence) time in microseconds on the handle's clock.
    pub start_us: u64,
    /// Display track (`tid` in the Chrome trace): 0 unless the emitter
    /// chose a track, e.g. one per parallel P&R worker slot.
    pub track: u32,
    /// Unique id of this record within the handle.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Attached fields, in insertion order.
    pub fields: Vec<Field>,
}

enum Clock {
    Wall(Instant),
    Manual(AtomicU64),
}

struct Inner {
    clock: Clock,
    records: Mutex<Vec<TraceRecord>>,
    metrics: metrics::Registry,
    next_id: AtomicU64,
}

impl Inner {
    fn now_us(&self) -> u64 {
        match &self.clock {
            Clock::Wall(t0) => t0.elapsed().as_micros() as u64,
            Clock::Manual(us) => us.load(Ordering::Relaxed),
        }
    }
}

/// A cheap, clonable telemetry handle shared by every layer of the stack.
///
/// See the [crate-level documentation](crate) for the design.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("records", &inner.records.lock().len())
                .finish(),
        }
    }
}

impl Telemetry {
    /// The no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live handle on the wall clock (timestamps are microseconds since
    /// creation). Use for the compiler and the system controller.
    pub fn recording() -> Self {
        Self::with_clock(Clock::Wall(Instant::now()))
    }

    /// A live handle on a *manual* clock starting at 0 µs. Time only moves
    /// via [`Telemetry::set_now_us`] / explicit-timestamp recording, so
    /// traces are deterministic. Use for the cluster simulator.
    pub fn sim() -> Self {
        Self::with_clock(Clock::Manual(AtomicU64::new(0)))
    }

    fn with_clock(clock: Clock) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock,
                records: Mutex::new(Vec::new()),
                metrics: metrics::Registry::new(),
                next_id: AtomicU64::new(1),
            })),
        }
    }

    /// `true` if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the manual clock (no-op on wall-clock or disabled handles).
    pub fn set_now_us(&self, now_us: u64) {
        if let Some(inner) = &self.inner {
            if let Clock::Manual(us) = &inner.clock {
                us.store(now_us, Ordering::Relaxed);
            }
        }
    }

    /// The handle's current time in microseconds (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map(|i| i.now_us()).unwrap_or(0)
    }

    /// Starts a root span. The span records itself when dropped or
    /// [`finished`](Span::finish).
    pub fn span(&self, name: &'static str) -> Span {
        self.span_on_track(name, 0)
    }

    /// Starts a root span on an explicit display track (Chrome `tid`).
    pub fn span_on_track(&self, name: &'static str, track: u32) -> Span {
        match &self.inner {
            None => Span { state: None },
            Some(inner) => Span {
                state: Some(SpanState {
                    tel: self.clone(),
                    name,
                    start_us: inner.now_us(),
                    track,
                    id: inner.next_id.fetch_add(1, Ordering::Relaxed),
                    parent: None,
                    fields: Vec::new(),
                }),
            },
        }
    }

    /// Records a point event at the current clock reading.
    pub fn event(&self, name: &'static str, fields: &[Field]) {
        if let Some(inner) = &self.inner {
            self.push_event(inner, inner.now_us(), name, fields);
        }
    }

    /// Records a point event at an explicit timestamp — the sim path's
    /// primitive (no clock read at all).
    pub fn event_at(&self, t_us: u64, name: &'static str, fields: &[Field]) {
        if let Some(inner) = &self.inner {
            self.push_event(inner, t_us, name, fields);
        }
    }

    fn push_event(&self, inner: &Inner, t_us: u64, name: &'static str, fields: &[Field]) {
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        inner.records.lock().push(TraceRecord {
            name,
            kind: RecordKind::Instant,
            start_us: t_us,
            track: 0,
            id,
            parent: None,
            fields: fields.to_vec(),
        });
    }

    /// Adds `by` to the named monotonic counter.
    pub fn inc_counter(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.inc_counter(name, by);
        }
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_gauge(name, value);
        }
    }

    /// Records `value` into the named log-scale histogram.
    pub fn record_hist(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.record_hist(name, value);
        }
    }

    /// A snapshot of every counter, gauge and histogram.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => inner.metrics.snapshot(),
        }
    }

    /// A copy of every record so far, in completion order.
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.records.lock().clone(),
        }
    }

    /// Drops all records and metrics collected so far.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.records.lock().clear();
            inner.metrics.clear();
        }
    }

    /// Exports the trace as JSON Lines: one record object per line,
    /// followed by one final `{"metrics": ...}` line. A disabled handle
    /// exports the empty string (it is a no-op sink, not an empty trace).
    pub fn export_jsonl(&self) -> String {
        if self.inner.is_none() {
            return String::new();
        }
        export::jsonl(&self.records(), &self.metrics())
    }

    /// Exports the trace in Chrome `trace_event` JSON (open in
    /// `about:tracing` or <https://ui.perfetto.dev>).
    pub fn export_chrome_trace(&self) -> String {
        export::chrome_trace(&self.records())
    }

    fn finish_span(&self, state: SpanState, end_us: u64) {
        let Some(inner) = &self.inner else { return };
        inner.records.lock().push(TraceRecord {
            name: state.name,
            kind: RecordKind::Span {
                dur_us: end_us.saturating_sub(state.start_us),
            },
            start_us: state.start_us,
            track: state.track,
            id: state.id,
            parent: state.parent,
            fields: state.fields,
        });
    }
}

struct SpanState {
    tel: Telemetry,
    name: &'static str,
    start_us: u64,
    track: u32,
    id: u64,
    parent: Option<u64>,
    fields: Vec<Field>,
}

/// An in-flight span. Records itself (with its measured duration) when
/// dropped or explicitly [`finished`](Span::finish). A span made by a
/// disabled handle is an inert no-op.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Attaches a field. No-op on disabled spans.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(state) = &mut self.state {
            state.fields.push((key, value.into()));
        }
    }

    /// Starts a child span (nested under this one in exported traces).
    pub fn child(&self, name: &'static str) -> Span {
        match &self.state {
            None => Span { state: None },
            Some(state) => {
                let mut child = state.tel.span_on_track(name, state.track);
                if let Some(cs) = &mut child.state {
                    cs.parent = Some(state.id);
                }
                child
            }
        }
    }

    /// Starts a child span on an explicit display track.
    pub fn child_on_track(&self, name: &'static str, track: u32) -> Span {
        match &self.state {
            None => Span { state: None },
            Some(state) => {
                let mut child = state.tel.span_on_track(name, track);
                if let Some(cs) = &mut child.state {
                    cs.parent = Some(state.id);
                }
                child
            }
        }
    }

    /// This span's record id (`None` on disabled spans).
    pub fn id(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.id)
    }

    /// Ends the span now, recording it. Equivalent to dropping it, but
    /// reads as intent at call sites.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if let Some(state) = self.state.take() {
            let end = state
                .tel
                .inner
                .as_ref()
                .map(|i| i.now_us())
                .unwrap_or(state.start_us);
            state.tel.clone().finish_span(state, end);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut span = tel.span("noop");
        span.field("k", 1u64);
        let child = span.child("noop.child");
        child.finish();
        span.finish();
        tel.event("e", &[("x", 2u64.into())]);
        tel.inc_counter("c", 1);
        tel.record_hist("h", 1.0);
        assert!(tel.records().is_empty());
        assert!(tel.metrics().counters.is_empty());
        assert!(
            tel.export_jsonl().is_empty(),
            "no-op sink, not an empty trace"
        );
    }

    #[test]
    fn spans_nest_and_record_in_completion_order() {
        let tel = Telemetry::recording();
        let outer = tel.span("outer");
        let inner = outer.child("inner");
        let outer_id = outer.id().unwrap();
        inner.finish();
        outer.finish();
        let recs = tel.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[0].parent, Some(outer_id));
        assert_eq!(recs[1].name, "outer");
        assert_eq!(recs[1].parent, None);
        assert!(matches!(recs[1].kind, RecordKind::Span { .. }));
    }

    #[test]
    fn manual_clock_never_reads_wall_time() {
        let tel = Telemetry::sim();
        tel.event_at(1_000, "a", &[]);
        tel.set_now_us(2_500);
        tel.event("b", &[("n", 7u64.into())]);
        let recs = tel.records();
        assert_eq!(recs[0].start_us, 1_000);
        assert_eq!(recs[1].start_us, 2_500);
        // A sim-time span between set_now_us calls has an exact duration.
        let span = tel.span("op");
        tel.set_now_us(3_000);
        span.finish();
        let recs = tel.records();
        assert_eq!(recs[2].kind, RecordKind::Span { dur_us: 500 }, "{recs:?}");
    }

    #[test]
    fn metrics_registry_accumulates() {
        let tel = Telemetry::recording();
        tel.inc_counter("deploys", 2);
        tel.inc_counter("deploys", 3);
        tel.set_gauge("free", 42.0);
        for v in [1.0, 2.0, 4.0, 8.0] {
            tel.record_hist("lat", v);
        }
        let m = tel.metrics();
        assert_eq!(m.counters["deploys"], 5);
        assert_eq!(m.gauges["free"], 42.0);
        let h = &m.histograms["lat"];
        assert_eq!(h.count, 4);
        assert!((h.sum - 15.0).abs() < 1e-9);
        assert!(h.p50 >= 1.0 && h.p50 <= 4.0, "p50 {}", h.p50);
        assert!(h.p95 >= 4.0, "p95 {}", h.p95);
    }

    #[test]
    fn clear_resets_everything() {
        let tel = Telemetry::recording();
        tel.event("e", &[]);
        tel.inc_counter("c", 1);
        tel.clear();
        assert!(tel.records().is_empty());
        assert!(tel.metrics().counters.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::sim();
        let other = tel.clone();
        other.event_at(5, "shared", &[]);
        assert_eq!(tel.records().len(), 1);
    }
}
