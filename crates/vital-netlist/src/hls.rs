//! Synthesis front-end model: lowering operator-level application
//! specifications into primitive netlists.
//!
//! ViTAL's programming layer accepts applications in high-level languages and
//! reuses the commercial front-end (HLS + logic synthesis + technology
//! mapping) to produce a netlist of primitives (paper §3.1, §3.3 step 1).
//! This module is the reproduction's stand-in for that front-end: an
//! [`AppSpec`] describes an accelerator as a dataflow graph of coarse
//! operators (MAC arrays, buffers, pipelines), and [`synthesize`] expands it
//! into a [`Netlist`] whose local structure is dense (intra-operator) and
//! whose operator-to-operator links are the natural cut points — the same
//! structure real accelerators exhibit and the partition algorithm exploits.
//!
//! # Example
//!
//! ```
//! use vital_netlist::hls::{AppSpec, Operator};
//!
//! let mut spec = AppSpec::new("tiny-cnn");
//! let buf = spec.add_operator("weights", Operator::Buffer { kb: 72, banks: 2 });
//! let mac = spec.add_operator("mac", Operator::MacArray { pes: 4 });
//! let act = spec.add_operator("act", Operator::Pipeline { slices: 8 });
//! spec.add_edge(buf, mac, 128)?;
//! spec.add_edge(mac, act, 64)?;
//! spec.add_input("ifm", mac, 64)?;
//! spec.add_output("ofm", act, 64)?;
//! let netlist = vital_netlist::hls::synthesize(&spec)?;
//! assert!(netlist.resource_usage().dsp >= 4);
//! netlist.validate()?;
//! # Ok::<(), vital_netlist::NetlistError>(())
//! ```

use serde::{Deserialize, Serialize};
use vital_fabric::Resources;

use crate::{Netlist, NetlistError, PortDirection, PrimitiveId, PrimitiveKind};

/// A coarse hardware operator of an accelerator specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// A systolic array of `pes` multiply-accumulate processing elements.
    /// Each PE costs 4 slices and one DSP; PEs are chained.
    MacArray {
        /// Number of processing elements.
        pes: u32,
    },
    /// An on-chip buffer of `kb` kilobits split into `banks` banks.
    /// Each bank gets an address-generation slice; capacity is rounded up
    /// to whole RAMB36 instances.
    Buffer {
        /// Total capacity in kilobits.
        kb: u32,
        /// Number of independently addressed banks.
        banks: u32,
    },
    /// A logic pipeline of `slices` chained slices (activation functions,
    /// pooling, im2col, control).
    Pipeline {
        /// Number of slices in the chain.
        slices: u32,
    },
    /// Free-form logic with explicit resource content; `slices` are chained,
    /// `dsps` and `brams` hang off the chain evenly.
    Custom {
        /// Slice count.
        slices: u32,
        /// DSP count.
        dsps: u32,
        /// RAMB36 count.
        brams: u32,
    },
}

impl Operator {
    /// Estimated fabric resources without running synthesis.
    pub fn resource_estimate(&self) -> Resources {
        let slice = PrimitiveKind::slice(SLICE_LUTS, SLICE_FFS).resources();
        match *self {
            Operator::MacArray { pes } => {
                (slice * u64::from(PE_SLICES) + Resources::new(0, 0, 1, 0)) * u64::from(pes)
            }
            Operator::Buffer { kb, banks } => {
                let brams = u64::from(kb.div_ceil(36));
                Resources::new(0, 0, 0, brams * 36) + slice * u64::from(banks.max(1))
            }
            Operator::Pipeline { slices } => slice * u64::from(slices),
            Operator::Custom {
                slices,
                dsps,
                brams,
            } => {
                slice * u64::from(slices)
                    + Resources::new(0, 0, u64::from(dsps), u64::from(brams) * 36)
            }
        }
    }
}

/// LUTs per synthesized slice primitive.
pub const SLICE_LUTS: u16 = 8;
/// Flip-flops per synthesized slice primitive.
pub const SLICE_FFS: u16 = 16;
/// Slices per MAC-array processing element.
pub const PE_SLICES: u32 = 4;

/// Index of an operator within an [`AppSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OperatorId(u32);

impl OperatorId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct OperatorInst {
    name: String,
    op: Operator,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct SpecEdge {
    from: OperatorId,
    to: OperatorId,
    bits: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SpecPort {
    name: String,
    op: OperatorId,
    bits: u32,
    direction: PortDirection,
}

/// An accelerator described as a dataflow graph of coarse operators — the
/// input to the synthesis front-end model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    name: String,
    operators: Vec<OperatorInst>,
    edges: Vec<SpecEdge>,
    ports: Vec<SpecPort>,
}

impl AppSpec {
    /// Creates an empty specification named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AppSpec {
            name: name.into(),
            operators: Vec::new(),
            edges: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an operator instance and returns its id.
    pub fn add_operator(&mut self, name: impl Into<String>, op: Operator) -> OperatorId {
        let id = OperatorId(self.operators.len() as u32);
        self.operators.push(OperatorInst {
            name: name.into(),
            op,
        });
        id
    }

    /// Connects two operators with a `bits`-wide stream.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ZeroWidthNet`] for zero-width edges; operator
    /// ids are validated at synthesis time.
    pub fn add_edge(
        &mut self,
        from: OperatorId,
        to: OperatorId,
        bits: u32,
    ) -> Result<(), NetlistError> {
        if bits == 0 {
            return Err(NetlistError::ZeroWidthNet);
        }
        self.edges.push(SpecEdge { from, to, bits });
        Ok(())
    }

    /// Declares a top-level input stream feeding operator `op`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ZeroWidthNet`] for zero-width ports.
    pub fn add_input(
        &mut self,
        name: impl Into<String>,
        op: OperatorId,
        bits: u32,
    ) -> Result<(), NetlistError> {
        self.add_port(name, op, bits, PortDirection::Input)
    }

    /// Declares a top-level output stream driven by operator `op`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ZeroWidthNet`] for zero-width ports.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        op: OperatorId,
        bits: u32,
    ) -> Result<(), NetlistError> {
        self.add_port(name, op, bits, PortDirection::Output)
    }

    fn add_port(
        &mut self,
        name: impl Into<String>,
        op: OperatorId,
        bits: u32,
        direction: PortDirection,
    ) -> Result<(), NetlistError> {
        if bits == 0 {
            return Err(NetlistError::ZeroWidthNet);
        }
        self.ports.push(SpecPort {
            name: name.into(),
            op,
            bits,
            direction,
        });
        Ok(())
    }

    /// Number of operators.
    pub fn operator_count(&self) -> usize {
        self.operators.len()
    }

    /// Estimated total resources without synthesis (used by the runtime to
    /// size virtual-block allocations before compilation finishes).
    pub fn resource_estimate(&self) -> Resources {
        self.operators
            .iter()
            .map(|o| o.op.resource_estimate())
            .sum()
    }
}

/// Synthesized interface points of one operator inside the netlist.
#[derive(Debug, Clone)]
struct LoweredOp {
    /// Primitive accepting the operator's input stream.
    head: PrimitiveId,
    /// Primitive producing the operator's output stream.
    tail: PrimitiveId,
}

/// Lowers an [`AppSpec`] into a primitive [`Netlist`].
///
/// Intra-operator structure is a dense local chain (slices feeding each
/// other, hard blocks hanging off the chain); operator-to-operator edges
/// become single nets of the declared width. The result validates.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownPrimitive`] if an edge or port references
/// an operator id that does not exist in the spec.
pub fn synthesize(spec: &AppSpec) -> Result<Netlist, NetlistError> {
    let mut n = Netlist::new(spec.name.clone());
    let mut lowered: Vec<LoweredOp> = Vec::with_capacity(spec.operators.len());

    for inst in &spec.operators {
        let l = match inst.op {
            Operator::MacArray { pes } => lower_mac_array(&mut n, &inst.name, pes.max(1))?,
            Operator::Buffer { kb, banks } => {
                lower_buffer(&mut n, &inst.name, kb.max(1), banks.max(1))?
            }
            Operator::Pipeline { slices } => lower_chain(&mut n, &inst.name, slices.max(1), 0, 0)?,
            Operator::Custom {
                slices,
                dsps,
                brams,
            } => lower_chain(&mut n, &inst.name, slices.max(1), dsps, brams)?,
        };
        lowered.push(l);
    }

    for e in &spec.edges {
        let from = lowered
            .get(e.from.index())
            .ok_or(NetlistError::UnknownPrimitive(PrimitiveId(e.from.0)))?;
        let to = lowered
            .get(e.to.index())
            .ok_or(NetlistError::UnknownPrimitive(PrimitiveId(e.to.0)))?;
        n.connect(from.tail, [to.head], e.bits)?;
    }
    for p in &spec.ports {
        let op = lowered
            .get(p.op.index())
            .ok_or(NetlistError::UnknownPrimitive(PrimitiveId(p.op.0)))?;
        match p.direction {
            PortDirection::Input => {
                let port = n.add_primitive(PrimitiveKind::io(p.direction), p.name.clone());
                n.connect(port, [op.head], p.bits)?;
            }
            PortDirection::Output => {
                let port = n.add_primitive(PrimitiveKind::io(p.direction), p.name.clone());
                n.connect(op.tail, [port], p.bits)?;
            }
        }
    }
    Ok(n)
}

fn lower_mac_array(n: &mut Netlist, name: &str, pes: u32) -> Result<LoweredOp, NetlistError> {
    let mut prev_tail: Option<PrimitiveId> = None;
    let mut head = None;
    let mut tail = None;
    for pe in 0..pes {
        // One PE: PE_SLICES chained slices feeding one DSP.
        let mut prev_slice: Option<PrimitiveId> = None;
        let mut first_slice = None;
        for s in 0..PE_SLICES {
            let id = n.add_primitive(
                PrimitiveKind::slice(SLICE_LUTS, SLICE_FFS),
                format!("{name}/pe{pe}/s{s}"),
            );
            if let Some(p) = prev_slice {
                n.connect(p, [id], 32)?;
            }
            if first_slice.is_none() {
                first_slice = Some(id);
            }
            prev_slice = Some(id);
        }
        let dsp = n.add_primitive(PrimitiveKind::Dsp, format!("{name}/pe{pe}/dsp"));
        n.connect(
            prev_slice.expect("PE_SLICES >= 1 guarantees a slice"),
            [dsp],
            48,
        )?;
        let first = first_slice.expect("PE_SLICES >= 1 guarantees a slice");
        // Systolic chaining between PEs.
        if let Some(pt) = prev_tail {
            n.connect(pt, [first], 16)?;
        }
        if head.is_none() {
            head = Some(first);
        }
        prev_tail = Some(dsp);
        tail = Some(dsp);
    }
    Ok(LoweredOp {
        head: head.expect("pes >= 1"),
        tail: tail.expect("pes >= 1"),
    })
}

fn lower_buffer(
    n: &mut Netlist,
    name: &str,
    kb: u32,
    banks: u32,
) -> Result<LoweredOp, NetlistError> {
    let brams_total = kb.div_ceil(36).max(1);
    let per_bank = brams_total.div_ceil(banks);
    let mut prev_addr: Option<PrimitiveId> = None;
    let mut head = None;
    let mut last_bram = None;
    for bank in 0..banks {
        let addr = n.add_primitive(
            PrimitiveKind::slice(SLICE_LUTS, SLICE_FFS),
            format!("{name}/bank{bank}/addr"),
        );
        let remaining = brams_total.saturating_sub(bank * per_bank);
        let count = per_bank.min(remaining);
        let mut sinks = Vec::new();
        for b in 0..count {
            let bram =
                n.add_primitive(PrimitiveKind::bram36(), format!("{name}/bank{bank}/ram{b}"));
            sinks.push(bram);
            last_bram = Some(bram);
        }
        if !sinks.is_empty() {
            n.connect(addr, sinks, 32)?;
        }
        if let Some(p) = prev_addr {
            n.connect(p, [addr], 16)?;
        }
        if head.is_none() {
            head = Some(addr);
        }
        prev_addr = Some(addr);
    }
    Ok(LoweredOp {
        head: head.expect("banks >= 1"),
        tail: last_bram.or(head).expect("banks >= 1"),
    })
}

fn lower_chain(
    n: &mut Netlist,
    name: &str,
    slices: u32,
    dsps: u32,
    brams: u32,
) -> Result<LoweredOp, NetlistError> {
    let mut ids = Vec::with_capacity(slices as usize);
    for s in 0..slices {
        let id = n.add_primitive(
            PrimitiveKind::slice(SLICE_LUTS, SLICE_FFS),
            format!("{name}/s{s}"),
        );
        if let Some(&prev) = ids.last() {
            n.connect(prev, [id], 32)?;
        }
        ids.push(id);
    }
    // Hard blocks hang off the chain at evenly spaced attachment points.
    let attach = |i: u32, total: u32, len: usize| -> usize {
        if total <= 1 || len <= 1 {
            0
        } else {
            (i as usize * (len - 1)) / (total as usize - 1)
        }
    };
    for d in 0..dsps {
        let dsp = n.add_primitive(PrimitiveKind::Dsp, format!("{name}/dsp{d}"));
        let host = ids[attach(d, dsps, ids.len())];
        n.connect(host, [dsp], 48)?;
    }
    for b in 0..brams {
        let bram = n.add_primitive(PrimitiveKind::bram36(), format!("{name}/ram{b}"));
        let host = ids[attach(b, brams, ids.len())];
        n.connect(host, [bram], 32)?;
    }
    Ok(LoweredOp {
        head: *ids.first().expect("slices >= 1"),
        tail: *ids.last().expect("slices >= 1"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> AppSpec {
        let mut spec = AppSpec::new("demo");
        let buf = spec.add_operator("w", Operator::Buffer { kb: 100, banks: 2 });
        let mac = spec.add_operator("m", Operator::MacArray { pes: 3 });
        let act = spec.add_operator("a", Operator::Pipeline { slices: 5 });
        spec.add_edge(buf, mac, 256).unwrap();
        spec.add_edge(mac, act, 64).unwrap();
        spec.add_input("in", mac, 64).unwrap();
        spec.add_output("out", act, 64).unwrap();
        spec
    }

    #[test]
    fn synthesize_produces_valid_netlist() {
        let n = synthesize(&demo_spec()).unwrap();
        n.validate().unwrap();
        let r = n.resource_usage();
        assert_eq!(r.dsp, 3);
        assert_eq!(r.bram_kb, 36 * 3); // ceil(100/36) = 3 RAMB36
        assert_eq!(n.io_ports().count(), 2);
    }

    #[test]
    fn estimate_matches_synthesis_for_mac_and_pipeline() {
        let mut spec = AppSpec::new("e");
        spec.add_operator("m", Operator::MacArray { pes: 10 });
        spec.add_operator("p", Operator::Pipeline { slices: 7 });
        let est = spec.resource_estimate();
        let n = synthesize(&spec).unwrap();
        assert_eq!(est, n.resource_usage());
    }

    #[test]
    fn custom_operator_hard_blocks() {
        let mut spec = AppSpec::new("c");
        spec.add_operator(
            "x",
            Operator::Custom {
                slices: 10,
                dsps: 4,
                brams: 2,
            },
        );
        let n = synthesize(&spec).unwrap();
        let r = n.resource_usage();
        assert_eq!(r.dsp, 4);
        assert_eq!(r.bram_kb, 72);
        assert_eq!(r.lut, 80);
        n.validate().unwrap();
    }

    #[test]
    fn edge_to_unknown_operator_fails_at_synthesis() {
        let mut spec = AppSpec::new("bad");
        let a = spec.add_operator("a", Operator::Pipeline { slices: 1 });
        let ghost = OperatorId(7);
        spec.add_edge(a, ghost, 8).unwrap();
        assert!(synthesize(&spec).is_err());
    }

    #[test]
    fn zero_width_edges_rejected_eagerly() {
        let mut spec = AppSpec::new("bad");
        let a = spec.add_operator("a", Operator::Pipeline { slices: 1 });
        assert_eq!(spec.add_edge(a, a, 0), Err(NetlistError::ZeroWidthNet));
        assert_eq!(spec.add_input("i", a, 0), Err(NetlistError::ZeroWidthNet));
    }

    #[test]
    fn degenerate_operator_sizes_are_clamped() {
        let mut spec = AppSpec::new("z");
        spec.add_operator("m", Operator::MacArray { pes: 0 });
        spec.add_operator("b", Operator::Buffer { kb: 0, banks: 0 });
        spec.add_operator("p", Operator::Pipeline { slices: 0 });
        let n = synthesize(&spec).unwrap();
        assert!(n.primitive_count() > 0);
    }

    #[test]
    fn operator_locality_dominates() {
        // Intra-operator nets should far outnumber inter-operator nets, so
        // the placement-based partitioner has real structure to exploit.
        let n = synthesize(&demo_spec()).unwrap();
        let total_nets = n.net_count();
        // 2 inter-op edges + 2 port nets = 4 "global" nets.
        assert!(total_nets > 4 * 3);
    }
}
