//! Dataflow-graph view of a netlist.
//!
//! The packing, placement and partition steps of ViTAL's compilation flow
//! (paper §4) all operate on the netlist's connectivity. This module
//! flattens the net list into per-node adjacency with edge weights in bits,
//! using the star model (driver → each sink) for multi-sink nets.

use serde::{Deserialize, Serialize};

use crate::{Netlist, PrimitiveId};

/// A weighted adjacency entry of the [`DataflowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfgEdge {
    /// The neighbouring primitive.
    pub other: PrimitiveId,
    /// Total bits exchanged with that neighbour (accumulated over nets).
    pub bits: u64,
}

/// Weighted connectivity extracted from a [`Netlist`].
///
/// Both a directed view (`successors`) — needed to generate the
/// latency-insensitive interface for cut edges — and an undirected merged
/// view (`neighbors`) — needed by the quadratic placer — are provided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    nodes: usize,
    succ: Vec<Vec<DfgEdge>>,
    neighbors: Vec<Vec<DfgEdge>>,
}

impl DataflowGraph {
    /// Builds the graph from a netlist.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let nodes = netlist.primitive_count();
        let mut succ: Vec<Vec<DfgEdge>> = vec![Vec::new(); nodes];
        let mut undirected: Vec<Vec<DfgEdge>> = vec![Vec::new(); nodes];
        for net in netlist.nets() {
            let d = net.driver();
            for &s in net.sinks() {
                let bits = u64::from(net.bits());
                succ[d.index()].push(DfgEdge { other: s, bits });
                undirected[d.index()].push(DfgEdge { other: s, bits });
                undirected[s.index()].push(DfgEdge { other: d, bits });
            }
        }
        // Merge parallel edges so each neighbour appears once with the
        // accumulated weight.
        let merge = |lists: Vec<Vec<DfgEdge>>| -> Vec<Vec<DfgEdge>> {
            lists
                .into_iter()
                .map(|mut edges| {
                    edges.sort_by_key(|e| e.other);
                    let mut merged: Vec<DfgEdge> = Vec::with_capacity(edges.len());
                    for e in edges {
                        match merged.last_mut() {
                            Some(last) if last.other == e.other => last.bits += e.bits,
                            _ => merged.push(e),
                        }
                    }
                    merged
                })
                .collect()
        };
        DataflowGraph {
            nodes,
            succ: merge(succ),
            neighbors: merge(undirected),
        }
    }

    /// Number of nodes (primitives).
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Directed out-edges of `node` (driver → sink), merged per neighbour.
    pub fn successors(&self, node: PrimitiveId) -> &[DfgEdge] {
        &self.succ[node.index()]
    }

    /// Undirected neighbours of `node`, merged per neighbour.
    pub fn neighbors(&self, node: PrimitiveId) -> &[DfgEdge] {
        &self.neighbors[node.index()]
    }

    /// Total undirected edge weight incident to `node`.
    pub fn degree_bits(&self, node: PrimitiveId) -> u64 {
        self.neighbors[node.index()].iter().map(|e| e.bits).sum()
    }

    /// Iterates all undirected edges once (`a < b`), with accumulated bits.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (PrimitiveId, PrimitiveId, u64)> + '_ {
        self.neighbors.iter().enumerate().flat_map(|(a, edges)| {
            edges
                .iter()
                .filter(move |e| e.other.index() > a)
                .map(move |e| (PrimitiveId(a as u32), e.other, e.bits))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrimitiveKind;

    #[test]
    fn merges_parallel_edges() {
        let mut n = Netlist::new("t");
        let a = n.add_primitive(PrimitiveKind::lut(6), "a");
        let b = n.add_primitive(PrimitiveKind::lut(6), "b");
        n.connect(a, [b], 8).unwrap();
        n.connect(a, [b], 24).unwrap();
        let g = DataflowGraph::from_netlist(&n);
        assert_eq!(g.neighbors(a).len(), 1);
        assert_eq!(g.neighbors(a)[0].bits, 32);
        assert_eq!(g.degree_bits(b), 32);
        assert_eq!(g.successors(a).len(), 1);
        assert!(g.successors(b).is_empty());
    }

    #[test]
    fn star_model_for_fanout() {
        let mut n = Netlist::new("t");
        let d = n.add_primitive(PrimitiveKind::lut(6), "d");
        let s1 = n.add_primitive(PrimitiveKind::lut(6), "s1");
        let s2 = n.add_primitive(PrimitiveKind::lut(6), "s2");
        n.connect(d, [s1, s2], 4).unwrap();
        let g = DataflowGraph::from_netlist(&n);
        assert_eq!(g.neighbors(d).len(), 2);
        assert_eq!(g.degree_bits(d), 8);
        // No sink-to-sink edge in the star model.
        assert!(g.neighbors(s1).iter().all(|e| e.other == d));
    }

    #[test]
    fn undirected_edges_visits_each_pair_once() {
        let mut n = Netlist::new("t");
        let a = n.add_primitive(PrimitiveKind::lut(6), "a");
        let b = n.add_primitive(PrimitiveKind::lut(6), "b");
        let c = n.add_primitive(PrimitiveKind::lut(6), "c");
        n.connect(a, [b, c], 2).unwrap();
        n.connect(b, [c], 3).unwrap();
        let g = DataflowGraph::from_netlist(&n);
        let edges: Vec<_> = g.undirected_edges().collect();
        assert_eq!(edges.len(), 3);
        let total: u64 = edges.iter().map(|(_, _, w)| w).sum();
        assert_eq!(total, 2 + 2 + 3);
    }

    #[test]
    fn empty_netlist() {
        let g = DataflowGraph::from_netlist(&Netlist::new("empty"));
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.undirected_edges().count(), 0);
    }
}
