//! The netlist container: primitives connected by multi-bit nets.

use std::fmt;

use serde::{Deserialize, Serialize};
use vital_fabric::Resources;

use crate::{NetlistError, PortDirection, Primitive, PrimitiveId, PrimitiveKind};

/// Index of a net within its [`Netlist`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A multi-bit net: one driver primitive fanning out to one or more sinks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    pub(crate) id: NetId,
    pub(crate) driver: PrimitiveId,
    pub(crate) sinks: Vec<PrimitiveId>,
    pub(crate) bits: u32,
}

impl Net {
    /// The net's id.
    pub fn id(&self) -> NetId {
        self.id
    }

    /// The primitive driving the net.
    pub fn driver(&self) -> PrimitiveId {
        self.driver
    }

    /// The primitives consuming the net.
    pub fn sinks(&self) -> &[PrimitiveId] {
        &self.sinks
    }

    /// Bit width of the net.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

/// Summary statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of primitives (including I/O ports).
    pub primitives: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of top-level I/O port primitives.
    pub io_ports: usize,
    /// Total resources consumed.
    pub resources: Resources,
    /// Average net fanout.
    pub avg_fanout: f64,
    /// Total routed bits (sum over nets of `bits * sinks`).
    pub total_bits: u64,
}

/// A technology-mapped netlist: the IR at which ViTAL partitions
/// applications (paper §3.3, design decision in step 2).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    primitives: Vec<Primitive>,
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            primitives: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primitive and returns its id.
    pub fn add_primitive(&mut self, kind: PrimitiveKind, name: impl Into<String>) -> PrimitiveId {
        let id = PrimitiveId(self.primitives.len() as u32);
        self.primitives.push(Primitive {
            id,
            kind,
            name: name.into(),
        });
        id
    }

    /// Connects `driver` to `sinks` with a net of width `bits`, returning
    /// the new net's id.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownPrimitive`] if any id is out of range.
    /// * [`NetlistError::EmptyNet`] / [`NetlistError::ZeroWidthNet`] for
    ///   degenerate nets.
    /// * [`NetlistError::PortMisuse`] if an output port drives a net or an
    ///   input port consumes one.
    pub fn connect(
        &mut self,
        driver: PrimitiveId,
        sinks: impl IntoIterator<Item = PrimitiveId>,
        bits: u32,
    ) -> Result<NetId, NetlistError> {
        let sinks: Vec<PrimitiveId> = sinks.into_iter().collect();
        if sinks.is_empty() {
            return Err(NetlistError::EmptyNet);
        }
        if bits == 0 {
            return Err(NetlistError::ZeroWidthNet);
        }
        let driver_kind = self
            .primitive(driver)
            .ok_or(NetlistError::UnknownPrimitive(driver))?
            .kind();
        if let PrimitiveKind::Io {
            direction: PortDirection::Output,
        } = driver_kind
        {
            return Err(NetlistError::PortMisuse {
                port: driver,
                reason: "output port cannot drive a net".into(),
            });
        }
        for &s in &sinks {
            let kind = self
                .primitive(s)
                .ok_or(NetlistError::UnknownPrimitive(s))?
                .kind();
            if let PrimitiveKind::Io {
                direction: PortDirection::Input,
            } = kind
            {
                return Err(NetlistError::PortMisuse {
                    port: s,
                    reason: "input port cannot consume a net".into(),
                });
            }
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            id,
            driver,
            sinks,
            bits,
        });
        Ok(id)
    }

    /// Looks up a primitive by id.
    pub fn primitive(&self, id: PrimitiveId) -> Option<&Primitive> {
        self.primitives.get(id.index())
    }

    /// Looks up a net by id.
    pub fn net(&self, id: NetId) -> Option<&Net> {
        self.nets.get(id.index())
    }

    /// All primitives, in id order.
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }

    /// All nets, in id order.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Number of primitives.
    pub fn primitive_count(&self) -> usize {
        self.primitives.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// The top-level I/O port primitives.
    pub fn io_ports(&self) -> impl Iterator<Item = &Primitive> {
        self.primitives.iter().filter(|p| p.kind().is_io())
    }

    /// Total fabric resources consumed by the netlist.
    pub fn resource_usage(&self) -> Resources {
        self.primitives.iter().map(|p| p.resources()).sum()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let total_sinks: usize = self.nets.iter().map(|n| n.sinks.len()).sum();
        let total_bits: u64 = self
            .nets
            .iter()
            .map(|n| u64::from(n.bits) * n.sinks.len() as u64)
            .sum();
        NetlistStats {
            primitives: self.primitives.len(),
            nets: self.nets.len(),
            io_ports: self.io_ports().count(),
            resources: self.resource_usage(),
            avg_fanout: if self.nets.is_empty() {
                0.0
            } else {
                total_sinks as f64 / self.nets.len() as f64
            },
            total_bits,
        }
    }

    /// Validates structural invariants: every net's endpoints exist and
    /// every non-port primitive is connected to at least one net.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.primitives.len();
        let mut touched = vec![false; n];
        for net in &self.nets {
            if net.driver.index() >= n {
                return Err(NetlistError::UnknownPrimitive(net.driver));
            }
            touched[net.driver.index()] = true;
            for &s in &net.sinks {
                if s.index() >= n {
                    return Err(NetlistError::UnknownPrimitive(s));
                }
                touched[s.index()] = true;
            }
        }
        for (i, p) in self.primitives.iter().enumerate() {
            if !touched[i] && !p.kind().is_io() {
                return Err(NetlistError::DanglingPrimitive(p.id()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} primitives, {} nets, {}",
            self.name,
            self.primitives.len(),
            self.nets.len(),
            self.resource_usage()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_lut_netlist() -> (Netlist, PrimitiveId, PrimitiveId) {
        let mut n = Netlist::new("t");
        let a = n.add_primitive(PrimitiveKind::lut(6), "a");
        let b = n.add_primitive(PrimitiveKind::lut(6), "b");
        n.connect(a, [b], 1).unwrap();
        (n, a, b)
    }

    #[test]
    fn build_and_query() {
        let (n, a, b) = two_lut_netlist();
        assert_eq!(n.primitive_count(), 2);
        assert_eq!(n.net_count(), 1);
        let net = n.net(NetId(0)).unwrap();
        assert_eq!(net.driver(), a);
        assert_eq!(net.sinks(), &[b]);
        assert_eq!(net.bits(), 1);
        n.validate().unwrap();
    }

    #[test]
    fn rejects_degenerate_nets() {
        let (mut n, a, _) = two_lut_netlist();
        assert_eq!(n.connect(a, [], 1), Err(NetlistError::EmptyNet));
        let b = PrimitiveId(1);
        assert_eq!(n.connect(a, [b], 0), Err(NetlistError::ZeroWidthNet));
    }

    #[test]
    fn rejects_unknown_ids() {
        let (mut n, a, _) = two_lut_netlist();
        let ghost = PrimitiveId(99);
        assert_eq!(
            n.connect(ghost, [a], 1),
            Err(NetlistError::UnknownPrimitive(ghost))
        );
        assert_eq!(
            n.connect(a, [ghost], 1),
            Err(NetlistError::UnknownPrimitive(ghost))
        );
    }

    #[test]
    fn rejects_port_misuse() {
        let mut n = Netlist::new("t");
        let inp = n.add_primitive(PrimitiveKind::io(PortDirection::Input), "in");
        let out = n.add_primitive(PrimitiveKind::io(PortDirection::Output), "out");
        let lut = n.add_primitive(PrimitiveKind::lut(2), "l");
        assert!(matches!(
            n.connect(out, [lut], 1),
            Err(NetlistError::PortMisuse { .. })
        ));
        assert!(matches!(
            n.connect(lut, [inp], 1),
            Err(NetlistError::PortMisuse { .. })
        ));
        // Correct directions are fine.
        n.connect(inp, [lut], 8).unwrap();
        n.connect(lut, [out], 8).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn validate_finds_dangling_primitives() {
        let (mut n, _, _) = two_lut_netlist();
        let dangling = n.add_primitive(PrimitiveKind::Dsp, "d");
        assert_eq!(n.validate(), Err(NetlistError::DanglingPrimitive(dangling)));
    }

    #[test]
    fn unconnected_io_is_allowed() {
        let mut n = Netlist::new("t");
        n.add_primitive(PrimitiveKind::io(PortDirection::Input), "unused");
        n.validate().unwrap();
    }

    #[test]
    fn stats_aggregate() {
        let mut n = Netlist::new("t");
        let a = n.add_primitive(PrimitiveKind::slice(8, 16), "a");
        let b = n.add_primitive(PrimitiveKind::Dsp, "b");
        let c = n.add_primitive(PrimitiveKind::bram36(), "c");
        n.connect(a, [b, c], 16).unwrap();
        let s = n.stats();
        assert_eq!(s.primitives, 3);
        assert_eq!(s.nets, 1);
        assert_eq!(s.resources, Resources::new(8, 16, 1, 36));
        assert!((s.avg_fanout - 2.0).abs() < 1e-12);
        assert_eq!(s.total_bits, 32);
    }

    #[test]
    fn serde_roundtrip() {
        let (n, _, _) = two_lut_netlist();
        let json = serde_json::to_string(&n).unwrap();
        let back: Netlist = serde_json::from_str(&json).unwrap();
        assert_eq!(n, back);
    }
}
