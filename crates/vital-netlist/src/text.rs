//! VNL — a plain-text netlist interchange format.
//!
//! Real flows pass netlists between tools as files (EDIF, structural
//! Verilog); VNL is this library's equivalent: a line-oriented format that
//! round-trips every [`Netlist`] exactly. One primitive or net per line:
//!
//! ```text
//! vnl 1
//! netlist my-design
//! prim lut6 u0/sum
//! prim slice:8:16 u0/regs
//! prim dsp u0/mul
//! prim bram:36 u0/ram
//! prim in ifm
//! prim out ofm
//! net 4 32 0           # driver=prim 4, width 32, sinks: prim 0
//! net 0 48 2 3         # fanout of two
//! ```
//!
//! Primitive ids are implicit (declaration order); `#` starts a comment.
//! Instance names must be free of whitespace (the generated hierarchical
//! `a/b/c` names always are).

use crate::{Netlist, NetlistError, PortDirection, PrimitiveId, PrimitiveKind};

/// Serializes a netlist to VNL text.
///
/// # Errors
///
/// Returns [`NetlistError::Unserializable`] if any instance name contains
/// whitespace or control characters (VNL is line/space delimited).
pub fn to_vnl(netlist: &Netlist) -> Result<String, NetlistError> {
    let check = |name: &str| -> Result<(), NetlistError> {
        if name.is_empty() || name.chars().any(|c| c.is_whitespace() || c.is_control()) {
            return Err(NetlistError::Unserializable(format!(
                "instance name {name:?} contains whitespace or control characters"
            )));
        }
        Ok(())
    };
    check(netlist.name())?;
    let mut out = String::new();
    out.push_str("vnl 1\n");
    out.push_str(&format!("netlist {}\n", netlist.name()));
    for p in netlist.primitives() {
        check(p.name())?;
        let kind = match p.kind() {
            PrimitiveKind::Lut { inputs } => format!("lut{inputs}"),
            PrimitiveKind::FlipFlop => "ff".to_string(),
            PrimitiveKind::Slice { luts, ffs } => format!("slice:{luts}:{ffs}"),
            PrimitiveKind::Dsp => "dsp".to_string(),
            PrimitiveKind::Bram { kb } => format!("bram:{kb}"),
            PrimitiveKind::Io {
                direction: PortDirection::Input,
            } => "in".to_string(),
            PrimitiveKind::Io {
                direction: PortDirection::Output,
            } => "out".to_string(),
        };
        out.push_str(&format!("prim {kind} {}\n", p.name()));
    }
    for n in netlist.nets() {
        out.push_str(&format!("net {} {}", n.driver().raw(), n.bits()));
        for s in n.sinks() {
            out.push_str(&format!(" {}", s.raw()));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Parses VNL text into a netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] describing the offending line for any
/// syntax error, and the usual construction errors
/// ([`NetlistError::UnknownPrimitive`] etc.) for semantically invalid
/// content.
pub fn from_vnl(text: &str) -> Result<Netlist, NetlistError> {
    let err = |line: usize, msg: &str| NetlistError::Parse {
        line,
        message: msg.to_string(),
    };
    let mut netlist: Option<Netlist> = None;
    let mut saw_header = false;
    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a token");
        match keyword {
            "vnl" => {
                let version = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing version"))?;
                if version != "1" {
                    return Err(err(lineno, "unsupported VNL version"));
                }
                saw_header = true;
            }
            "netlist" => {
                if !saw_header {
                    return Err(err(lineno, "missing `vnl 1` header"));
                }
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing netlist name"))?;
                netlist = Some(Netlist::new(name));
            }
            "prim" => {
                let n = netlist
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`prim` before `netlist`"))?;
                let kind_tok = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing primitive kind"))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing instance name"))?;
                let kind = parse_kind(kind_tok).ok_or_else(|| {
                    err(
                        lineno,
                        "unknown primitive kind (expected lutN/ff/slice:L:F/dsp/bram:KB/in/out)",
                    )
                })?;
                n.add_primitive(kind, name);
            }
            "net" => {
                let n = netlist
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`net` before `netlist`"))?;
                let driver: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing or invalid driver id"))?;
                let bits: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing or invalid bit width"))?;
                let mut sinks = Vec::new();
                for t in tokens {
                    let s: u32 = t.parse().map_err(|_| err(lineno, "invalid sink id"))?;
                    sinks.push(PrimitiveId::new(s));
                }
                n.connect(PrimitiveId::new(driver), sinks, bits)?;
            }
            _ => return Err(err(lineno, "unknown keyword")),
        }
    }
    netlist.ok_or_else(|| err(0, "no `netlist` declaration found"))
}

fn parse_kind(tok: &str) -> Option<PrimitiveKind> {
    match tok {
        "ff" => return Some(PrimitiveKind::FlipFlop),
        "dsp" => return Some(PrimitiveKind::Dsp),
        "in" => return Some(PrimitiveKind::io(PortDirection::Input)),
        "out" => return Some(PrimitiveKind::io(PortDirection::Output)),
        _ => {}
    }
    if let Some(inputs) = tok.strip_prefix("lut") {
        let inputs: u8 = inputs.parse().ok()?;
        if (1..=6).contains(&inputs) {
            return Some(PrimitiveKind::Lut { inputs });
        }
        return None;
    }
    if let Some(rest) = tok.strip_prefix("slice:") {
        let (luts, ffs) = rest.split_once(':')?;
        return Some(PrimitiveKind::Slice {
            luts: luts.parse().ok()?,
            ffs: ffs.parse().ok()?,
        });
    }
    if let Some(kb) = tok.strip_prefix("bram:") {
        return Some(PrimitiveKind::Bram {
            kb: kb.parse().ok()?,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hls::{synthesize, AppSpec, Operator};

    fn demo() -> Netlist {
        let mut spec = AppSpec::new("demo");
        let b = spec.add_operator("buf", Operator::Buffer { kb: 72, banks: 2 });
        let m = spec.add_operator("mac", Operator::MacArray { pes: 3 });
        spec.add_edge(b, m, 128).unwrap();
        spec.add_input("ifm", m, 64).unwrap();
        spec.add_output("ofm", m, 64).unwrap();
        synthesize(&spec).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let n = demo();
        let text = to_vnl(&n).unwrap();
        let back = from_vnl(&text).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# header comment\nvnl 1\nnetlist t  # trailing\n\nprim lut4 a\nprim ff b # reg\nnet 0 1 1\n";
        let n = from_vnl(text).unwrap();
        assert_eq!(n.name(), "t");
        assert_eq!(n.primitive_count(), 2);
        assert_eq!(n.net_count(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("vnl 2\nnetlist t\n", 1),
            ("vnl 1\nprim lut6 a\n", 2),
            ("vnl 1\nnetlist t\nprim lut9 a\n", 3),
            ("vnl 1\nnetlist t\nprim lut6 a\nnet x 1 0\n", 4),
            ("vnl 1\nnetlist t\nfrobnicate\n", 3),
        ];
        for (text, expect_line) in cases {
            match from_vnl(text) {
                Err(NetlistError::Parse { line, .. }) => {
                    assert_eq!(line, expect_line, "for input {text:?}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn semantic_errors_surface_as_netlist_errors() {
        // Net references a primitive that does not exist.
        let text = "vnl 1\nnetlist t\nprim lut6 a\nnet 0 8 7\n";
        assert!(matches!(
            from_vnl(text),
            Err(NetlistError::UnknownPrimitive(_))
        ));
    }

    #[test]
    fn whitespace_names_are_rejected_on_write() {
        let mut n = Netlist::new("bad name");
        n.add_primitive(PrimitiveKind::lut(6), "x");
        assert!(matches!(to_vnl(&n), Err(NetlistError::Unserializable(_))));
    }

    #[test]
    fn missing_netlist_decl_is_an_error() {
        assert!(from_vnl("vnl 1\n").is_err());
        assert!(from_vnl("").is_err());
    }
}
