//! Netlist intermediate representation and synthesis front-end model.
//!
//! ViTAL's compilation layer (paper §3.3) partitions applications at the
//! **netlist level**: a generic, language-independent IR that also gives an
//! accurate account of low-level resource usage. This crate provides
//!
//! * the netlist IR itself — primitives (LUTs/slices, flip-flops, DSP
//!   slices, BRAMs, I/O ports) connected by multi-bit nets,
//! * a dataflow-graph view with edge weights in bits, consumed by the
//!   packing/placement/partition pipeline of `vital-placer`,
//! * a synthesis front-end model (`hls` module) that lowers a coarse
//!   operator-level application specification into a primitive netlist —
//!   standing in for the commercial HLS + logic-synthesis front-end that the
//!   paper reuses from Vivado (Fig. 3b, step "parser"/"technology mapping").
//!
//! # Example
//!
//! ```
//! use vital_netlist::{Netlist, PrimitiveKind, PortDirection};
//!
//! let mut n = Netlist::new("adder");
//! let a = n.add_primitive(PrimitiveKind::io(PortDirection::Input), "a");
//! let lut = n.add_primitive(PrimitiveKind::lut(6), "sum");
//! let q = n.add_primitive(PrimitiveKind::io(PortDirection::Output), "q");
//! n.connect(a, [lut], 32)?;
//! n.connect(lut, [q], 32)?;
//! assert_eq!(n.resource_usage().lut, 1);
//! n.validate()?;
//! # Ok::<(), vital_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfg;
mod error;
pub mod hls;
mod netlist;
mod primitive;
pub mod text;

pub use dfg::{DataflowGraph, DfgEdge};
pub use error::NetlistError;
pub use netlist::{Net, NetId, Netlist, NetlistStats};
pub use primitive::{PortDirection, Primitive, PrimitiveId, PrimitiveKind};
