//! Netlist primitives: the leaves of the technology-mapped design.

use std::fmt;

use serde::{Deserialize, Serialize};
use vital_fabric::Resources;

/// Direction of a top-level I/O port primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// Data flows into the design (e.g. a DRAM read channel).
    Input,
    /// Data flows out of the design.
    Output,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDirection::Input => "input",
            PortDirection::Output => "output",
        })
    }
}

/// The kind of one netlist primitive after technology mapping (paper Fig. 3b).
///
/// Besides single LUTs and flip-flops, the IR supports `Slice` primitives —
/// pre-packed CLB-granularity bundles — so that very large accelerators
/// (hundreds of thousands of LUTs) can be represented and partitioned at a
/// tractable node count, exactly as commercial tools coarsen netlists before
/// placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimitiveKind {
    /// A `k`-input look-up table.
    Lut {
        /// Number of logic inputs (1..=6).
        inputs: u8,
    },
    /// A D flip-flop.
    FlipFlop,
    /// A pre-packed logic slice bundling several LUTs and flip-flops.
    Slice {
        /// LUTs in the bundle.
        luts: u16,
        /// Flip-flops in the bundle.
        ffs: u16,
    },
    /// A DSP48-style hard multiply-accumulate slice.
    Dsp,
    /// A block-RAM instance of the given capacity in kilobits.
    Bram {
        /// Capacity in kilobits (36 for a RAMB36).
        kb: u16,
    },
    /// A top-level I/O port (stream, DRAM channel, control).
    Io {
        /// Port direction.
        direction: PortDirection,
    },
}

impl PrimitiveKind {
    /// Convenience constructor for a `k`-input LUT.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero or greater than 6 (the paper's target
    /// architecture uses 6-input LUTs, §2.1).
    pub fn lut(inputs: u8) -> Self {
        assert!(
            (1..=6).contains(&inputs),
            "LUT inputs must be 1..=6, got {inputs}"
        );
        PrimitiveKind::Lut { inputs }
    }

    /// Convenience constructor for a packed slice.
    pub fn slice(luts: u16, ffs: u16) -> Self {
        PrimitiveKind::Slice { luts, ffs }
    }

    /// Convenience constructor for a RAMB36 block RAM.
    pub fn bram36() -> Self {
        PrimitiveKind::Bram { kb: 36 }
    }

    /// Convenience constructor for an I/O port.
    pub fn io(direction: PortDirection) -> Self {
        PrimitiveKind::Io { direction }
    }

    /// Fabric resources consumed by this primitive.
    pub fn resources(&self) -> Resources {
        match *self {
            PrimitiveKind::Lut { .. } => Resources::new(1, 0, 0, 0),
            PrimitiveKind::FlipFlop => Resources::new(0, 1, 0, 0),
            PrimitiveKind::Slice { luts, ffs } => {
                Resources::new(u64::from(luts), u64::from(ffs), 0, 0)
            }
            PrimitiveKind::Dsp => Resources::new(0, 0, 1, 0),
            PrimitiveKind::Bram { kb } => Resources::new(0, 0, 0, u64::from(kb)),
            PrimitiveKind::Io { .. } => Resources::ZERO,
        }
    }

    /// `true` for top-level I/O ports.
    pub fn is_io(&self) -> bool {
        matches!(self, PrimitiveKind::Io { .. })
    }
}

impl fmt::Display for PrimitiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PrimitiveKind::Lut { inputs } => write!(f, "LUT{inputs}"),
            PrimitiveKind::FlipFlop => write!(f, "FF"),
            PrimitiveKind::Slice { luts, ffs } => write!(f, "SLICE({luts}L/{ffs}F)"),
            PrimitiveKind::Dsp => write!(f, "DSP48"),
            PrimitiveKind::Bram { kb } => write!(f, "BRAM{kb}"),
            PrimitiveKind::Io { direction } => write!(f, "IO[{direction}]"),
        }
    }
}

/// Index of a primitive within its [`crate::Netlist`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PrimitiveId(pub(crate) u32);

impl PrimitiveId {
    /// Creates an id from a raw index. Useful for tools (packers, placers)
    /// that iterate primitives by position; ids are only meaningful for the
    /// netlist they came from.
    pub const fn new(raw: u32) -> Self {
        PrimitiveId(raw)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PrimitiveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One instantiated primitive of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Primitive {
    pub(crate) id: PrimitiveId,
    pub(crate) kind: PrimitiveKind,
    pub(crate) name: String,
}

impl Primitive {
    /// The primitive's id within its netlist.
    pub fn id(&self) -> PrimitiveId {
        self.id
    }

    /// The primitive's kind.
    pub fn kind(&self) -> PrimitiveKind {
        self.kind
    }

    /// The hierarchical instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fabric resources consumed by the primitive.
    pub fn resources(&self) -> Resources {
        self.kind.resources()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_by_kind() {
        assert_eq!(PrimitiveKind::lut(6).resources().lut, 1);
        assert_eq!(PrimitiveKind::FlipFlop.resources().ff, 1);
        assert_eq!(PrimitiveKind::Dsp.resources().dsp, 1);
        assert_eq!(PrimitiveKind::bram36().resources().bram_kb, 36);
        assert_eq!(
            PrimitiveKind::slice(8, 16).resources(),
            Resources::new(8, 16, 0, 0)
        );
        assert!(PrimitiveKind::io(PortDirection::Input)
            .resources()
            .is_zero());
    }

    #[test]
    #[should_panic(expected = "LUT inputs")]
    fn lut_inputs_validated() {
        let _ = PrimitiveKind::lut(7);
    }

    #[test]
    fn io_detection() {
        assert!(PrimitiveKind::io(PortDirection::Output).is_io());
        assert!(!PrimitiveKind::Dsp.is_io());
    }

    #[test]
    fn display_formats() {
        assert_eq!(PrimitiveKind::lut(4).to_string(), "LUT4");
        assert_eq!(PrimitiveKind::slice(8, 16).to_string(), "SLICE(8L/16F)");
    }
}
