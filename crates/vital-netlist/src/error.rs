//! Error type of the netlist crate.

use std::error::Error;
use std::fmt;

use crate::{NetId, PrimitiveId};

/// Errors produced while constructing or validating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A primitive id did not refer to a primitive of this netlist.
    UnknownPrimitive(PrimitiveId),
    /// A net id did not refer to a net of this netlist.
    UnknownNet(NetId),
    /// A net was created with no sinks.
    EmptyNet,
    /// A net was created with zero bit width.
    ZeroWidthNet,
    /// An output port was used as a net driver's sink-side consumer, or an
    /// input port appeared as a sink.
    PortMisuse {
        /// The offending port primitive.
        port: PrimitiveId,
        /// Explanation of the misuse.
        reason: String,
    },
    /// Validation found a primitive that is neither driven nor driving.
    DanglingPrimitive(PrimitiveId),
    /// VNL text could not be parsed.
    Parse {
        /// 1-based line number of the offending line (0 for end-of-input).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The netlist cannot be serialized to VNL (e.g. a name contains
    /// whitespace).
    Unserializable(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownPrimitive(id) => write!(f, "unknown primitive {id}"),
            NetlistError::UnknownNet(id) => write!(f, "unknown net {id}"),
            NetlistError::EmptyNet => write!(f, "net has no sinks"),
            NetlistError::ZeroWidthNet => write!(f, "net has zero bit width"),
            NetlistError::PortMisuse { port, reason } => {
                write!(f, "port {port} misused: {reason}")
            }
            NetlistError::DanglingPrimitive(id) => {
                write!(f, "primitive {id} is not connected to any net")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "VNL parse error at line {line}: {message}")
            }
            NetlistError::Unserializable(msg) => write!(f, "cannot serialize to VNL: {msg}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }

    #[test]
    fn display_nonempty() {
        assert!(!NetlistError::EmptyNet.to_string().is_empty());
    }
}
