//! Property-based tests of the netlist IR and dataflow-graph view.

use proptest::prelude::*;
use vital_netlist::hls::{synthesize, AppSpec, Operator};
use vital_netlist::{DataflowGraph, Netlist, PrimitiveId, PrimitiveKind};

fn arb_operator() -> impl Strategy<Value = Operator> {
    prop_oneof![
        (1u32..40).prop_map(|pes| Operator::MacArray { pes }),
        (1u32..400, 1u32..5).prop_map(|(kb, banks)| Operator::Buffer { kb, banks }),
        (1u32..80).prop_map(|slices| Operator::Pipeline { slices }),
        (1u32..40, 0u32..8, 0u32..4).prop_map(|(slices, dsps, brams)| Operator::Custom {
            slices,
            dsps,
            brams
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = AppSpec> {
    (prop::collection::vec(arb_operator(), 1..8), any::<u64>()).prop_map(|(ops, seed)| {
        let mut spec = AppSpec::new("prop");
        let ids: Vec<_> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| spec.add_operator(format!("op{i}"), op))
            .collect();
        // Chain + a few extra forward edges derived from the seed.
        for w in ids.windows(2) {
            spec.add_edge(w[0], w[1], 32).unwrap();
        }
        if ids.len() > 2 && seed % 2 == 0 {
            spec.add_edge(ids[0], ids[ids.len() - 1], 64).unwrap();
        }
        spec.add_input("in", ids[0], 64).unwrap();
        spec.add_output("out", *ids.last().unwrap(), 64).unwrap();
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Synthesis always yields a structurally valid netlist whose resources
    /// match the specification's estimate for estimate-exact operators.
    #[test]
    fn synthesis_is_valid_and_conserves_resources(spec in arb_spec()) {
        let netlist = synthesize(&spec).unwrap();
        prop_assert!(netlist.validate().is_ok());
        let r = netlist.resource_usage();
        let est = spec.resource_estimate();
        // DSP and BRAM estimates are exact for every operator.
        prop_assert_eq!(r.dsp, est.dsp);
        prop_assert_eq!(r.bram_kb, est.bram_kb);
        // LUTs never exceed the estimate (Buffer banks may round down).
        prop_assert!(r.lut <= est.lut);
    }

    /// The dataflow graph is symmetric: every undirected edge appears in
    /// both adjacency lists with the same accumulated weight, and degree
    /// sums equal twice the edge sum.
    #[test]
    fn dfg_symmetry(spec in arb_spec()) {
        let netlist = synthesize(&spec).unwrap();
        let g = DataflowGraph::from_netlist(&netlist);
        let mut degree_sum = 0u64;
        for i in 0..g.node_count() {
            let p = PrimitiveId::new(i as u32);
            degree_sum += g.degree_bits(p);
            for e in g.neighbors(p) {
                let back = g
                    .neighbors(e.other)
                    .iter()
                    .find(|b| b.other == p)
                    .map(|b| b.bits);
                prop_assert_eq!(back, Some(e.bits));
            }
        }
        let edge_sum: u64 = g.undirected_edges().map(|(_, _, w)| w).sum();
        prop_assert_eq!(degree_sum, 2 * edge_sum);
    }

    /// Stats are internally consistent with direct recomputation.
    #[test]
    fn stats_consistency(spec in arb_spec()) {
        let netlist = synthesize(&spec).unwrap();
        let s = netlist.stats();
        prop_assert_eq!(s.primitives, netlist.primitive_count());
        prop_assert_eq!(s.nets, netlist.net_count());
        prop_assert_eq!(s.resources, netlist.resource_usage());
        prop_assert_eq!(s.io_ports, netlist.io_ports().count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// VNL serialization round-trips every synthesized netlist exactly.
    #[test]
    fn vnl_roundtrip(spec in arb_spec()) {
        let netlist = synthesize(&spec).unwrap();
        let text = vital_netlist::text::to_vnl(&netlist).unwrap();
        let back = vital_netlist::text::from_vnl(&text).unwrap();
        prop_assert_eq!(netlist, back);
    }
}

proptest! {
    /// Hand-built netlists: connect never corrupts earlier state on error.
    #[test]
    fn failed_connect_leaves_netlist_unchanged(bits in 0u32..4, n_sinks in 0usize..3) {
        let mut n = Netlist::new("t");
        let a = n.add_primitive(PrimitiveKind::lut(6), "a");
        let b = n.add_primitive(PrimitiveKind::lut(6), "b");
        n.connect(a, [b], 8).unwrap();
        let before_nets = n.net_count();
        let sinks: Vec<PrimitiveId> = std::iter::repeat_n(b, n_sinks).collect();
        let result = n.connect(a, sinks.clone(), bits);
        if bits == 0 || sinks.is_empty() {
            prop_assert!(result.is_err());
            prop_assert_eq!(n.net_count(), before_nets);
        } else {
            prop_assert!(result.is_ok());
        }
    }
}
