//! Comparison systems for the paper's evaluation (§5.2, §6.2):
//!
//! * [`PerDeviceBaseline`] — the management method of existing FPGA clouds
//!   (e.g. AWS F1): one physical FPGA allocated *exhaustively* to one
//!   application, programmed with a full-device bitstream (paper Fig. 2a).
//! * [`AmorphOsLowLatency`] — the slot-based method (paper Fig. 2b):
//!   FPGAs are split into fixed-size slots; an application occupies a whole
//!   slot regardless of its real size (internal fragmentation), and
//!   applications larger than a slot take the whole device.
//! * [`AmorphOsHighThroughput`] — AmorphOS's high-throughput mode (paper
//!   Fig. 2c): multiple applications are combined into one full-device
//!   image, achieving fine-grained sharing *within* one FPGA, but (a) every
//!   deployment reprograms the whole device, pausing co-runners, (b) no
//!   application can span FPGAs, and (c) every application combination must
//!   be compiled offline — [`count_feasible_combinations`] models that
//!   compile-time explosion (§5.4 mentions "hundreds of combinations").
//! * [`IsaElastic`] — instruction-level virtualization (the Tsinghua
//!   FCCM'20 design, `vital-isa`): a static accelerator template whose
//!   compute tiles switch tenants by instruction-stream pointer, so
//!   capacity changes cost micro-seconds and the policy time-slices on a
//!   quantum 50× finer than ViTAL's.
//!
//! All of these implement [`vital_cluster::Scheduler`] so they run on the
//! same discrete-event simulator as ViTAL's policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vital_cluster::{ClusterView, Deployment, PendingRequest, ReconfigKind, Scheduler};
use vital_fabric::BlockAddr;

/// The existing-cloud baseline: whole-FPGA exhaustive allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerDeviceBaseline;

impl PerDeviceBaseline {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        PerDeviceBaseline
    }
}

impl Scheduler for PerDeviceBaseline {
    fn name(&self) -> &str {
        "per-device-baseline"
    }

    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
        let mut out = Vec::new();
        let mut idle: Vec<usize> = (0..view.fpga_count())
            .filter(|&f| view.fpga_idle(f))
            .collect();
        for p in pending {
            // Every request gets a whole device, however small the app is.
            let Some(f) = idle.pop() else { break };
            out.push(Deployment {
                request: p.request.id,
                blocks: view.free_blocks_of(f),
                reconfig: ReconfigKind::FullDevice,
            });
        }
        out
    }
}

/// The slot-based method (including AmorphOS's low-latency mode).
#[derive(Debug, Clone, Copy)]
pub struct AmorphOsLowLatency {
    slots_per_fpga: usize,
}

impl AmorphOsLowLatency {
    /// Creates the policy with the conventional two slots per FPGA.
    pub fn new() -> Self {
        AmorphOsLowLatency { slots_per_fpga: 2 }
    }

    /// Creates the policy with an explicit slot count per FPGA.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_fpga` is zero.
    pub fn with_slots(slots_per_fpga: usize) -> Self {
        assert!(slots_per_fpga > 0, "need at least one slot");
        AmorphOsLowLatency { slots_per_fpga }
    }

    fn slot_blocks(&self, blocks_per_fpga: usize) -> usize {
        blocks_per_fpga.div_ceil(self.slots_per_fpga)
    }
}

impl Default for AmorphOsLowLatency {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for AmorphOsLowLatency {
    fn name(&self) -> &str {
        "amorphos-low-latency"
    }

    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
        let mut out = Vec::new();
        // Track blocks consumed by this pass.
        let mut taken: Vec<Vec<BlockAddr>> = (0..view.fpga_count())
            .map(|f| view.free_blocks_of(f))
            .collect();
        for p in pending {
            let need = p.request.blocks_needed as usize;
            let max_slot = (0..view.fpga_count())
                .map(|f| self.slot_blocks(view.blocks_per_fpga_of(f)))
                .max()
                .unwrap_or(0);
            if need > max_slot {
                // Larger than a slot: needs the whole device.
                if let Some(f) = (0..view.fpga_count())
                    .find(|&f| view.fpga_idle(f) && taken[f].len() == view.blocks_per_fpga_of(f))
                {
                    out.push(Deployment {
                        request: p.request.id,
                        blocks: std::mem::take(&mut taken[f]),
                        reconfig: ReconfigKind::FullDevice,
                    });
                }
                continue;
            }
            // One whole slot, aligned to slot boundaries: the app gets
            // slot_size blocks even if it needs fewer (internal
            // fragmentation of the slot-based method).
            #[allow(clippy::needless_range_loop)] // `f` indexes both the view and `taken`
            'fpga: for f in 0..view.fpga_count() {
                let blocks_here = view.blocks_per_fpga_of(f);
                let slot_size = self.slot_blocks(blocks_here.max(1));
                for s in 0..self.slots_per_fpga {
                    let lo = s * slot_size;
                    let hi = (lo + slot_size).min(blocks_here);
                    if hi - lo < need {
                        continue;
                    }
                    let slot_addrs: Vec<BlockAddr> = taken[f]
                        .iter()
                        .copied()
                        .filter(|b| {
                            let i = b.block.index() as usize;
                            i >= lo && i < hi
                        })
                        .collect();
                    if slot_addrs.len() == hi - lo {
                        taken[f].retain(|b| !slot_addrs.contains(b));
                        out.push(Deployment {
                            request: p.request.id,
                            blocks: slot_addrs,
                            reconfig: ReconfigKind::PartialPerBlock,
                        });
                        break 'fpga;
                    }
                }
            }
        }
        out
    }
}

/// AmorphOS's high-throughput mode: fine-grained sharing on one FPGA via
/// offline-combined full-device images.
#[derive(Debug, Clone, Copy, Default)]
pub struct AmorphOsHighThroughput;

impl AmorphOsHighThroughput {
    /// Creates the policy.
    pub fn new() -> Self {
        AmorphOsHighThroughput
    }
}

impl Scheduler for AmorphOsHighThroughput {
    fn name(&self) -> &str {
        "amorphos-high-throughput"
    }

    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
        let mut out = Vec::new();
        let mut free: Vec<Vec<BlockAddr>> = (0..view.fpga_count())
            .map(|f| view.free_blocks_of(f))
            .collect();
        for p in pending {
            let need = p.request.blocks_needed as usize;
            // Best fit on a single FPGA — combining with whatever already
            // runs there. No multi-FPGA support: requests larger than any
            // single FPGA's free space wait.
            let best = (0..free.len())
                .filter(|&f| free[f].len() >= need)
                .min_by_key(|&f| free[f].len());
            let Some(f) = best else { continue };
            let blocks: Vec<BlockAddr> = free[f].drain(..need).collect();
            out.push(Deployment {
                request: p.request.id,
                blocks,
                // The combined image is a full-device bitstream: deploying
                // it disturbs the co-running applications on that FPGA.
                reconfig: ReconfigKind::FullDevice,
            });
        }
        out
    }
}

/// ISA-level virtualization (the Tsinghua FCCM'20 design reproduced by
/// `vital-isa`), expressed as a cluster scheduling policy so it runs
/// head-to-head with ViTAL on the same discrete-event simulator.
///
/// The fabric holds a static accelerator template, so each "block" is a
/// resident compute tile: deployments carry
/// [`ReconfigKind::Instruction`] (micro-second stream-pointer switches
/// instead of millisecond partial reconfiguration) and the policy
/// declares a fine time-slicing quantum — preemption is cheap when a
/// capacity change costs µs, which is exactly the elasticity argument
/// the `fig_isa_elastic` bench quantifies.
#[derive(Debug, Clone, Copy)]
pub struct IsaElastic {
    quantum_s: f64,
}

/// Default ISA scheduling quantum (10 ms): three orders of magnitude
/// finer than ViTAL's 0.5 s slice because switching costs µs, not ms.
pub const ISA_QUANTUM_S: f64 = 0.01;

impl IsaElastic {
    /// Creates the policy with the default 10 ms quantum.
    pub fn new() -> Self {
        IsaElastic {
            quantum_s: ISA_QUANTUM_S,
        }
    }

    /// Creates the policy with an explicit quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_s` is not positive.
    pub fn with_quantum(quantum_s: f64) -> Self {
        assert!(quantum_s > 0.0, "quantum must be positive");
        IsaElastic { quantum_s }
    }
}

impl Default for IsaElastic {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for IsaElastic {
    fn name(&self) -> &str {
        "isa-elastic"
    }

    fn quantum_s(&self) -> Option<f64> {
        Some(self.quantum_s)
    }

    fn schedule(&mut self, view: &ClusterView, pending: &[PendingRequest]) -> Vec<Deployment> {
        let mut out = Vec::new();
        let mut free: Vec<Vec<BlockAddr>> = (0..view.fpga_count())
            .map(|f| view.free_blocks_of(f))
            .collect();
        for p in pending {
            let need = p.request.blocks_needed as usize;
            // Best fit on a single FPGA first (tiles sharing a device share
            // the template's on-chip interconnect)...
            if let Some(f) = (0..free.len())
                .filter(|&f| free[f].len() >= need)
                .min_by_key(|&f| free[f].len())
            {
                let blocks: Vec<BlockAddr> = free[f].drain(..need).collect();
                out.push(Deployment {
                    request: p.request.id,
                    blocks,
                    reconfig: ReconfigKind::Instruction,
                });
                continue;
            }
            // ...otherwise span: every FPGA runs the same template, so an
            // instruction stream can tile across devices.
            let total_free: usize = free.iter().map(Vec::len).sum();
            if total_free < need {
                continue;
            }
            let mut blocks = Vec::with_capacity(need);
            for f in free.iter_mut() {
                let take = (need - blocks.len()).min(f.len());
                blocks.extend(f.drain(..take));
                if blocks.len() == need {
                    break;
                }
            }
            out.push(Deployment {
                request: p.request.id,
                blocks,
                reconfig: ReconfigKind::Instruction,
            });
        }
        out
    }
}

/// Counts the application combinations AmorphOS's high-throughput mode must
/// compile offline: subsets of the library (each app at most once, up to
/// `max_apps` co-residents) whose combined block demand fits one FPGA.
///
/// The count is capped at `u64::MAX` arithmetic but explodes combinatorially
/// — exactly the offline-compilation burden the paper contrasts with
/// ViTAL's one-compile-per-app (§5.4).
pub fn count_feasible_combinations(app_blocks: &[u32], capacity: u32, max_apps: usize) -> u64 {
    fn dfs(blocks: &[u32], start: usize, left: u32, depth: usize, max_depth: usize) -> u64 {
        if depth == max_depth {
            return 0;
        }
        let mut count = 0u64;
        for i in start..blocks.len() {
            if blocks[i] <= left {
                count += 1 + dfs(blocks, i + 1, left - blocks[i], depth + 1, max_depth);
            }
        }
        count
    }
    dfs(app_blocks, 0, capacity, 0, max_apps.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_cluster::{AppRequest, ClusterConfig, ClusterSim};

    fn mixed_workload(n: u64) -> Vec<AppRequest> {
        (0..n)
            .map(|i| {
                let blocks = [1u32, 3, 5, 8][i as usize % 4];
                AppRequest::new(i, format!("app{i}"), blocks, 1.0e9).arriving_at(i as f64 * 0.25)
            })
            .collect()
    }

    #[test]
    fn baseline_serializes_per_device() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut PerDeviceBaseline::new(), mixed_workload(8));
        assert_eq!(report.completed(), 8);
        // Whole device per app: effective utilization is poor.
        assert!(report.effective_utilization < 0.5);
        // Never spans FPGAs.
        assert_eq!(report.spanning_fraction(), 0.0);
        for o in &report.outcomes {
            assert_eq!(o.blocks_allocated, 15);
        }
    }

    #[test]
    fn slot_based_allocates_whole_slots() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut AmorphOsLowLatency::new(), mixed_workload(8));
        assert_eq!(report.completed(), 8);
        for o in &report.outcomes {
            // Slots for 15 blocks / 2 slots: 8 and 7 blocks; whole-device
            // allocations take all 15.
            assert!(matches!(o.blocks_allocated, 7 | 8 | 15));
        }
    }

    #[test]
    fn high_throughput_shares_one_fpga_fine_grained() {
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut AmorphOsHighThroughput::new(), mixed_workload(8));
        assert_eq!(report.completed(), 8);
        // Allocation matches need exactly...
        for o in &report.outcomes {
            assert_eq!(o.blocks_allocated, o.blocks_needed);
            // ...but never spans devices.
            assert_eq!(o.fpgas_used, 1);
        }
    }

    #[test]
    fn ranking_matches_paper_fig2() {
        // Response time: HT < slot-based < per-device on a mixed workload
        // with queueing pressure.
        let reqs = mixed_workload(24);
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let base = sim.run(&mut PerDeviceBaseline::new(), reqs.clone());
        let slot = sim.run(&mut AmorphOsLowLatency::new(), reqs.clone());
        let ht = sim.run(&mut AmorphOsHighThroughput::new(), reqs);
        assert!(
            ht.avg_response_s() < base.avg_response_s(),
            "HT {} vs baseline {}",
            ht.avg_response_s(),
            base.avg_response_s()
        );
        assert!(
            slot.avg_response_s() < base.avg_response_s(),
            "slot {} vs baseline {}",
            slot.avg_response_s(),
            base.avg_response_s()
        );
    }

    #[test]
    fn isa_elastic_completes_and_swaps_in_microseconds() {
        // Oversubscribe so the quantum machinery preempts: every swap-in
        // must cost micro-seconds (an instruction-stream switch), not the
        // milliseconds of a partial reconfiguration.
        // Twelve 10-block jobs at t=0 on a 60-block pool: half must queue,
        // so quanta expire with work pending.
        let reqs: Vec<AppRequest> = (0..12)
            .map(|i| AppRequest::new(i, format!("j{i}"), 10, 1.0e9))
            .collect();
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut IsaElastic::new(), reqs);
        assert_eq!(report.completed(), 12);
        assert!(report.preemptions > 0, "expected time-sliced preemptions");
        let per_swap = report.swap_reconfig_s / report.preemptions as f64;
        assert!(
            per_swap < ClusterConfig::paper_cluster().per_block_reconfig_s / 10.0,
            "per-swap cost {per_swap} should be far below one block PR"
        );
    }

    #[test]
    fn isa_elastic_spans_when_no_single_fpga_fits() {
        // Four 8-block tenants leave 7 free blocks per FPGA: the template
        // is uniform, so a fifth 14-block request tiles across devices.
        let mut reqs: Vec<AppRequest> = (0..4)
            .map(|i| AppRequest::new(i, format!("t{i}"), 8, 1.0e9))
            .collect();
        reqs.push(AppRequest::new(4, "wide", 14, 1.0e9));
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut IsaElastic::new(), reqs);
        assert_eq!(report.completed(), 5);
        let big = report.outcomes.iter().find(|o| o.name == "wide").unwrap();
        assert_eq!(big.blocks_allocated, 14);
        assert!(big.spanned_fpgas());
    }

    #[test]
    fn combination_count_explodes() {
        // 8 app variants on a 15-block device: many more combined images
        // than the 8 single-app images ViTAL compiles.
        let blocks = [1, 1, 3, 3, 5, 5, 8, 10];
        let combos = count_feasible_combinations(&blocks, 15, 8);
        assert!(
            combos > 10 * blocks.len() as u64,
            "combos = {combos} for {} single-app images",
            blocks.len()
        );
        // One app alone is one "combination" each.
        assert_eq!(count_feasible_combinations(&[4], 15, 1), 1);
        // Nothing fits: zero.
        assert_eq!(count_feasible_combinations(&[20], 15, 4), 0);
    }

    #[test]
    fn oversized_requests_wait_under_slot_policy() {
        // A 10-block app exceeds the 8-block slot: it must take a whole
        // idle device.
        let reqs = vec![AppRequest::new(0, "big", 10, 1.0e9)];
        let sim = ClusterSim::new(ClusterConfig::paper_cluster());
        let report = sim.run(&mut AmorphOsLowLatency::new(), reqs);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.outcomes[0].blocks_allocated, 15);
    }
}
