//! `vitalctl` — a scriptable console for the ViTAL control plane.
//!
//! Every command is one typed [`ControlRequest`] answered by one
//! [`ControlResponse`] — the unified request API of DESIGN.md §12. By
//! default the console runs an **in-process** `vitald` (daemon core plus
//! controller in this process); with `--connect HOST:PORT` the same
//! commands go to a **remote** daemon over the wire protocol instead, and
//! the rendering is identical because the response types are.
//!
//! Reads commands from stdin (one per line; `#` comments allowed):
//!
//! ```text
//! compile  <name> <S|M|L>    # prepare a Table 2 benchmark (compile + register)
//! deploy   <name> [quota-mb] # allocate blocks + partial reconfiguration
//! deploy   <name> --isa      # deploy onto the shared ISA tile pool instead
//! scale    <tenant-id> <tiles> # elastically resize an ISA tenant's tile share
//! undeploy <tenant-id>       # tear a deployment down
//! checkpoint <tenant-id>     # quiesce + park a checkpoint capsule
//! checkpoint export <tenant-id> <file>  # write the portable capsule (local only)
//! checkpoint import <file>   # restore a portable capsule (local only)
//! restore  <tenant-id>       # re-admit a checkpointed tenant losslessly
//! suspend/resume <tenant-id> # legacy aliases for checkpoint/restore
//! migrate  <tenant-id> [--portable|--auto]  # live-migrate (checkpoint + restore)
//! defrag                     # migrate spanning tenants onto fewer FPGAs
//! fail     <fpga>            # crash an FPGA (tenants migrate or die)
//! recover  <fpga>            # bring a failed FPGA back online
//! evacuate <fpga>            # drain an FPGA by live migration
//! status                     # occupancy map + live tenants
//! quit
//! ```
//!
//! Example:
//!
//! ```text
//! printf 'compile lenet S\ndeploy lenet-S\nstatus\nquit\n' | cargo run --bin vitalctl
//! ```

use std::io::BufRead;
use std::sync::Arc;

use vital::runtime::{
    ControlRequest, ControlResponse, DeployRequest, MigratePolicy, PortableCheckpoint,
    RuntimeConfig, SystemController,
};
use vital::service::{
    benchmark_resolver, RemoteClient, ServiceClient, ServiceConfig, Vitald, WireFormat,
};
use vital::telemetry::Telemetry;

/// Where commands are executed: an in-process daemon core, or a remote
/// `vitald` over TCP. Both speak `ControlRequest` → `ControlResponse`.
enum Backend {
    Local {
        /// Kept alive for the session; dropped (drained) on exit.
        _vitald: Vitald,
        client: ServiceClient,
        /// Direct controller handle for the capsule file commands
        /// (`checkpoint export`/`import`), which move state the wire
        /// protocol does not carry.
        controller: Arc<SystemController>,
    },
    Remote(RemoteClient),
}

impl Backend {
    fn call(&self, req: ControlRequest) -> ControlResponse {
        match self {
            Backend::Local { client, .. } => client.call(req),
            Backend::Remote(remote) => remote
                .call(req)
                .unwrap_or_else(|e| ControlResponse::Err((&e).into())),
        }
    }

    fn controller(&self) -> Option<&SystemController> {
        match self {
            Backend::Local { controller, .. } => Some(controller),
            Backend::Remote(_) => None,
        }
    }
}

/// `checkpoint export <tenant-id> <file>`: lift the parked capsule into
/// the portable format and write it as JSON.
fn export_checkpoint(backend: &Backend, tenant: u64, path: &str) {
    let Some(controller) = backend.controller() else {
        println!("checkpoint export needs a local session (capsules do not cross the wire)");
        return;
    };
    let portable = match controller.portable_of(vital::periph::TenantId::new(tenant)) {
        Ok(p) => p,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    match portable.to_json() {
        Ok(json) => match std::fs::write(path, json) {
            Ok(()) => println!(
                "tenant{tenant} exported to {path}: {} scan bit(s), {} flit(s), {} DRAM byte(s), \
                 geometry {}",
                portable.scan_bits(),
                portable.total_flits(),
                portable.dram_bytes(),
                portable.source_geometry
            ),
            Err(e) => println!("error: cannot write {path}: {e}"),
        },
        Err(e) => println!("error: cannot serialize capsule: {e}"),
    }
}

/// `checkpoint import <file>`: parse a portable capsule and restore it
/// onto this controller's fabric (recompiling the app if needed).
fn import_checkpoint(backend: &Backend, path: &str) {
    let Some(controller) = backend.controller() else {
        println!("checkpoint import needs a local session (capsules do not cross the wire)");
        return;
    };
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            println!("error: cannot read {path}: {e}");
            return;
        }
    };
    let portable = match PortableCheckpoint::from_json(&json) {
        Ok(p) => p,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    match controller.restore_portable(&portable) {
        Ok(handle) => println!(
            "tenant{} restored from {path} (source geometry {}, now on {}) on {} FPGA(s)",
            portable.tenant.raw(),
            portable.source_geometry,
            controller.geometry(),
            handle.fpga_count()
        ),
        Err(e) => println!("error: {e}"),
    }
}

fn parse_tenant(token: Option<&str>) -> Option<u64> {
    token.and_then(|t| t.trim_start_matches("tenant").parse::<u64>().ok())
}

fn render(resp: &ControlResponse) {
    match resp {
        ControlResponse::Deployed(s) => println!(
            "deployed {} as tenant{} on {} FPGA(s) ({} blocks, primary fpga{}, \
             reconfig {} us, {:.1} Gb/s)",
            s.app, s.tenant, s.fpgas, s.blocks, s.primary_fpga, s.reconfig_us, s.granted_gbps
        ),
        ControlResponse::Undeployed { tenant } => println!("tenant{tenant} undeployed"),
        ControlResponse::Scaled(s) => println!(
            "tenant{} rescaled {} -> {} tile(s) in {} us (stream switch, no reconfiguration)",
            s.tenant, s.tiles_before, s.tiles_after, s.realloc_us
        ),
        ControlResponse::Suspended(s) => {
            let portability = if s.portable {
                format!(
                    ", portable ({} scan bit(s), capsule {})",
                    s.scan_bits, s.capsule_version
                )
            } else {
                String::new()
            };
            println!(
                "tenant{} checkpointed: {} flit(s) in {} channel(s), {} DRAM byte(s) \
                 parked{portability}",
                s.tenant, s.flits, s.channels, s.dram_bytes
            );
        }
        ControlResponse::Resumed(s) => println!(
            "tenant{} resumed on {} FPGA(s), reconfig {} us",
            s.tenant, s.fpgas, s.reconfig_us
        ),
        ControlResponse::Migrated(m) => println!(
            "migrated tenant{} ({:?}): {} -> {} FPGA(s), hop cost {} -> {}, reconfig {} us",
            m.tenant,
            m.policy,
            m.fpgas_before,
            m.fpgas_after,
            m.hop_cost_before,
            m.hop_cost_after,
            m.reconfig_us
        ),
        ControlResponse::Evacuated(e) => println!(
            "fpga{} draining: {} migrated, {} could not move",
            e.fpga,
            e.migrated.len(),
            e.unmoved.len()
        ),
        ControlResponse::FpgaFailed(r) => println!(
            "fpga{} offline: {} tenant(s) migrated, {} torn down",
            r.fpga,
            r.migrated.len(),
            r.torn_down.len()
        ),
        ControlResponse::Recovered { fpga } => println!("fpga{fpga} back online"),
        ControlResponse::Defragmented { migrations } => {
            if migrations.is_empty() {
                println!("nothing to defragment");
            } else {
                for m in migrations {
                    println!(
                        "migrated tenant{}: {} -> {} FPGA(s), reconfig {} us",
                        m.tenant, m.fpgas_before, m.fpgas_after, m.reconfig_us
                    );
                }
            }
        }
        ControlResponse::Status(s) => {
            println!("cluster occupancy ('.' = free, digit = tenant id % 10):");
            for f in &s.fpgas {
                let row: String = f
                    .blocks
                    .iter()
                    .map(|&t| {
                        if t == 0 {
                            '.'
                        } else {
                            char::from_digit((t % 10) as u32, 10).unwrap_or('?')
                        }
                    })
                    .collect();
                println!("  fpga{}: {row}  [{}]", f.fpga, f.health);
            }
            let ids = |v: &[u64]| {
                v.iter()
                    .map(|t| format!("tenant{t}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!(
                "{} blocks free, {} live tenant(s): {}",
                s.total_free,
                s.live_tenants.len(),
                ids(&s.live_tenants)
            );
            if s.isa_tiles_total > 0 {
                println!(
                    "isa pool: {}/{} tile(s) free, {} isa tenant(s): {}",
                    s.isa_tiles_free,
                    s.isa_tiles_total,
                    s.isa_tenants.len(),
                    ids(&s.isa_tenants)
                );
            }
            if !s.suspended_tenants.is_empty() {
                println!(
                    "{} suspended tenant(s): {}",
                    s.suspended_tenants.len(),
                    ids(&s.suspended_tenants)
                );
            }
            if s.fpga_failures + s.evacuations > 0 {
                println!(
                    "failures: {} crash(es), {} recover(ies), {} evacuation(s); \
                     {} tenant(s) migrated, {} torn down",
                    s.fpga_failures,
                    s.fpga_recoveries,
                    s.evacuations,
                    s.tenants_migrated,
                    s.tenants_torn_down
                );
            }
        }
        ControlResponse::Prepared { app, cache_hit } => {
            if *cache_hit {
                println!("{app} already registered");
            } else {
                println!("{app} compiled and registered");
            }
        }
        ControlResponse::Err(e) => println!("error: {e}"),
        other => println!("{other:?}"),
    }
}

fn main() {
    let mut connect: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr),
                None => {
                    eprintln!("vitalctl: --connect needs HOST:PORT");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("vitalctl [--connect HOST:PORT]  (commands on stdin; see source header)");
                return;
            }
            other => {
                eprintln!("vitalctl: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let backend = match &connect {
        // JSON frames: keeps `vitalctl --connect` wire-compatible with
        // older daemons (the server answers in the request's format).
        Some(addr) => match RemoteClient::connect_with(addr, WireFormat::Json) {
            Ok(remote) => {
                println!("vitalctl: connected to vitald at {addr}");
                Backend::Remote(remote)
            }
            Err(e) => {
                eprintln!("vitalctl: cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let controller = Arc::new(
                SystemController::new(RuntimeConfig::paper_cluster())
                    .with_telemetry(Telemetry::recording())
                    // A paper-pool ISA template so `deploy --isa` and
                    // `scale` work out of the box.
                    .with_isa_backend(vital::isa::IsaTemplate::paper_pool().tiles()),
            );
            controller.set_app_resolver(benchmark_resolver());
            let vitald = Vitald::spawn(controller.clone(), ServiceConfig::default());
            let client = vitald.client();
            println!(
                "vitalctl: in-process vitald over the paper cluster \
                 (use --connect HOST:PORT for a remote daemon)"
            );
            Backend::Local {
                _vitald: vitald,
                client,
                controller,
            }
        }
    };

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let cmd = tokens.next().unwrap_or("");
        let req = match cmd {
            "compile" => {
                let (Some(name), Some(size)) = (tokens.next(), tokens.next()) else {
                    println!("usage: compile <benchmark> <S|M|L>");
                    continue;
                };
                let size = size.to_ascii_uppercase();
                if !matches!(size.as_str(), "S" | "M" | "L") {
                    println!("unknown size {size:?} (use S, M or L)");
                    continue;
                }
                ControlRequest::Prepare {
                    app: format!("{name}-{size}"),
                }
            }
            "deploy" => {
                let Some(name) = tokens.next() else {
                    println!("usage: deploy <name> [quota-mb] [--isa]");
                    continue;
                };
                let rest: Vec<&str> = tokens.by_ref().collect();
                if rest.contains(&"--isa") {
                    ControlRequest::Deploy(DeployRequest::isa(name))
                } else {
                    let mut dr = DeployRequest::app(name);
                    if let Some(mb) = rest.first().and_then(|t| t.parse::<u64>().ok()) {
                        dr = dr.with_quota_bytes(mb << 20);
                    }
                    ControlRequest::Deploy(dr)
                }
            }
            "scale" => {
                let tenant = parse_tenant(tokens.next());
                let tiles = tokens.next().and_then(|t| t.parse::<u32>().ok());
                match (tenant, tiles) {
                    (Some(tenant), Some(tiles)) => ControlRequest::Scale { tenant, tiles },
                    _ => {
                        println!("usage: scale <tenant-id> <tiles>");
                        continue;
                    }
                }
            }
            "undeploy" => match parse_tenant(tokens.next()) {
                Some(tenant) => ControlRequest::Undeploy { tenant },
                None => {
                    println!("usage: undeploy <tenant-id>");
                    continue;
                }
            },
            "checkpoint" | "suspend" => match tokens.next() {
                Some("export") => {
                    match (parse_tenant(tokens.next()), tokens.next()) {
                        (Some(tenant), Some(path)) => export_checkpoint(&backend, tenant, path),
                        _ => println!("usage: checkpoint export <tenant-id> <file>"),
                    }
                    continue;
                }
                Some("import") => {
                    match tokens.next() {
                        Some(path) => import_checkpoint(&backend, path),
                        None => println!("usage: checkpoint import <file>"),
                    }
                    continue;
                }
                token => match parse_tenant(token) {
                    Some(tenant) => ControlRequest::Checkpoint { tenant },
                    None => {
                        println!("usage: checkpoint <tenant-id> | export <tenant-id> <file> | import <file>");
                        continue;
                    }
                },
            },
            "restore" | "resume" => match parse_tenant(tokens.next()) {
                Some(tenant) => ControlRequest::Restore { tenant },
                None => {
                    println!("usage: restore <tenant-id>");
                    continue;
                }
            },
            "migrate" => match parse_tenant(tokens.next()) {
                Some(tenant) => {
                    let policy = match tokens.next() {
                        Some("--portable") => MigratePolicy::Portable,
                        Some("--auto") => MigratePolicy::Auto,
                        Some(other) => {
                            println!("unknown migrate flag {other:?} (use --portable or --auto)");
                            continue;
                        }
                        None => MigratePolicy::SameGeometry,
                    };
                    ControlRequest::Migrate { tenant, policy }
                }
                None => {
                    println!("usage: migrate <tenant-id> [--portable|--auto]");
                    continue;
                }
            },
            "defrag" => ControlRequest::Defragment,
            "fail" => match tokens.next().and_then(|t| t.parse::<usize>().ok()) {
                Some(fpga) => ControlRequest::Fail { fpga },
                None => {
                    println!("usage: fail <fpga>");
                    continue;
                }
            },
            "recover" => match tokens.next().and_then(|t| t.parse::<usize>().ok()) {
                Some(fpga) => ControlRequest::Recover { fpga },
                None => {
                    println!("usage: recover <fpga>");
                    continue;
                }
            },
            "evacuate" => match tokens.next().and_then(|t| t.parse::<usize>().ok()) {
                Some(fpga) => ControlRequest::Evacuate { fpga },
                None => {
                    println!("usage: evacuate <fpga>");
                    continue;
                }
            },
            "status" => ControlRequest::Status,
            "quit" | "exit" => break,
            other => {
                println!(
                    "unknown command {other:?} (compile/deploy/scale/undeploy/checkpoint/restore/\
                     migrate/defrag/fail/recover/evacuate/status/quit)"
                );
                continue;
            }
        };
        render(&backend.call(req));
    }
    println!("bye");
}
