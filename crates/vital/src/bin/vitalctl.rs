//! `vitalctl` — a scriptable console for the ViTAL system controller
//! (the API surface of paper Fig. 6, driven interactively).
//!
//! Reads commands from stdin (one per line; `#` comments allowed):
//!
//! ```text
//! compile  <name> <S|M|L>    # compile a Table 2 benchmark and register it
//! deploy   <name>            # allocate blocks + partial reconfiguration
//! undeploy <tenant-id>       # tear a deployment down
//! suspend  <tenant-id>       # quiesce + park a checkpoint capsule
//! resume   <tenant-id>       # restore a suspended tenant losslessly
//! migrate  <tenant-id>       # live-migrate (suspend + resume in one step)
//! defrag                     # migrate spanning tenants onto fewer FPGAs
//! fail     <fpga>            # crash an FPGA (tenants migrate or die)
//! recover  <fpga>            # bring a failed FPGA back online
//! evacuate <fpga>            # drain an FPGA by live migration
//! status                     # occupancy map + live tenants
//! quit
//! ```
//!
//! Example:
//!
//! ```text
//! printf 'compile lenet S\ndeploy lenet-S\nstatus\nquit\n' | cargo run --bin vitalctl
//! ```

use std::io::BufRead;

use vital::fabric::{BlockAddr, FpgaId, PhysicalBlockId};
use vital::periph::TenantId;
use vital::prelude::*;
use vital::runtime::BlockState;
use vital::workloads::benchmarks;

fn print_status(stack: &VitalStack) {
    let db = stack.controller().resources();
    println!("cluster occupancy ('.' = free, digit = tenant id % 10):");
    for f in 0..db.fpga_count() {
        let mut row = String::new();
        for b in 0..db.blocks_of(f) {
            let addr = BlockAddr::new(FpgaId::new(f as u32), PhysicalBlockId::new(b as u32));
            row.push(match db.state(addr) {
                Some(BlockState::Active(t)) => {
                    char::from_digit((t.raw() % 10) as u32, 10).unwrap_or('?')
                }
                _ => '.',
            });
        }
        println!("  fpga{f}: {row}");
    }
    let tenants = stack.controller().live_tenants();
    println!(
        "{} blocks free, {} live tenant(s): {}",
        db.total_free(),
        tenants.len(),
        tenants
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let suspended = stack.controller().suspended_tenants();
    if !suspended.is_empty() {
        println!(
            "{} suspended tenant(s): {}",
            suspended.len(),
            suspended
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let stats = stack.controller().failure_stats();
    if stats.fpga_failures + stats.evacuations > 0 {
        println!(
            "failures: {} crash(es), {} recover(ies), {} evacuation(s); \
             {} tenant(s) migrated, {} torn down",
            stats.fpga_failures,
            stats.fpga_recoveries,
            stats.evacuations,
            stats.tenants_migrated,
            stats.tenants_torn_down
        );
    }
}

fn main() {
    let stack = VitalStack::new();
    let suite = benchmarks();
    println!(
        "vitalctl: {} FPGAs x {} blocks; type 'status' or see --help in the source header",
        stack.controller().resources().fpga_count(),
        stack.controller().resources().blocks_per_fpga()
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let cmd = tokens.next().unwrap_or("");
        match cmd {
            "compile" => {
                let (Some(name), Some(size)) = (tokens.next(), tokens.next()) else {
                    println!("usage: compile <benchmark> <S|M|L>");
                    continue;
                };
                let size = match size {
                    "S" | "s" => Size::Small,
                    "M" | "m" => Size::Medium,
                    "L" | "l" => Size::Large,
                    other => {
                        println!("unknown size {other:?} (use S, M or L)");
                        continue;
                    }
                };
                let Some(bench) = suite.iter().find(|b| b.name() == name) else {
                    println!(
                        "unknown benchmark {name:?}; available: {}",
                        suite
                            .iter()
                            .map(|b| b.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    continue;
                };
                let spec = bench.spec(size);
                print!("compiling {} ... ", spec.name());
                match stack.compile_and_register(&spec) {
                    Ok(compiled) => println!(
                        "ok: {} blocks, {:?} compile time",
                        compiled.bitstream().block_count(),
                        compiled.timings().total()
                    ),
                    Err(e) => println!("failed: {e}"),
                }
            }
            "deploy" => {
                let Some(name) = tokens.next() else {
                    println!("usage: deploy <name>");
                    continue;
                };
                match stack.deploy(name) {
                    Ok(h) => println!(
                        "deployed as {} on {} FPGA(s), reconfig {:?}",
                        h.tenant(),
                        h.fpga_count(),
                        h.reconfig_duration()
                    ),
                    Err(e) => println!("deploy failed: {e}"),
                }
            }
            "undeploy" => {
                let tenant = tokens
                    .next()
                    .and_then(|t| t.trim_start_matches("tenant").parse::<u64>().ok());
                let Some(raw) = tenant else {
                    println!("usage: undeploy <tenant-id>");
                    continue;
                };
                match stack.undeploy(TenantId::new(raw)) {
                    Ok(()) => println!("tenant{raw} undeployed"),
                    Err(e) => println!("undeploy failed: {e}"),
                }
            }
            "suspend" => {
                let tenant = tokens
                    .next()
                    .and_then(|t| t.trim_start_matches("tenant").parse::<u64>().ok());
                let Some(raw) = tenant else {
                    println!("usage: suspend <tenant-id>");
                    continue;
                };
                match stack.controller().suspend(TenantId::new(raw)) {
                    Ok(capsule) => println!(
                        "tenant{raw} suspended: {} flit(s) in {} channel(s), digest {}",
                        capsule.total_flits(),
                        capsule.channels.len(),
                        capsule.digest()
                    ),
                    Err(e) => println!("suspend failed: {e}"),
                }
            }
            "resume" => {
                let tenant = tokens
                    .next()
                    .and_then(|t| t.trim_start_matches("tenant").parse::<u64>().ok());
                let Some(raw) = tenant else {
                    println!("usage: resume <tenant-id>");
                    continue;
                };
                match stack.controller().resume(TenantId::new(raw)) {
                    Ok(h) => println!(
                        "tenant{raw} resumed on {} FPGA(s), reconfig {:?}",
                        h.fpga_count(),
                        h.reconfig_duration()
                    ),
                    Err(e) => println!("resume failed: {e}"),
                }
            }
            "migrate" => {
                let tenant = tokens
                    .next()
                    .and_then(|t| t.trim_start_matches("tenant").parse::<u64>().ok());
                let Some(raw) = tenant else {
                    println!("usage: migrate <tenant-id>");
                    continue;
                };
                match stack.controller().migrate_live(TenantId::new(raw)) {
                    Ok(m) => println!(
                        "migrated {}: {} -> {} FPGA(s), hop cost {} -> {}, reconfig {:?}",
                        m.tenant,
                        m.fpgas_before,
                        m.fpgas_after,
                        m.hop_cost_before,
                        m.hop_cost_after,
                        m.reconfig
                    ),
                    Err(e) => println!("migrate failed: {e}"),
                }
            }
            "defrag" => {
                let migrated = stack.controller().defragment();
                if migrated.is_empty() {
                    println!("nothing to defragment");
                } else {
                    for m in &migrated {
                        println!(
                            "migrated {}: {} -> {} FPGA(s), reconfig {:?}",
                            m.tenant, m.fpgas_before, m.fpgas_after, m.reconfig
                        );
                    }
                }
            }
            "fail" => {
                let Some(fpga) = tokens.next().and_then(|t| t.parse::<usize>().ok()) else {
                    println!("usage: fail <fpga>");
                    continue;
                };
                let report = stack.controller().fail_fpga(fpga);
                println!(
                    "fpga{fpga} offline: {} tenant(s) migrated, {} torn down",
                    report.migrated.len(),
                    report.torn_down.len()
                );
            }
            "recover" => {
                let Some(fpga) = tokens.next().and_then(|t| t.parse::<usize>().ok()) else {
                    println!("usage: recover <fpga>");
                    continue;
                };
                stack.controller().recover_fpga(fpga);
                println!("fpga{fpga} back online");
            }
            "evacuate" => {
                let Some(fpga) = tokens.next().and_then(|t| t.parse::<usize>().ok()) else {
                    println!("usage: evacuate <fpga>");
                    continue;
                };
                let report = stack.controller().evacuate(fpga);
                println!(
                    "fpga{fpga} draining: {} migrated, {} could not move",
                    report.migrated.len(),
                    report.unmoved.len()
                );
            }
            "status" => print_status(&stack),
            "quit" | "exit" => break,
            other => {
                println!(
                    "unknown command {other:?} (compile/deploy/undeploy/suspend/resume/\
                     migrate/defrag/fail/recover/evacuate/status/quit)"
                )
            }
        }
    }
    println!("bye");
}
