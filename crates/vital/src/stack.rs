//! The facade tying the compilation layer and the system layer together.

use std::error::Error;
use std::fmt;

use vital_cluster::AppRequest;
use vital_compiler::{CompileError, CompiledApp, Compiler, CompilerConfig};
use vital_netlist::hls::AppSpec;
use vital_netlist::NetlistError;
use vital_periph::TenantId;
use vital_runtime::{CompileOutcome, DeployHandle, RuntimeConfig, RuntimeError, SystemController};

/// Unified error type of the facade.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VitalError {
    /// The compilation flow failed.
    Compile(CompileError),
    /// The runtime (system layer) failed.
    Runtime(RuntimeError),
}

impl fmt::Display for VitalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VitalError::Compile(e) => write!(f, "compile error: {e}"),
            VitalError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl Error for VitalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VitalError::Compile(e) => Some(e),
            VitalError::Runtime(e) => Some(e),
        }
    }
}

impl From<CompileError> for VitalError {
    fn from(e: CompileError) -> Self {
        VitalError::Compile(e)
    }
}

impl From<RuntimeError> for VitalError {
    fn from(e: RuntimeError) -> Self {
        VitalError::Runtime(e)
    }
}

impl From<NetlistError> for VitalError {
    fn from(e: NetlistError) -> Self {
        VitalError::Compile(CompileError::Synthesis(e))
    }
}

/// Configuration of the whole stack.
#[derive(Debug, Clone, Default)]
pub struct StackConfig {
    /// Compilation-layer parameters.
    pub compiler: CompilerConfig,
    /// System-layer parameters.
    pub runtime: RuntimeConfig,
}

/// The assembled ViTAL stack: compiler + system controller.
///
/// See the [crate-level documentation](crate) for a quickstart.
#[derive(Debug)]
pub struct VitalStack {
    compiler: Compiler,
    controller: SystemController,
}

impl VitalStack {
    /// Creates a stack over the paper's default platform (4× XCVU37P).
    pub fn new() -> Self {
        Self::with_config(StackConfig::default())
    }

    /// Creates a stack with explicit configuration.
    pub fn with_config(config: StackConfig) -> Self {
        VitalStack {
            compiler: Compiler::new(config.compiler),
            controller: SystemController::new(config.runtime),
        }
    }

    /// The compilation layer.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// The system layer.
    pub fn controller(&self) -> &SystemController {
        &self.controller
    }

    /// Compiles an application through the six-step flow and registers the
    /// resulting relocatable bitstream in the bitstream database.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures and name collisions.
    pub fn compile_and_register(&self, spec: &AppSpec) -> Result<CompiledApp, VitalError> {
        let compiled = self.compiler.compile(spec)?;
        self.controller.register(compiled.bitstream().clone())?;
        Ok(compiled)
    }

    /// Compiles and registers `spec`, reusing a cached image when one with
    /// the same content digest is already registered — the compile-cache
    /// fast path (see [`SystemController::register_compiled`]). On a hit,
    /// no place-and-route runs.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures and conflicting-name collisions.
    pub fn compile_or_reuse(&self, spec: &AppSpec) -> Result<CompileOutcome, VitalError> {
        Ok(self.controller.register_compiled(&self.compiler, spec)?)
    }

    /// Deploys a registered application (see
    /// [`SystemController::deploy`]).
    ///
    /// # Errors
    ///
    /// Propagates runtime failures (unknown name, cluster full).
    pub fn deploy(&self, name: &str) -> Result<DeployHandle, VitalError> {
        Ok(self.controller.deploy(name)?)
    }

    /// Tears down a deployment (see [`SystemController::undeploy`]).
    ///
    /// # Errors
    ///
    /// Propagates runtime failures (unknown tenant).
    pub fn undeploy(&self, tenant: TenantId) -> Result<(), VitalError> {
        Ok(self.controller.undeploy(tenant)?)
    }

    /// Builds a cluster-simulator request from a *registered* application's
    /// real compiled artifact: block demand comes from the bitstream, the
    /// throughput model from its DSP content and post-P&R clock, and the
    /// communication intensity from the interface plan's worst per-block
    /// boundary traffic relative to the lane supply. This is the bridge
    /// between the offline (compiler) and online (simulator) halves of the
    /// reproduction.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownApp`] (wrapped) if the name is not
    /// registered.
    pub fn request_for(
        &self,
        id: u64,
        name: &str,
        work_ops: f64,
        arrival_s: f64,
    ) -> Result<AppRequest, VitalError> {
        let bs = self.controller.bitstreams().get(name)?;
        let dsp = bs.total_resources().dsp as f64;
        let throughput = (dsp * 2.0 * bs.achieved_mhz() * 1.0e6).max(1.0);
        // Boundary demand over the communication region's lane supply
        // (6 lanes x the saturating inter-die flit width).
        let lane_supply = 6.0 * 1024.0;
        let comm = bs.channel_plan().max_block_bits() as f64 / lane_supply;
        Ok(AppRequest::new(id, name, bs.block_count() as u32, work_ops)
            .with_throughput(throughput)
            .with_comm_intensity(comm.clamp(0.05, 0.9))
            .arriving_at(arrival_s))
    }
}

impl Default for VitalStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vital_netlist::hls::Operator;

    #[test]
    fn end_to_end_compile_deploy_undeploy() {
        let stack = VitalStack::new();
        let mut spec = AppSpec::new("e2e");
        spec.add_operator("m", Operator::MacArray { pes: 12 });
        let compiled = stack.compile_and_register(&spec).unwrap();
        assert!(compiled.bitstream().block_count() >= 1);
        let h = stack.deploy("e2e").unwrap();
        stack.undeploy(h.tenant()).unwrap();
    }

    #[test]
    fn duplicate_registration_fails() {
        let stack = VitalStack::new();
        let mut spec = AppSpec::new("dup");
        spec.add_operator("m", Operator::Pipeline { slices: 4 });
        stack.compile_and_register(&spec).unwrap();
        assert!(matches!(
            stack.compile_and_register(&spec),
            Err(VitalError::Runtime(RuntimeError::AppExists(_)))
        ));
    }

    #[test]
    fn compile_or_reuse_hits_the_cache() {
        let stack = VitalStack::new();
        let mut spec = AppSpec::new("cold");
        spec.add_operator("m", Operator::MacArray { pes: 12 });
        let cold = stack.compile_or_reuse(&spec).unwrap();
        assert!(!cold.cache_hit);
        let mut same = AppSpec::new("warm");
        same.add_operator("m", Operator::MacArray { pes: 12 });
        let warm = stack.compile_or_reuse(&same).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.digest, cold.digest);
        assert!(stack.deploy("warm").is_ok());
    }

    #[test]
    fn deploy_unknown_app_fails() {
        let stack = VitalStack::new();
        assert!(matches!(
            stack.deploy("ghost"),
            Err(VitalError::Runtime(RuntimeError::UnknownApp(_)))
        ));
    }

    #[test]
    fn error_source_chain() {
        let e = VitalError::Runtime(RuntimeError::UnknownApp("x".into()));
        assert!(e.source().is_some());
        assert!(!e.to_string().is_empty());
    }
}
