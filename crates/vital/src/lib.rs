//! # ViTAL — Virtualizing FPGAs in the Cloud
//!
//! A full-stack reproduction of *Virtualizing FPGAs in the Cloud*
//! (Zha & Li, ASPLOS 2020). ViTAL virtualizes an FPGA cluster behind a
//! homogeneous abstraction — an array of identical virtual blocks joined by
//! a latency-insensitive interface — which decouples the (slow, offline)
//! compilation from (fast, online) resource allocation:
//!
//! * applications are compiled **once** onto virtual blocks
//!   ([`compiler`], paper §3.3–§4),
//! * at runtime each virtual block can be **relocated** to any free
//!   physical block on any FPGA without recompilation
//!   ([`runtime`], paper §3.4),
//! * so the cluster is shared at block granularity, applications can span
//!   FPGAs transparently, and users program against the illusion of one
//!   infinitely large FPGA (paper §3.1).
//!
//! The workspace layers map one-to-one onto the paper's stack; this crate
//! re-exports them and adds [`VitalStack`], a facade tying the compiler and
//! the system controller together.
//!
//! | Module | Paper layer |
//! |---|---|
//! | [`fabric`] | device model + architecture layer geometry (§2.1, §3.2) |
//! | [`netlist`] | netlist IR + synthesis front-end model (§2.2) |
//! | [`placer`] | placement-based partition algorithm (§4) |
//! | [`interface`] | latency-insensitive interface (§3.2, §3.5) |
//! | [`compiler`] | six-step compilation flow (§3.3) |
//! | [`periph`] | peripheral virtualization (§3.2) |
//! | [`checkpoint`] | tenant context save/restore capsules (DESIGN.md §11) |
//! | [`runtime`] | system layer: controller, databases, policy (§3.4) |
//! | [`isa`] | instruction-level DNN virtualization: shared tile pool + two-level scheduler (DESIGN.md §16) |
//! | [`service`] | `vitald` control-plane daemon + wire protocol (DESIGN.md §12) |
//! | [`cluster`] | discrete-event cluster simulator (§5.2 platform) |
//! | [`baselines`] | per-device cloud + AmorphOS comparisons (§5.2, §6.2) |
//! | [`workloads`] | Table 2 benchmarks + Table 3 workload sets (§5.1) |
//! | [`telemetry`] | tracing spans, metrics, JSONL/Chrome-trace exporters |
//!
//! # Quickstart
//!
//! ```
//! use vital::prelude::*;
//!
//! // Describe an accelerator (the programming layer's view).
//! let mut spec = AppSpec::new("my-accelerator");
//! let mac = spec.add_operator("mac", Operator::MacArray { pes: 16 });
//! spec.add_input("in", mac, 128)?;
//! spec.add_output("out", mac, 128)?;
//!
//! // Compile once, deploy anywhere.
//! let stack = VitalStack::new();
//! stack.compile_and_register(&spec)?;
//! let handle = stack.deploy("my-accelerator")?;
//! println!("deployed on {} FPGA(s)", handle.fpga_count());
//! stack.undeploy(handle.tenant())?;
//! # Ok::<(), vital::VitalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vital_baselines as baselines;
pub use vital_checkpoint as checkpoint;
pub use vital_cluster as cluster;
pub use vital_compiler as compiler;
pub use vital_fabric as fabric;
pub use vital_interface as interface;
pub use vital_isa as isa;
pub use vital_netlist as netlist;
pub use vital_periph as periph;
pub use vital_placer as placer;
pub use vital_runtime as runtime;
pub use vital_service as service;
pub use vital_telemetry as telemetry;
pub use vital_workloads as workloads;

mod stack;

pub use stack::{StackConfig, VitalError, VitalStack};

/// The most commonly used items of the whole stack, for glob import.
pub mod prelude {
    pub use crate::stack::{StackConfig, VitalError, VitalStack};
    pub use vital_checkpoint::{CheckpointDigest, TenantCheckpoint};
    pub use vital_cluster::{
        AppRequest, ClusterConfig, ClusterSim, FaultPlan, RetryPolicy, Scheduler,
    };
    pub use vital_compiler::{AppBitstream, CompiledApp, Compiler, CompilerConfig};
    pub use vital_fabric::{DeviceModel, Floorplan, Resources};
    pub use vital_isa::{IsaJob, IsaSim, IsaTemplate};
    pub use vital_netlist::hls::{AppSpec, Operator};
    pub use vital_periph::TenantId;
    pub use vital_runtime::{
        ControlRequest, ControlResponse, DeployHandle, DeployRequest, FailureStats, FpgaHealth,
        RuntimeConfig, SystemController, VitalScheduler,
    };
    pub use vital_service::{ServiceConfig, Vitald};
    pub use vital_workloads::{benchmarks, generate_workload_set, Size, WorkloadComposition};
}
