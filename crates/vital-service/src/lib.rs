//! `vitald` — the multi-tenant control-plane service in front of the
//! [`SystemController`] (DESIGN.md §12).
//!
//! The paper's hypervisor layer needs a *service*, not a library: many
//! tenants submitting management operations concurrently, with admission
//! control between them and the controller. This crate provides that
//! daemon three ways at once:
//!
//! * **One request API** — every operation is a typed
//!   [`ControlRequest`](vital_runtime::ControlRequest) answered by a
//!   [`ControlResponse`](vital_runtime::ControlResponse) (defined in
//!   `vital-runtime`, executed by
//!   [`SystemController::execute`](vital_runtime::SystemController::execute)),
//!   so in-process and remote callers speak the same types end to end.
//! * **A sharded admission pipeline** — independent bounded,
//!   session-fair queue shards ([`ServiceConfig::shards`]), each drained
//!   by its own slice of the worker pool. Sessions land on the
//!   less-loaded of two randomly chosen shards (power-of-two-choices)
//!   and stay pinned there, so per-session ordering holds while load
//!   spreads. Overload is a typed, side-effect-free rejection
//!   ([`ServiceError::Overloaded`]) issued at push time; per-request
//!   deadlines expire stale jobs unexecuted; compatible deploys at the
//!   queue heads — across **all** shards — are batched into one
//!   allocator round ([`ServiceConfig::batch_max`]).
//! * **A wire protocol** — length-prefixed frames over TCP
//!   ([`ServiceServer`] / [`RemoteClient`]) in a compact binary encoding
//!   ([`WireFormat::Binary`]), with the PR 5 JSON frames still accepted
//!   and answered in kind ([`WireFormat::Json`], used by
//!   `vitalctl --connect`). The server is a non-blocking reactor: a few
//!   I/O threads ([`ServiceConfig::io_threads`]) multiplex thousands of
//!   connections, pipelining requests per connection via
//!   [`PendingCall`].
//!
//! Shutdown is graceful: [`Vitald::shutdown`] drains the queue (new
//! submissions answered [`ServiceError::Draining`] with a retry hint)
//! and completes queued work before the workers exit.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vital_runtime::{ControlRequest, ControlResponse, RuntimeConfig, SystemController};
//! use vital_service::{ServiceConfig, Vitald};
//!
//! let controller = Arc::new(SystemController::new(RuntimeConfig::paper_cluster()));
//! let vitald = Vitald::spawn(controller, ServiceConfig::default());
//! let client = vitald.client();
//! let resp = client.call(ControlRequest::Status);
//! assert!(matches!(resp, ControlResponse::Status(_)));
//! vitald.shutdown();
//! ```
//!
//! [`SystemController`]: vital_runtime::SystemController

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod codec;
mod config;
mod error;
mod queue;
mod server;
mod service;
mod shard;
mod slot;
mod wire;

pub use client::RemoteClient;
pub use config::ServiceConfig;
pub use error::ServiceError;
pub use server::ServiceServer;
pub use service::{PendingCall, ServiceClient, Vitald};
pub use wire::{
    encode_frame, read_frame, write_frame, Envelope, FrameDecoder, RequestEnvelope,
    ResponseEnvelope, WireFormat, MAX_FRAME_BYTES,
};

pub use vital_compiler::DeviceModel;

use vital_compiler::{Compiler, CompilerConfig};
use vital_runtime::{AppResolver, RuntimeError};
use vital_workloads::{benchmarks, Size};

/// An [`AppResolver`] over the paper's benchmark suite: resolves names of
/// the form `<benchmark>-<S|M|L>` (e.g. `"lenet-S"`) by synthesizing and
/// compiling the matching [`DnnBenchmark`](vital_workloads::DnnBenchmark)
/// variant. The `vitald` daemon installs this so remote clients can
/// `Prepare`/`Deploy` benchmarks by name without shipping netlists.
pub fn benchmark_resolver() -> AppResolver {
    benchmark_resolver_for(DeviceModel::xcvu37p())
}

/// [`benchmark_resolver`] targeting an explicit device model — the
/// resolver `vitald --geometry NAME` installs, so a portable checkpoint
/// restored onto a differently-laid-out fabric recompiles against that
/// fabric's column geometry (DESIGN.md §17). The netlist digest is
/// device-independent, so images compiled here still match capsules
/// exported from other geometries.
pub fn benchmark_resolver_for(device: DeviceModel) -> AppResolver {
    Box::new(move |name: &str| {
        let (bench, size) = name
            .rsplit_once('-')
            .ok_or_else(|| RuntimeError::UnknownApp(name.to_string()))?;
        let size = match size {
            "S" => Size::Small,
            "M" => Size::Medium,
            "L" => Size::Large,
            _ => return Err(RuntimeError::UnknownApp(name.to_string())),
        };
        let suite = benchmarks();
        let b = suite
            .iter()
            .find(|b| b.name() == bench)
            .ok_or_else(|| RuntimeError::UnknownApp(name.to_string()))?;
        let compiled = Compiler::for_device(&device, 60, CompilerConfig::default())
            .compile(&b.spec(size))
            .map_err(RuntimeError::Compile)?;
        Ok(compiled.into_bitstream())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_resolver_rejects_unknown_names() {
        let resolve = benchmark_resolver();
        assert!(matches!(
            resolve("nonsense"),
            Err(RuntimeError::UnknownApp(_))
        ));
        assert!(matches!(
            resolve("lenet-X"),
            Err(RuntimeError::UnknownApp(_))
        ));
    }
}
