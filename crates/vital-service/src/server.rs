//! The TCP front of a [`Vitald`]: one listener thread accepting
//! connections, one thread per connection, each connection a session.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::{ServiceClient, Vitald};
use crate::wire::{read_frame, write_frame, RequestEnvelope, ResponseEnvelope};
use crate::ServiceError;

/// How often blocking loops re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running TCP listener bound to a [`Vitald`]. Stops (and joins its
/// threads) on [`ServiceServer::stop`] or drop.
pub struct ServiceServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServiceServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting. Each
    /// connection becomes its own service session.
    pub fn serve(vitald: &Vitald, addr: &str) -> std::io::Result<ServiceServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));

        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conn_threads);
        // Sessions are minted in the accept loop, so the handle must not
        // borrow the Vitald: pre-mint is impossible (sessions are
        // per-connection), hence a factory closure over fresh clients.
        let clients = ClientFactory::new(vitald);
        let accept_thread = std::thread::Builder::new()
            .name("vitald-accept".to_string())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let client = clients.fresh();
                            let conn_stop = Arc::clone(&accept_stop);
                            let handle = std::thread::Builder::new()
                                .name("vitald-conn".to_string())
                                .spawn(move || serve_connection(stream, client, conn_stop))
                                .expect("spawn connection thread");
                            accept_conns
                                .lock()
                                .expect("connection list poisoned")
                                .push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            })?;

        Ok(ServiceServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects idle connections, joins every thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self
            .conn_threads
            .lock()
            .expect("connection list poisoned")
            .drain(..)
            .collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Mints a fresh [`ServiceClient`] (session) per accepted connection
/// without keeping a borrow on the [`Vitald`].
struct ClientFactory {
    template: ServiceClient,
}

impl ClientFactory {
    fn new(vitald: &Vitald) -> Self {
        ClientFactory {
            template: vitald.client(),
        }
    }

    fn fresh(&self) -> ServiceClient {
        self.template.sibling()
    }
}

fn serve_connection(stream: TcpStream, client: ServiceClient, stop: Arc<AtomicBool>) {
    // A finite read timeout keeps the thread responsive to shutdown even
    // on an idle connection.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while !stop.load(Ordering::Relaxed) {
        let envelope: RequestEnvelope = match read_frame(&mut reader) {
            Ok(env) => env,
            // Idle poll tick (the read deadline elapsed with no frame):
            // loop to re-check the stop flag.
            Err(ServiceError::Timeout { .. }) => continue,
            Err(_) => return, // disconnect or garbage: drop the session
        };
        let resp = client.call(envelope.req);
        let reply = ResponseEnvelope {
            id: envelope.id,
            resp,
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}
