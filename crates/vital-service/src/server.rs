//! The TCP front of a [`Vitald`]: one accept thread plus a small pool of
//! reactor threads, each multiplexing many **non-blocking** connections
//! (DESIGN.md §13).
//!
//! The PR 5 server spent one OS thread per connection, parked in a
//! blocking read — four thousand clients meant four thousand stacks and
//! a context switch per frame. The reactor model inverts that: each I/O
//! thread owns a set of non-blocking sockets and sweeps them — flush
//! pending writes, read whatever bytes arrived, feed the incremental
//! [`FrameDecoder`], submit complete requests ([`ServiceClient::submit`]
//! — non-blocking), and poll outstanding [`PendingCall`]s, serializing
//! finished responses in **request order** per connection. Requests from
//! one connection therefore pipeline: many can be in flight before the
//! first response is written back.
//!
//! Error containment per connection: a malformed or oversized frame
//! poisons only that connection (it is dropped without a reply, exactly
//! like PR 5); admission rejections (`Overloaded`, `Draining`) are
//! answered inline as typed [`ControlResponse::Err`] frames without ever
//! touching a worker.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use vital_runtime::ControlResponse;

use crate::service::{PendingCall, ServiceClient, Vitald};
use crate::wire::{FrameDecoder, RequestEnvelope, ResponseEnvelope, WireFormat};
use crate::ServiceError;

/// How long an idle reactor sweep (no bytes moved, nothing completed)
/// sleeps before the next one, and how often the accept loop re-checks
/// the stop flag.
const IDLE_SLEEP: Duration = Duration::from_micros(500);
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Reads per sweep are bounded by this scratch size per connection.
const READ_CHUNK: usize = 64 * 1024;

/// Stop reading from a connection whose unflushed response bytes exceed
/// this (a slow reader cannot balloon server memory); reads resume once
/// the backlog drains.
const WRITE_BACKLOG_LIMIT: usize = 4 << 20;

/// A running TCP listener bound to a [`Vitald`]. Stops (and joins its
/// threads) on [`ServiceServer::stop`] or drop.
pub struct ServiceServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    io_threads: Vec<JoinHandle<()>>,
}

impl ServiceServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting. Each
    /// connection becomes its own service session, assigned to the
    /// reactor thread with the fewest live connections.
    pub fn serve(vitald: &Vitald, addr: &str) -> std::io::Result<ServiceServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let config = vitald.config();
        let max_frame_bytes = config.max_frame_bytes;
        let io_thread_count = config.io_threads.max(1);

        // One inbox per reactor: the accept loop pushes fresh streams, the
        // reactor drains them into its connection set.
        let inboxes: Vec<Arc<Inbox>> = (0..io_thread_count)
            .map(|_| {
                Arc::new(Inbox {
                    streams: Mutex::new(Vec::new()),
                    load: AtomicUsize::new(0),
                })
            })
            .collect();

        let mut io_threads = Vec::with_capacity(io_thread_count);
        for (i, inbox) in inboxes.iter().enumerate() {
            let inbox = Arc::clone(inbox);
            let stop = Arc::clone(&stop);
            let clients = ClientFactory::new(vitald);
            io_threads.push(
                std::thread::Builder::new()
                    .name(format!("vitald-io-{i}"))
                    .spawn(move || reactor_loop(inbox, clients, stop, max_frame_bytes))?,
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("vitald-accept".to_string())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Least-loaded reactor gets the connection.
                            let target = inboxes
                                .iter()
                                .min_by_key(|ib| ib.load.load(Ordering::Relaxed))
                                .expect("at least one reactor");
                            target.load.fetch_add(1, Ordering::Relaxed);
                            target.streams.lock().expect("inbox poisoned").push(stream);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })?;

        Ok(ServiceServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            io_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects every connection, joins every thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.io_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Hand-off point between the accept loop and one reactor.
struct Inbox {
    streams: Mutex<Vec<TcpStream>>,
    /// Live connections owned by the reactor (accept-side load metric).
    load: AtomicUsize,
}

/// Mints a fresh [`ServiceClient`] (session) per accepted connection
/// without keeping a borrow on the [`Vitald`].
struct ClientFactory {
    template: ServiceClient,
}

impl ClientFactory {
    fn new(vitald: &Vitald) -> Self {
        ClientFactory {
            template: vitald.client(),
        }
    }

    fn fresh(&self) -> ServiceClient {
        self.template.sibling()
    }
}

/// A response owed to the peer, in request order.
enum Owed {
    /// Executing (or queued) in the service; resolves via its slot.
    InFlight(u64, PendingCall),
    /// Already decided (admission rejection), awaiting serialization.
    Ready(u64, ControlResponse),
}

/// One multiplexed connection's state.
struct Conn {
    stream: TcpStream,
    client: ServiceClient,
    decoder: FrameDecoder,
    /// Responses owed, FIFO in request arrival order.
    owed: VecDeque<Owed>,
    /// Serialized-but-unflushed response bytes.
    outbuf: Vec<u8>,
    written: usize,
    /// Encoding of the most recent request; responses mirror it.
    format: WireFormat,
    /// Peer closed its write side; serve what is owed, then drop.
    eof: bool,
    /// Poisoned (protocol violation or I/O error): drop immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, client: ServiceClient, max_frame_bytes: usize) -> Self {
        Conn {
            stream,
            client,
            decoder: FrameDecoder::new(max_frame_bytes),
            owed: VecDeque::new(),
            outbuf: Vec::new(),
            written: 0,
            format: WireFormat::Binary,
            eof: false,
            dead: false,
        }
    }

    /// `true` once the connection can be dropped.
    fn finished(&self) -> bool {
        self.dead || (self.eof && self.owed.is_empty() && self.written == self.outbuf.len())
    }

    /// Flushes as much of `outbuf` as the socket accepts right now.
    /// Returns bytes written this sweep.
    fn flush(&mut self) -> usize {
        let mut progressed = 0;
        while self.written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.written += n;
                    progressed += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.written == self.outbuf.len() && !self.outbuf.is_empty() {
            self.outbuf.clear();
            self.written = 0;
        }
        progressed
    }

    /// Reads available bytes and turns complete frames into submissions.
    /// Returns bytes read this sweep.
    fn pump_reads(&mut self, scratch: &mut [u8]) -> usize {
        if self.eof || self.dead {
            return 0;
        }
        // Backpressure: a peer that won't read its responses doesn't get
        // to keep submitting.
        if self.outbuf.len() - self.written > WRITE_BACKLOG_LIMIT {
            return 0;
        }
        let mut progressed = 0;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    progressed += n;
                    self.decoder.extend(&scratch[..n]);
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return progressed;
                }
            }
        }
        loop {
            match self.decoder.next_frame::<RequestEnvelope>() {
                Ok(Some((env, format))) => {
                    self.format = format;
                    match self.client.submit(env.req) {
                        Ok(pending) => self.owed.push_back(Owed::InFlight(env.id, pending)),
                        // Typed admission rejection: answered in line,
                        // in order, without a worker.
                        Err(e) => self
                            .owed
                            .push_back(Owed::Ready(env.id, ControlResponse::Err((&e).into()))),
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Garbage on the wire poisons this connection only.
                    self.dead = true;
                    break;
                }
            }
        }
        progressed
    }

    /// Serializes every response that is ready, strictly in request
    /// order. Returns responses serialized this sweep.
    fn pump_responses(&mut self, max_frame_bytes: usize) -> usize {
        let mut progressed = 0;
        while let Some(front) = self.owed.front() {
            let resolved = match front {
                Owed::Ready(..) => true,
                Owed::InFlight(_, pending) => {
                    // Peek-resolve: replace in place so order holds.
                    if let Some(resp) = pending.poll() {
                        let id = match self.owed.front() {
                            Some(Owed::InFlight(id, _)) => *id,
                            _ => unreachable!("front just matched InFlight"),
                        };
                        self.owed[0] = Owed::Ready(id, resp);
                        true
                    } else {
                        false
                    }
                }
            };
            if !resolved {
                break;
            }
            let Some(Owed::Ready(id, resp)) = self.owed.pop_front() else {
                unreachable!("front resolved to Ready above");
            };
            let reply = ResponseEnvelope { id, resp };
            if crate::wire::encode_frame(&reply, self.format, max_frame_bytes, &mut self.outbuf)
                .is_err()
            {
                // A response too large for the frame limit: answer with a
                // typed protocol error instead of silence.
                let e = ServiceError::Protocol(format!(
                    "response exceeds the {max_frame_bytes} byte frame limit"
                ));
                let fallback = ResponseEnvelope {
                    id: reply.id,
                    resp: ControlResponse::Err((&e).into()),
                };
                if crate::wire::encode_frame(
                    &fallback,
                    self.format,
                    max_frame_bytes,
                    &mut self.outbuf,
                )
                .is_err()
                {
                    self.dead = true;
                    break;
                }
            }
            progressed += 1;
        }
        progressed
    }
}

fn reactor_loop(
    inbox: Arc<Inbox>,
    clients: ClientFactory,
    stop: Arc<AtomicBool>,
    max_frame_bytes: usize,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    while !stop.load(Ordering::Relaxed) {
        let mut progressed = 0usize;

        // Adopt newly accepted connections.
        let fresh: Vec<TcpStream> = inbox
            .streams
            .lock()
            .expect("inbox poisoned")
            .drain(..)
            .collect();
        for stream in fresh {
            progressed += 1;
            if stream.set_nonblocking(true).is_err() {
                inbox.load.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let _ = stream.set_nodelay(true);
            conns.push(Conn::new(stream, clients.fresh(), max_frame_bytes));
        }

        for conn in conns.iter_mut() {
            progressed += conn.flush();
            progressed += conn.pump_reads(&mut scratch);
            progressed += conn.pump_responses(max_frame_bytes);
            progressed += conn.flush();
        }

        let before = conns.len();
        conns.retain(|c| !c.finished());
        let dropped = before - conns.len();
        if dropped > 0 {
            inbox.load.fetch_sub(dropped, Ordering::Relaxed);
            progressed += dropped;
        }

        if progressed == 0 {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}
