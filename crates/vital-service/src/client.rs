//! A blocking TCP client speaking the `vitald` wire protocol.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Mutex;

use vital_runtime::{ControlRequest, ControlResponse};

use crate::error::ServiceError;
use crate::wire::{
    read_frame, write_frame, RequestEnvelope, ResponseEnvelope, WireFormat, MAX_FRAME_BYTES,
};

/// A connection to a remote `vitald`. One request is in flight at a time
/// (`&self` calls serialize on an internal lock); responses arrive in
/// request order per connection.
///
/// Frames go out in the compact binary encoding by default;
/// [`RemoteClient::connect_with`] selects [`WireFormat::Json`] for
/// interop with line tools (the server mirrors whichever format each
/// request arrived in).
pub struct RemoteClient {
    io: Mutex<Io>,
    format: WireFormat,
    max_frame_bytes: usize,
    next_id: std::sync::atomic::AtomicU64,
}

struct Io {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RemoteClient {
    /// Connects to a `vitald` at `addr` (e.g. `"127.0.0.1:7700"`) using
    /// the binary frame encoding.
    pub fn connect(addr: &str) -> std::io::Result<RemoteClient> {
        Self::connect_with(addr, WireFormat::Binary)
    }

    /// Connects with an explicit frame encoding. `WireFormat::Json`
    /// keeps the wire readable (and PR 5 compatible) at roughly 2× the
    /// bytes.
    pub fn connect_with(addr: &str, format: WireFormat) -> std::io::Result<RemoteClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(RemoteClient {
            io: Mutex::new(Io {
                writer,
                reader: BufReader::new(stream),
            }),
            format,
            max_frame_bytes: MAX_FRAME_BYTES,
            next_id: std::sync::atomic::AtomicU64::new(1),
        })
    }

    /// Sends one request and waits for its answer. Service rejections
    /// (`Overloaded`, `Draining`, `Timeout`) arrive as
    /// [`ControlResponse::Err`] values, exactly like in-process calls;
    /// `Err` here means the transport itself failed.
    pub fn call(&self, req: ControlRequest) -> Result<ControlResponse, ServiceError> {
        let id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut io = self.io.lock().expect("client lock poisoned");
        write_frame(&mut io.writer, &RequestEnvelope { id, req }, self.format)?;
        let (reply, _): (ResponseEnvelope, WireFormat) =
            read_frame(&mut io.reader, self.max_frame_bytes)?;
        if reply.id != id {
            return Err(ServiceError::Protocol(format!(
                "response id {} does not match request id {id}",
                reply.id
            )));
        }
        Ok(reply.resp)
    }
}
