//! The `vitald` daemon: a `SystemController` over the paper cluster,
//! fronted by the admission pipeline and the TCP wire protocol.
//!
//! ```text
//! vitald [--listen ADDR] [--workers N] [--shards N] [--io-threads N]
//!        [--queue-depth N] [--timeout-ms MS] [--batch-max N]
//! ```
//!
//! Connect with `vitalctl --connect ADDR` or any client speaking the
//! length-prefixed protocol of DESIGN.md §13 (binary or JSON frames —
//! the daemon answers each request in the format it arrived in).
//! Benchmarks of the
//! paper suite deploy by name (`lenet-S` … `vgg-L`): the daemon installs
//! a resolver that compiles them on first use.

use std::sync::Arc;
use std::time::Duration;

use vital_runtime::{RuntimeConfig, SystemController};
use vital_service::{benchmark_resolver, ServiceConfig, ServiceServer, Vitald};
use vital_telemetry::Telemetry;

struct Options {
    listen: String,
    config: ServiceConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut listen = "127.0.0.1:7700".to_string();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => listen = value("--listen")?,
            "--workers" => {
                config = config.with_workers(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--shards" => {
                config = config.with_shards(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                );
            }
            "--io-threads" => {
                config = config.with_io_threads(
                    value("--io-threads")?
                        .parse()
                        .map_err(|e| format!("--io-threads: {e}"))?,
                );
            }
            "--queue-depth" => {
                config = config.with_queue_capacity(
                    value("--queue-depth")?
                        .parse()
                        .map_err(|e| format!("--queue-depth: {e}"))?,
                );
            }
            "--timeout-ms" => {
                config = config.with_request_timeout(Duration::from_millis(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                ));
            }
            "--batch-max" => {
                config = config.with_batch_max(
                    value("--batch-max")?
                        .parse()
                        .map_err(|e| format!("--batch-max: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "vitald [--listen ADDR] [--workers N] [--shards N] [--io-threads N] \
                     [--queue-depth N] [--timeout-ms MS] [--batch-max N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Options { listen, config })
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("vitald: {e}");
            std::process::exit(2);
        }
    };
    let controller = Arc::new(
        SystemController::new(RuntimeConfig::paper_cluster())
            .with_telemetry(Telemetry::recording()),
    );
    controller.set_app_resolver(benchmark_resolver());
    let vitald = Vitald::spawn(controller, opts.config.clone());
    let server = match ServiceServer::serve(&vitald, &opts.listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vitald: cannot listen on {}: {e}", opts.listen);
            std::process::exit(1);
        }
    };
    println!(
        "vitald listening on {} ({} workers, {} shards, {} io threads, queue depth {})",
        server.local_addr(),
        opts.config.workers,
        opts.config.effective_shards(),
        opts.config.io_threads,
        opts.config.queue_capacity
    );
    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
